//! Quality service: one backend behind the serializable command protocol.
//!
//! A client-side script is *serialized* into JSON request lines, shipped
//! through [`semandaq::api::dispatch_line`] (decode → dispatch → encode —
//! exactly what a network transport would do on the server side), and the
//! decoded responses drive the client's view. The backend is chosen by
//! flag; the script is backend-agnostic — that is the point of the
//! unified API.
//!
//! ```sh
//! cargo run --example quality_service                      # all backends
//! cargo run --example quality_service -- --backend single
//! cargo run --example quality_service -- --backend cluster
//! cargo run --example quality_service -- --backend monitor
//! cargo run --example quality_service -- --backend cluster --metrics
//! ```
//!
//! `--metrics` appends the Prometheus-style exposition of the process-wide
//! telemetry registry after the request loop — the same numbers a
//! `Request::Metrics` over the wire would carry.
//!
//! `--trace` enables request-scoped tracing, then after the loop prints
//! the rendered span tree of the slowest captured request and writes all
//! captured traces as a Chrome trace-event file (`chrome://tracing`,
//! Perfetto) next to the binary.

use semandaq::api::{dispatch_line, Mutation, MutationBatch, QualityBackend, Request, Response};
use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::minidb::{RowId, Value};
use semandaq::system::{DataMonitor, MonitorMode, QualityServer};

const ROWS: usize = 2_000;
const SEED: u64 = 42;

/// Stand up the chosen backend over the same dirty customer workload.
fn backend(kind: &str) -> Box<dyn QualityBackend> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    match kind {
        "single" => Box::new(QualityServer::new(w.db, "customer").unwrap()),
        // "sharded" is the historical spelling, kept as an alias.
        "cluster" | "sharded" => Box::new(
            ShardedQualityServer::partition(
                w.db.table("customer").unwrap(),
                4,
                Box::new(HashRouter::new(vec![1])),
            )
            .unwrap(),
        ),
        "monitor" => Box::new(
            DataMonitor::new(w.db, "customer", Vec::new(), MonitorMode::DetectOnly).unwrap(),
        ),
        other => panic!("unknown backend '{other}' (single | cluster | monitor)"),
    }
}

/// A donor row with one corrupted column — traffic that violates a rule.
fn dirty_row(corrupt_col: usize, v: &str) -> Vec<Value> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        w.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[corrupt_col] = Value::str(v);
    row
}

/// The client script: registration, mixed ingest batches, detection,
/// audit, repair, introspection.
fn script() -> Vec<Request> {
    let ingest_1 = MutationBatch {
        mutations: vec![
            Mutation::Insert(dirty_row(2, "WRONGCITY")),
            Mutation::Insert(dirty_row(1, "XX")),
            Mutation::SetCell {
                row: RowId(17),
                col: 2,
                value: Value::str("ELSEWHERE"),
            },
        ],
    };
    let ingest_2 = MutationBatch {
        mutations: vec![
            Mutation::Delete(RowId(ROWS as u64)), // drop the first dirty insert
            Mutation::Insert(dirty_row(3, "00000")),
        ],
    };
    vec![
        Request::Capabilities,
        Request::Len,
        Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        },
        Request::Detect,
        Request::Audit,
        Request::ApplyBatch { batch: ingest_1 },
        Request::Detect,
        Request::ApplyBatch { batch: ingest_2 },
        Request::Detect,
        Request::Audit,
        Request::Repair, // capability-gated: server + cluster repair, monitor refuses
        Request::Detect,
        Request::LastReport,
        Request::Len,
    ]
}

fn preview(line: &str) -> String {
    const MAX: usize = 96;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let cut = (0..=MAX).rev().find(|&i| line.is_char_boundary(i)).unwrap();
        format!("{}… (+{} bytes)", &line[..cut], line.len() - cut)
    }
}

fn serve(kind: &str) {
    println!("=== backend: {kind} ===");
    let mut b = backend(kind);
    for request in script() {
        // Client side: serialize. Server side: decode, dispatch, encode.
        let wire_in = request.encode();
        let wire_out = dispatch_line(b.as_mut(), &wire_in);
        // Client side again: decode the answer.
        let response = Response::decode(&wire_out).expect("server speaks the protocol");
        println!("→ {}", preview(&wire_in));
        println!("← {}", preview(&wire_out));
        match response {
            Response::Report(s) => println!(
                "  {} violations over {} dirty rows",
                s.violations, s.dirty_rows
            ),
            Response::Audited(s) => println!(
                "  {} tuples, {:.1}% dirty",
                s.tuples,
                s.dirty_fraction * 100.0
            ),
            Response::Repaired(s) => println!(
                "  repaired: {} changes in {} rounds, {} residual",
                s.changes, s.iterations, s.residual
            ),
            Response::Error { message } => println!("  refused: {message}"),
            _ => {}
        }
    }
    println!();
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--metrics" && a != "--trace");
    if trace {
        semandaq::obs::trace::set_enabled(true);
    }
    match args.as_slice() {
        [] => {
            for kind in ["single", "cluster", "monitor"] {
                serve(kind);
            }
        }
        [flag, kind] if flag == "--backend" => serve(kind),
        other => panic!(
            "usage: quality_service [--backend single|cluster|monitor] [--metrics] [--trace], got {other:?}"
        ),
    }
    if metrics {
        println!("=== metrics ===");
        print!("{}", semandaq::obs::render_text());
    }
    if trace {
        let traces = semandaq::obs::trace::recent_traces();
        match traces.iter().max_by_key(|t| t.duration_us) {
            None => println!("=== trace: nothing captured ==="),
            Some(slowest) => {
                println!("=== trace: {} captured requests ===", traces.len());
                for t in &traces {
                    println!(
                        "{:<14} {:>8}µs  {} spans",
                        t.name,
                        t.duration_us,
                        t.spans.len()
                    );
                }
                println!("--- slowest ---");
                print!("{}", slowest.render_tree());
                // One Chrome trace-event file for *all* captured requests,
                // written next to the binary so repeat runs overwrite.
                let events: Vec<String> = traces
                    .iter()
                    .map(|t| {
                        let json = t.to_chrome_json();
                        // Splice each report's event array into one stream.
                        json.trim_start_matches('[')
                            .trim_end_matches(']')
                            .trim()
                            .to_string()
                    })
                    .filter(|s| !s.is_empty())
                    .collect();
                let path = std::env::current_exe()
                    .map(|p| p.with_file_name("quality_service_trace.json"))
                    .unwrap_or_else(|_| std::path::PathBuf::from("quality_service_trace.json"));
                match std::fs::write(&path, format!("[{}]", events.join(","))) {
                    Ok(()) => println!("chrome trace written to {}", path.display()),
                    Err(e) => println!("chrome trace not written: {e}"),
                }
            }
        }
    }
}
