//! Quality service: one backend behind the serializable command protocol.
//!
//! A client-side script is *serialized* into JSON request lines, shipped
//! through [`semandaq::api::dispatch_line`] (decode → dispatch → encode —
//! exactly what a network transport would do on the server side), and the
//! decoded responses drive the client's view. The backend is chosen by
//! flag; the script is backend-agnostic — that is the point of the
//! unified API.
//!
//! ```sh
//! cargo run --example quality_service                      # all backends
//! cargo run --example quality_service -- --backend single
//! cargo run --example quality_service -- --backend cluster
//! cargo run --example quality_service -- --backend monitor
//! cargo run --example quality_service -- --backend cluster --metrics
//! ```
//!
//! `--metrics` appends the Prometheus-style exposition of the process-wide
//! telemetry registry after the request loop — the same numbers a
//! `Request::Metrics` over the wire would carry.
//!
//! `--trace` enables request-scoped tracing, then after the loop prints
//! the rendered span tree of the slowest captured request and writes all
//! captured traces as a Chrome trace-event file (`chrome://tracing`,
//! Perfetto) next to the binary.
//!
//! The same script also runs *over TCP*:
//!
//! ```sh
//! # server: serve the chosen backend until a stdin line (or EOF)
//! cargo run --example quality_service -- --backend cluster --listen 127.0.0.1:7744 --metrics
//! # clients: N concurrent mixed read/write sessions against it
//! cargo run --example quality_service -- --connect 127.0.0.1:7744 --clients 4
//! ```
//!
//! **Durability.** `--wal DIR` (or `SDQ_WAL_DIR`) wraps the backend in a
//! [`semandaq::durable::Durable`] write-ahead log: every accepted
//! mutation is logged before it applies, and a restart — including a
//! `kill -9` — replays the log's valid prefix back to the exact
//! pre-crash state. A clean server shutdown checkpoints and rotates the
//! log. `SDQ_MEM_BUDGET` additionally bounds snapshot residency by
//! spilling cold chunks to a paged file in the same directory.
//!
//! Two small modes support the crash-recovery smoke test in CI:
//! `--report` recovers the WAL offline and prints the encoded detect
//! report; `--probe ADDR` asks a running server for the same report over
//! TCP — byte-equal outputs mean server recovery matches serial replay.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use semandaq::api::{dispatch_line, Mutation, MutationBatch, QualityBackend, Request, Response};
use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::colstore::ChunkStore;
use semandaq::datagen::{customer::CANONICAL_CFDS, dirty_customers};
use semandaq::durable::{Durable, PagedStore, CHECKPOINT_FILE, SPILL_FILE};
use semandaq::minidb::{RowId, Value};
use semandaq::net::{Client, NetConfig, NetServer};
use semandaq::system::{DataMonitor, MonitorMode, QualityServer, ServerConfig};

const ROWS: usize = 2_000;
const SEED: u64 = 42;

/// The spill store for `SDQ_MEM_BUDGET`, if one is configured: a paged
/// file in `dir` (the WAL directory when logging, the temp dir
/// otherwise) behind a small buffer pool.
fn spill_store(dir: Option<&Path>, budget: usize) -> Arc<dyn ChunkStore> {
    let dir = dir
        .map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir).expect("create spill dir");
    let page_codes = semandaq::colstore::default_chunk_rows();
    let pool_pages = (budget / 4 / (page_codes * 4)).max(2);
    PagedStore::create(&dir.join(SPILL_FILE), page_codes, pool_pages).expect("create spill file")
}

/// Stand up the chosen backend over the dirty customer workload (`rows`
/// seeded rows — zero when a checkpoint will supply the data), honoring
/// `SDQ_MEM_BUDGET` (cold snapshot chunks spill to a paged file under
/// `spill_dir`).
fn backend_seeded(
    kind: &str,
    spill_dir: Option<&Path>,
    rows: usize,
) -> Box<dyn QualityBackend + Send> {
    let w = dirty_customers(rows, 0.05, SEED);
    let budget = semandaq::obs::env::bytes("SDQ_MEM_BUDGET");
    match kind {
        "single" => {
            let mut config = ServerConfig::from_env();
            config.spill_store = budget.map(|b| spill_store(spill_dir, b));
            Box::new(
                QualityServer::new(w.db, "customer")
                    .unwrap()
                    .with_config(config),
            )
        }
        // "sharded" is the historical spelling, kept as an alias.
        "cluster" | "sharded" => {
            let mut c = ShardedQualityServer::partition(
                w.db.table("customer").unwrap(),
                4,
                Box::new(HashRouter::new(vec![1])),
            )
            .unwrap();
            if let Some(b) = budget {
                c = c.with_spill(spill_store(spill_dir, b), b);
            }
            Box::new(c)
        }
        "monitor" => Box::new(
            DataMonitor::new(w.db, "customer", Vec::new(), MonitorMode::DetectOnly).unwrap(),
        ),
        other => panic!("unknown backend '{other}' (single | cluster | monitor)"),
    }
}

fn backend(kind: &str, spill_dir: Option<&Path>) -> Box<dyn QualityBackend + Send> {
    backend_seeded(kind, spill_dir, ROWS)
}

/// Open (and recover) the WAL-wrapped backend, announcing what replay
/// found on stderr — stdout stays clean for `--report` diffing.
///
/// The demo workload is seeded only on *first* boot: once a checkpoint
/// exists it carries every row (seed included), and restore requires the
/// backend to start empty.
fn open_durable(kind: &str, dir: &Path) -> Durable<Box<dyn QualityBackend + Send>> {
    let seed_rows = if dir.join(CHECKPOINT_FILE).exists() {
        0
    } else {
        ROWS
    };
    let d = Durable::open(dir, backend_seeded(kind, Some(dir), seed_rows)).expect("recover WAL");
    let r = d.recovery();
    eprintln!(
        "wal: {} — {} checkpoint rows, {} records replayed ({} re-failed), \
         {} torn bytes truncated",
        dir.display(),
        r.checkpoint_rows,
        r.records_replayed,
        r.records_refailed,
        r.truncated_bytes
    );
    d
}

/// The backend with durability applied: when a WAL directory is
/// configured, wrap in [`Durable`] — prior state replays now, and every
/// future mutation logs before it applies.
fn service_backend(kind: &str, wal: Option<&Path>) -> Box<dyn QualityBackend + Send> {
    match wal {
        None => backend(kind, None),
        Some(dir) => Box::new(open_durable(kind, dir)),
    }
}

/// A donor row with one corrupted column — traffic that violates a rule.
fn dirty_row(corrupt_col: usize, v: &str) -> Vec<Value> {
    let w = dirty_customers(ROWS, 0.05, SEED);
    let mut row: Vec<Value> =
        w.db.table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
    row[corrupt_col] = Value::str(v);
    row
}

/// The client script: registration, mixed ingest batches, detection,
/// audit, repair, introspection.
fn script() -> Vec<Request> {
    let ingest_1 = MutationBatch {
        mutations: vec![
            Mutation::Insert(dirty_row(2, "WRONGCITY")),
            Mutation::Insert(dirty_row(1, "XX")),
            Mutation::SetCell {
                row: RowId(17),
                col: 2,
                value: Value::str("ELSEWHERE"),
            },
        ],
    };
    let ingest_2 = MutationBatch {
        mutations: vec![
            Mutation::Delete(RowId(ROWS as u64)), // drop the first dirty insert
            Mutation::Insert(dirty_row(3, "00000")),
        ],
    };
    vec![
        Request::Capabilities,
        Request::Len,
        Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        },
        Request::Detect,
        Request::Audit,
        Request::ApplyBatch { batch: ingest_1 },
        Request::Detect,
        Request::ApplyBatch { batch: ingest_2 },
        Request::Detect,
        Request::Audit,
        Request::Repair, // capability-gated: server + cluster repair, monitor refuses
        Request::Detect,
        Request::LastReport,
        Request::Len,
    ]
}

fn preview(line: &str) -> String {
    const MAX: usize = 96;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let cut = (0..=MAX).rev().find(|&i| line.is_char_boundary(i)).unwrap();
        format!("{}… (+{} bytes)", &line[..cut], line.len() - cut)
    }
}

fn serve(kind: &str, wal: Option<&Path>) {
    println!("=== backend: {kind} ===");
    let mut b = service_backend(kind, wal);
    for request in script() {
        // Client side: serialize. Server side: decode, dispatch, encode.
        let wire_in = request.encode();
        let wire_out = dispatch_line(b.as_mut(), &wire_in);
        // Client side again: decode the answer.
        let response = Response::decode(&wire_out).expect("server speaks the protocol");
        println!("→ {}", preview(&wire_in));
        println!("← {}", preview(&wire_out));
        match response {
            Response::Report(s) => println!(
                "  {} violations over {} dirty rows",
                s.violations, s.dirty_rows
            ),
            Response::Audited(s) => println!(
                "  {} tuples, {:.1}% dirty",
                s.tuples,
                s.dirty_fraction * 100.0
            ),
            Response::Repaired(s) => println!(
                "  repaired: {} changes in {} rounds, {} residual",
                s.changes, s.iterations, s.residual
            ),
            Response::Error { message } => println!("  refused: {message}"),
            _ => {}
        }
    }
    println!();
}

/// Serve one backend over TCP until stdin yields a line (or EOF) — the
/// shutdown handshake the CI fifo uses. Drains the writer queue before
/// returning the backend for post-shutdown work.
fn listen_with<B: QualityBackend + Send + 'static>(b: B, addr: Option<String>, kind: &str) -> B {
    let mut config = NetConfig::from_env();
    if let Some(addr) = addr {
        config.addr = addr;
    }
    let server = NetServer::serve(b, config).expect("bind listen address");
    println!(
        "listening on {} (backend: {kind}; a stdin line or EOF stops the server)",
        server.local_addr()
    );
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    server.shutdown()
}

/// Serve over TCP; with a WAL directory, log every accepted mutation and
/// checkpoint on clean shutdown (a `kill -9` instead leaves the log for
/// the next start to replay).
fn listen(kind: &str, addr: Option<String>, wal: Option<&Path>) {
    match wal {
        None => {
            let b = listen_with(backend(kind, None), addr, kind);
            println!("server stopped; {} rows after shutdown drain", b.len());
        }
        Some(dir) => {
            let mut d = listen_with(open_durable(kind, dir), addr, kind);
            match d.checkpoint() {
                Ok(()) => println!(
                    "server stopped; checkpointed {} rows, wal rotated to generation {}",
                    d.len(),
                    d.wal_generation()
                ),
                Err(e) => println!("server stopped; {} rows (checkpoint skipped: {e})", d.len()),
            }
        }
    }
}

/// Offline crash-recovery check: replay the WAL into a fresh backend and
/// print the encoded detect report (stdout carries only that line).
fn report(kind: &str, wal: &Path) {
    let mut b = service_backend(kind, Some(wal));
    println!("{}", dispatch_line(b.as_mut(), &Request::Detect.encode()));
}

/// Online half of the same check: ask a running server for its detect
/// report over TCP and print the same encoded line.
fn probe(addr: &str) {
    let mut client = Client::connect(addr).expect("connect");
    let resp = client.request(&Request::Detect).expect("round trip");
    println!("{}", resp.encode());
}

/// One client session: mixed reads and writes that stay out of other
/// clients' way (each mutates only rows it inserted itself), ending with
/// a `Request::Metrics` that proves the service counted the traffic.
/// `peers` is the total session count — the bound on how many rows the
/// others can delete while this one works.
fn client_session(addr: &str, c: usize, peers: usize) {
    let mut client = Client::connect(addr).expect("connect");
    let mut served = 0usize;
    let mut ask = |client: &mut Client, req: &Request| -> Response {
        let resp = client.request(req).expect("round trip");
        assert!(
            !matches!(resp, Response::Error { .. }),
            "client {c}: {req:?} refused: {resp:?}"
        );
        served += 1;
        resp
    };
    ask(&mut client, &Request::Capabilities);
    let Response::Len { rows: before } = ask(&mut client, &Request::Len) else {
        panic!("client {c}: Len answered something else");
    };
    ask(&mut client, &Request::Detect);
    let Response::Inserted { row: own } = ask(
        &mut client,
        &Request::Insert {
            row: dirty_row(2, &format!("CLIENT{c}")),
        },
    ) else {
        panic!("client {c}: Insert answered something else");
    };
    // Read-your-writes: the insert reply arrived after its epoch
    // published, so the row count includes the row (minus whatever other
    // clients deleted concurrently), and — the real pin — the mutations
    // below on the freshly inserted row must find it.
    let Response::Len { rows: after } = ask(&mut client, &Request::Len) else {
        panic!("client {c}: Len answered something else");
    };
    assert!(
        after + peers > before,
        "client {c}: own insert is visible (len {before} -> {after})"
    );
    ask(
        &mut client,
        &Request::UpdateCell {
            row: own,
            col: 2,
            value: Value::str("MOVED"),
        },
    );
    ask(&mut client, &Request::Detect);
    ask(&mut client, &Request::Audit);
    ask(&mut client, &Request::Delete { row: own });
    ask(&mut client, &Request::LastReport);
    let Response::Metrics(report) = ask(&mut client, &Request::Metrics) else {
        panic!("client {c}: Metrics answered something else");
    };
    let detects = report
        .counter("net_requests_total{kind=\"detect\"}")
        .unwrap_or(0);
    assert!(detects > 0, "client {c}: the service counts requests");
    println!("client {c}: {served} requests served, net detect count {detects}");
}

/// N concurrent sessions against a running server.
fn connect(addr: &str, clients: usize) {
    // Rules are registered once, not per client — re-registration is a
    // write every client would race on.
    let mut ctl = Client::connect(addr).expect("connect");
    let resp = ctl
        .request(&Request::RegisterCfds {
            text: CANONICAL_CFDS.to_string(),
        })
        .expect("register rules");
    assert!(
        matches!(resp, Response::Registered { .. }),
        "rule registration refused: {resp:?}"
    );
    let sessions: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.to_string();
            std::thread::spawn(move || client_session(&addr, c, clients))
        })
        .collect();
    for s in sessions {
        s.join().expect("client session clean");
    }
    println!("{clients} concurrent clients OK against {addr}");
}

/// Pull `--flag [value]` out of the argument list; the value is taken
/// only when the next argument isn't itself a flag.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<Option<String>> {
    let at = args.iter().position(|a| a == flag)?;
    args.remove(at);
    let value = if args.get(at).is_some_and(|a| !a.starts_with("--")) {
        Some(args.remove(at))
    } else {
        None
    };
    Some(value)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics = args.iter().any(|a| a == "--metrics");
    let trace = args.iter().any(|a| a == "--trace");
    args.retain(|a| a != "--metrics" && a != "--trace");
    if trace {
        semandaq::obs::trace::set_enabled(true);
    }
    // WAL directory: flag wins, `SDQ_WAL_DIR` is the env spelling.
    let wal: Option<PathBuf> = take_flag(&mut args, "--wal")
        .map(|v| v.expect("--wal needs DIR"))
        .or_else(|| semandaq::obs::env::string("SDQ_WAL_DIR"))
        .map(PathBuf::from);
    if let Some(addr) = take_flag(&mut args, "--probe") {
        probe(&addr.expect("--probe needs ADDR"));
        return;
    }
    if args.iter().any(|a| a == "--report") {
        args.retain(|a| a != "--report");
        let kind = take_flag(&mut args, "--backend")
            .map(|v| v.expect("--backend needs a kind"))
            .unwrap_or_else(|| "single".into());
        assert!(
            args.is_empty(),
            "--report takes only --backend/--wal, got {args:?}"
        );
        let wal = wal.expect("--report needs --wal DIR (or SDQ_WAL_DIR)");
        report(&kind, &wal);
        return;
    }
    let listen_to = take_flag(&mut args, "--listen");
    let connect_to = take_flag(&mut args, "--connect");
    let clients = take_flag(&mut args, "--clients")
        .map(|v| {
            v.expect("--clients needs a count")
                .parse::<usize>()
                .expect("--clients needs a number")
        })
        .unwrap_or(1);
    match (connect_to, listen_to, args.as_slice()) {
        (Some(addr), None, []) => {
            // `--clients 0` is a request for no work — refuse it loudly
            // rather than silently rounding up to one session.
            if clients == 0 {
                eprintln!("--clients 0 would run no sessions; pass a positive count");
                std::process::exit(2);
            }
            connect(&addr.expect("--connect needs ADDR"), clients);
            return;
        }
        (None, Some(addr), []) => listen("single", addr, wal.as_deref()),
        (None, Some(addr), [flag, kind]) if flag == "--backend" => {
            listen(kind, addr, wal.as_deref())
        }
        (None, None, []) => {
            for kind in ["single", "cluster", "monitor"] {
                serve(kind, wal.as_deref());
            }
        }
        (None, None, [flag, kind]) if flag == "--backend" => serve(kind, wal.as_deref()),
        (_, _, other) => panic!(
            "usage: quality_service [--backend single|cluster|monitor] [--listen [ADDR]] \
             [--connect ADDR [--clients N]] [--wal DIR] [--report] [--probe ADDR] \
             [--metrics] [--trace], got {other:?}"
        ),
    }
    if metrics {
        println!("=== metrics ===");
        print!("{}", semandaq::obs::render_text());
    }
    if trace {
        let traces = semandaq::obs::trace::recent_traces();
        match traces.iter().max_by_key(|t| t.duration_us) {
            None => println!("=== trace: nothing captured ==="),
            Some(slowest) => {
                println!("=== trace: {} captured requests ===", traces.len());
                for t in &traces {
                    println!(
                        "{:<14} {:>8}µs  {} spans",
                        t.name,
                        t.duration_us,
                        t.spans.len()
                    );
                }
                println!("--- slowest ---");
                print!("{}", slowest.render_tree());
                // One Chrome trace-event file for *all* captured requests,
                // written next to the binary so repeat runs overwrite.
                let events: Vec<String> = traces
                    .iter()
                    .map(|t| {
                        let json = t.to_chrome_json();
                        // Splice each report's event array into one stream.
                        json.trim_start_matches('[')
                            .trim_end_matches(']')
                            .trim()
                            .to_string()
                    })
                    .filter(|s| !s.is_empty())
                    .collect();
                let path = std::env::current_exe()
                    .map(|p| p.with_file_name("quality_service_trace.json"))
                    .unwrap_or_else(|_| std::path::PathBuf::from("quality_service_trace.json"));
                match std::fs::write(&path, format!("[{}]", events.join(","))) {
                    Ok(()) => println!("chrome trace written to {}", path.display()),
                    Err(e) => println!("chrome trace not written: {e}"),
                }
            }
        }
    }
}
