//! Constraint discovery workflow: mine CFDs from clean reference data,
//! validate them, then use them to clean a dirty instance of the same
//! schema — the "automatically discovered from reference data" path of the
//! paper's constraint engine.
//!
//! ```sh
//! cargo run --example discovery_workflow
//! ```

use semandaq::cfd::DomainSpec;
use semandaq::datagen::{dirty_customers, generate_customers, CustomerConfig};
use semandaq::detect::detect_native;
use semandaq::discovery::{
    discover_fds, mine_constant_cfds, mine_variable_cfds, validate_rules, CtaneConfig, MinerConfig,
    TaneConfig,
};
use semandaq::minidb::Database;
use semandaq::repair::{batch_repair, RepairConfig};

fn main() {
    // Reference data: a clean customer sample.
    let reference = generate_customers(&CustomerConfig {
        rows: 2_000,
        ..CustomerConfig::default()
    });

    // 1. Plain FDs via TANE-style discovery.
    let fds = discover_fds(&reference, &TaneConfig::default());
    println!("discovered {} minimal FDs, e.g.:", fds.len());
    for d in fds.iter().take(5) {
        println!("  {} (g3 = {:.3})", d.fd, d.g3);
    }

    // 2. Constant CFDs via itemset mining.
    let consts = mine_constant_cfds(
        &reference,
        &MinerConfig {
            min_support: 100,
            max_lhs: 1,
            relation: "customer".into(),
        },
    );
    println!("\ndiscovered {} constant CFDs:", consts.len());
    for d in consts.iter().take(6) {
        println!("  {} (support {})", d.cfd, d.support);
    }

    // 3. Variable CFDs (CTane-style).
    let vars = mine_variable_cfds(
        &reference,
        &CtaneConfig {
            max_lhs: 2,
            max_constants: 1,
            min_support: 150,
            relation: "customer".into(),
        },
    );
    println!("\ndiscovered {} variable CFDs:", vars.len());
    for d in vars.iter().take(6) {
        println!("  {} (support {})", d.cfd, d.support);
    }

    // 4. Validate the combined rule set.
    let mut rules: Vec<semandaq::cfd::Cfd> = consts.into_iter().map(|d| d.cfd).collect();
    rules.extend(vars.into_iter().map(|d| d.cfd));
    let verdict = validate_rules(&rules, &DomainSpec::all_infinite()).unwrap();
    println!(
        "\nvalidation: {} rules, consistent = {}",
        verdict.rules, verdict.consistent
    );
    assert!(verdict.consistent);

    // 5. Clean a dirty instance with the discovered rules.
    let dirty = dirty_customers(800, 0.04, 99);
    let mut db: Database = dirty.db;
    let before = detect_native(db.table("customer").unwrap(), &rules)
        .unwrap()
        .len();
    let result = batch_repair(&mut db, "customer", &rules, &RepairConfig::default()).unwrap();
    let after = detect_native(db.table("customer").unwrap(), &rules)
        .unwrap()
        .len();
    println!(
        "\ncleaning a dirty instance with discovered rules: {before} violations -> {after} \
         ({} changes, {} residual)",
        result.changes.len(),
        result.residual.len()
    );
}
