//! Sharded quality cluster demo: a HOSP-style relation partitioned four
//! ways, a dirty update stream routed through the cluster, and
//! scatter/gather detection whose merged report equals single-node
//! detection exactly.
//!
//! ```sh
//! cargo run --example sharded_cluster
//! ```

use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::colstore::detect_columnar;
use semandaq::datagen::{generate_hosp, hosp_cfds, HospConfig};
use semandaq::minidb::Value;

fn main() {
    // A clean HOSP table: provider/measure observations with the usual
    // geography and dictionary dependencies.
    let table = generate_hosp(&HospConfig {
        rows: 4_000,
        providers: 300,
        seed: 7,
    });
    let cfds = hosp_cfds();

    // Partition four ways, hashing on ZIP (column 4): the geography rules
    // [ZIP] -> [CITY, STATE] stay shard-local, the provider key rules and
    // the measure dictionary split across shards.
    let mut cluster =
        ShardedQualityServer::partition(&table, 4, Box::new(HashRouter::new(vec![4])))
            .expect("partition");
    cluster.register_cfds(cfds.clone()).expect("CFDs bind");
    println!(
        "hosp: {} rows over {} shards",
        cluster.len(),
        cluster.n_shards()
    );
    println!("placement: {:?} rows per shard", cluster.shard_sizes());

    let report = cluster.detect().expect("detect");
    println!("\nclean data: {} violations\n", report.len());

    // Stream dirty updates through the router: a wrong city for one ZIP
    // (a conflict the owning shard sees by itself), then a *cross-shard*
    // conflict — two rows on different shards are re-coded to the same
    // novel MEASURE while keeping different CONDITIONs. Each shard holds a
    // singleton 'XR-9' group (locally clean); only the merged group
    // violates [MEASURE] -> [CONDITION].
    let mut reference = table.clone();
    let ids = reference.row_ids();
    println!("-- streaming dirty updates through the cluster --");
    let apply = |cluster: &mut ShardedQualityServer,
                 reference: &mut semandaq::minidb::Table,
                 id,
                 col: usize,
                 v: &str| {
        let v = Value::str(v);
        reference
            .update_cell(id, col, v.clone())
            .expect("row is live");
        cluster.update_cell(id, col, v).expect("routed update");
        println!(
            "  row {:>5} col {col} <- {:<12} (shard {})",
            id.0,
            format!("'{}'", reference.get(id).unwrap()[col].render()),
            cluster.shard_of(id).expect("row is placed")
        );
    };
    apply(&mut cluster, &mut reference, ids[0], 2, "WRONG CITY");
    // Two rows on different shards, different conditions, same new measure.
    let s0 = cluster.shard_of(ids[0]).unwrap();
    let other = ids
        .iter()
        .copied()
        .find(|&id| {
            cluster.shard_of(id) != Some(s0)
                && reference.get(id).unwrap()[7] != reference.get(ids[0]).unwrap()[7]
        })
        .expect("some row on another shard with another condition");
    apply(&mut cluster, &mut reference, ids[0], 6, "XR-9");
    apply(&mut cluster, &mut reference, other, 6, "XR-9");

    // Per-shard local counts vs the merged report: local detection misses
    // every conflict whose group is split across shards.
    let merged = cluster.detect().expect("detect");
    let stats = cluster.last_detect_stats();
    println!("\n-- shard-local vs merged --");
    let mut local_total = 0;
    for s in 0..cluster.n_shards() {
        let local = detect_columnar(cluster.shard_table(s), &cfds).expect("local detect");
        println!(
            "  shard {s}: {:>5} rows, {:>2} local violations",
            cluster.shard_table(s).len(),
            local.len()
        );
        local_total += local.len();
    }
    println!("  sum of shard-local violations: {local_total}");
    println!("  merged cluster violations:     {}", merged.len());

    // The merged report is exactly single-node detection.
    let single = detect_columnar(&reference, &cfds).expect("single-node detect");
    assert_eq!(merged.clone().normalized(), single.normalized());
    println!("\nmerged == single-node columnar detection  ✓");
    println!(
        "exchange: {} groups / {} members shipped; {} partials reused, {} recomputed",
        stats.exported_groups,
        stats.exported_members,
        stats.partials_reused,
        stats.partials_computed
    );
    println!(
        "snapshot encodes across shards: {} (updates were patched, not re-encoded)",
        cluster.snapshot_encodes()
    );
}
