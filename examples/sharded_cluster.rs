//! Sharded quality cluster demo: a HOSP-style relation partitioned four
//! ways, a dirty update stream routed through the cluster, scatter/gather
//! detection whose merged report equals single-node detection exactly —
//! and a repair epilogue where the cluster fixes a conflict that *no*
//! shard can even see locally.
//!
//! ```sh
//! cargo run --example sharded_cluster
//! ```

use semandaq::cluster::{HashRouter, ShardedQualityServer};
use semandaq::colstore::detect_columnar;
use semandaq::datagen::{generate_hosp, hosp_cfds, HospConfig};
use semandaq::minidb::Value;

fn main() {
    // A clean HOSP table: provider/measure observations with the usual
    // geography and dictionary dependencies.
    let table = generate_hosp(&HospConfig {
        rows: 4_000,
        providers: 300,
        seed: 7,
    });
    let cfds = hosp_cfds();

    // Partition four ways, hashing on ZIP (column 4): the geography rules
    // [ZIP] -> [CITY, STATE] stay shard-local, the provider key rules and
    // the measure dictionary split across shards.
    let mut cluster =
        ShardedQualityServer::partition(&table, 4, Box::new(HashRouter::new(vec![4])))
            .expect("partition");
    cluster.register_cfds(cfds.clone()).expect("CFDs bind");
    println!(
        "hosp: {} rows over {} shards",
        cluster.len(),
        cluster.n_shards()
    );
    println!("placement: {:?} rows per shard", cluster.shard_sizes());

    let report = cluster.detect().expect("detect");
    println!("\nclean data: {} violations\n", report.len());

    // Stream dirty updates through the router: a wrong city for one ZIP
    // (a conflict the owning shard sees by itself), then a *cross-shard*
    // conflict — two rows on different shards are re-coded to the same
    // novel MEASURE while keeping different CONDITIONs. Each shard holds a
    // singleton 'XR-9' group (locally clean); only the merged group
    // violates [MEASURE] -> [CONDITION].
    let mut reference = table.clone();
    let ids = reference.row_ids();
    println!("-- streaming dirty updates through the cluster --");
    let apply = |cluster: &mut ShardedQualityServer,
                 reference: &mut semandaq::minidb::Table,
                 id,
                 col: usize,
                 v: &str| {
        let v = Value::str(v);
        reference
            .update_cell(id, col, v.clone())
            .expect("row is live");
        cluster.update_cell(id, col, v).expect("routed update");
        println!(
            "  row {:>5} col {col} <- {:<12} (shard {})",
            id.0,
            format!("'{}'", reference.get(id).unwrap()[col].render()),
            cluster.shard_of(id).expect("row is placed")
        );
    };
    apply(&mut cluster, &mut reference, ids[0], 2, "WRONG CITY");
    // Two rows on different shards, different conditions, same new measure.
    let s0 = cluster.shard_of(ids[0]).unwrap();
    let other = ids
        .iter()
        .copied()
        .find(|&id| {
            cluster.shard_of(id) != Some(s0)
                && reference.get(id).unwrap()[7] != reference.get(ids[0]).unwrap()[7]
        })
        .expect("some row on another shard with another condition");
    apply(&mut cluster, &mut reference, ids[0], 6, "XR-9");
    apply(&mut cluster, &mut reference, other, 6, "XR-9");

    // Per-shard local counts vs the merged report: local detection misses
    // every conflict whose group is split across shards.
    let merged = cluster.detect().expect("detect");
    let stats = cluster.last_detect_stats();
    println!("\n-- shard-local vs merged --");
    let mut local_total = 0;
    for s in 0..cluster.n_shards() {
        let local = detect_columnar(cluster.shard_table(s), &cfds).expect("local detect");
        println!(
            "  shard {s}: {:>5} rows, {:>2} local violations",
            cluster.shard_table(s).len(),
            local.len()
        );
        local_total += local.len();
    }
    println!("  sum of shard-local violations: {local_total}");
    println!("  merged cluster violations:     {}", merged.len());

    // The merged report is exactly single-node detection.
    let single = detect_columnar(&reference, &cfds).expect("single-node detect");
    assert_eq!(merged.clone().normalized(), single.normalized());
    println!("\nmerged == single-node columnar detection  ✓");
    println!(
        "exchange: {} groups / {} members shipped; {} partials reused, {} recomputed",
        stats.exported_groups,
        stats.exported_members,
        stats.partials_reused,
        stats.partials_computed
    );
    println!(
        "snapshot encodes across shards: {} (updates were patched, not re-encoded)",
        cluster.snapshot_encodes()
    );

    // -- repair: the cross-shard conflict actually gets fixed --
    //
    // Shard-local repair could never resolve the XR-9 conflict (each shard
    // holds a clean singleton group); the cluster repairs at the
    // coordinator over the merged equivalence classes and routes the cell
    // changes back to their owning shards.
    println!("\n-- sharded repair --");
    let encodes_before = cluster.snapshot_encodes();
    let repair = cluster.repair().expect("repair");
    println!(
        "repaired in {} rounds: {} cell changes (cost {:.2}), {} residual",
        repair.iterations,
        repair.changes.len(),
        repair.total_cost,
        repair.residual.len()
    );
    for c in &repair.changes {
        println!(
            "  row {:>5} col {} : {:<14} -> {:<14} (shard {})",
            c.row.0,
            c.col,
            format!("'{}'", c.old.render()),
            format!("'{}'", c.new.render()),
            cluster.shard_of(c.row).expect("row is placed")
        );
    }
    assert!(repair.residual.is_empty());
    assert!(cluster.detect().expect("detect").is_empty());
    println!("post-repair detection: 0 violations  ✓");
    // The XR-9 rows — on different shards — now agree on CONDITION.
    let merged_table = cluster.merged_table().expect("merge");
    let conditions: Vec<String> = merged_table
        .iter()
        .filter(|(_, row)| row[6] == Value::str("XR-9"))
        .map(|(id, row)| format!("row {} -> '{}'", id.0, row[7].render()))
        .collect();
    println!("XR-9 group after repair: {}", conditions.join(", "));
    // ...and the repaired cluster equals a single-node batch repair of the
    // same (pre-repair) relation, cell for cell.
    let mut ref_db = semandaq::minidb::Database::new();
    ref_db.register_table(reference);
    semandaq::repair::batch_repair(
        &mut ref_db,
        "hosp",
        &cfds,
        &semandaq::repair::RepairConfig::default(),
    )
    .expect("single-node repair");
    let single_repaired = ref_db.table("hosp").expect("hosp table");
    assert_eq!(merged_table.len(), single_repaired.len());
    for (id, row) in merged_table.iter() {
        assert_eq!(
            row,
            single_repaired.get(id).expect("same live rows"),
            "row {id:?}"
        );
    }
    println!(
        "repaired cluster == single-node batch repair  ✓  \
         (snapshot encodes unchanged: {} -> {})",
        encodes_before,
        cluster.snapshot_encodes()
    );

    // -- exchange/merge telemetry: what the obs registry accumulated over
    //    every detect this process ran (including each repair round) --
    let m = semandaq::obs::snapshot();
    println!("\n-- exchange telemetry (obs registry) --");
    for name in [
        "cluster_detects_total",
        "cluster_partials_exported_total",
        "cluster_partials_merged_total",
        "cluster_partials_computed_total",
        "cluster_partials_reused_total",
        "cluster_exported_groups_total",
        "cluster_exported_members_total",
    ] {
        println!("  {name:<33} {}", m.counter(name).unwrap_or(0));
    }
    if let Some(h) = m.histogram("cluster_shard_export_ns") {
        println!(
            "  per-shard export: {} exports, p50 {}ns / p95 {}ns / max {}ns",
            h.count, h.p50, h.p95, h.max
        );
    }
    if let Some(h) = m.histogram("cluster_merge_ns") {
        println!(
            "  coordinator merge: {} gathers, p50 {}ns / max {}ns",
            h.count, h.p50, h.max
        );
    }
    assert_eq!(
        m.counter("cluster_partials_exported_total"),
        m.counter("cluster_partials_merged_total"),
        "every exported partial is consumed by exactly one merge"
    );
}
