//! A tiny interactive SQL shell over the `minidb` substrate — handy for
//! poking at the customer data and the relational tableau encodings that
//! the detection queries run against.
//!
//! ```sh
//! echo "SELECT cnt, COUNT(*) AS n FROM customer GROUP BY cnt ORDER BY n DESC;" \
//!   | cargo run --example sql_shell
//! ```

use std::io::{self, BufRead, Write};

use semandaq::datagen::dirty_customers;
use semandaq::explore::render_table;
use semandaq::minidb::ExecOutcome;
use semandaq::system::QualityServer;

fn main() {
    // Pre-load a dirty customer table plus the CFD tableaux so there is
    // something interesting to query.
    let w = dirty_customers(500, 0.05, 123);
    let mut server = QualityServer::new(w.db, "customer").unwrap();
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    // Materialize the pattern tableaux as queryable relations, then take
    // the database out of the server for direct SQL access.
    let tableaux = server.store_tableaux().unwrap();
    println!("tableau tables: {tableaux:?}");
    let (mut db, _, _) = server.into_parts();
    db.execute("CREATE TABLE IF NOT EXISTS scratch (k TEXT, v TEXT)")
        .unwrap();

    println!("minidb shell — tables: {:?}", db.table_names());
    println!("end statements with ';'. Ctrl-D to exit.");
    let stdin = io::stdin();
    let mut buffer = String::new();
    print!("sql> ");
    io::stdout().flush().ok();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.trim_end().ends_with(';') {
            print!("...> ");
            io::stdout().flush().ok();
            continue;
        }
        let sql = buffer.trim().trim_end_matches(';').to_string();
        buffer.clear();
        if sql.is_empty() {
            print!("sql> ");
            io::stdout().flush().ok();
            continue;
        }
        match db.execute(&sql) {
            Ok(ExecOutcome::Rows(result)) => {
                let rows: Vec<Vec<String>> = result
                    .rows
                    .iter()
                    .map(|r| r.iter().map(|v| v.render()).collect())
                    .collect();
                print!("{}", render_table(&result.columns, &rows));
                println!("{} row(s)", result.rows.len());
            }
            Ok(ExecOutcome::Affected(n)) => println!("ok, {n} row(s) affected"),
            Err(e) => println!("error: {e}"),
        }
        print!("sql> ");
        io::stdout().flush().ok();
    }
    println!();
}
