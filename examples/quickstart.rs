//! Quickstart: load data, declare CFDs, detect, audit, repair.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use semandaq::datagen::dirty_customers;
use semandaq::system::QualityServer;

fn main() {
    // 1. A dirty workload: the paper's customer relation with 5% of the
    //    constrained cells corrupted (seeded, reproducible).
    let workload = dirty_customers(1_000, 0.05, 42);
    println!(
        "loaded {} customer tuples, {} cells corrupted",
        workload.db.table("customer").unwrap().len(),
        workload.mask.len()
    );

    // 2. Stand up the quality server and register the paper's CFDs.
    //    Registration runs the consistency check — inconsistent rule sets
    //    are rejected.
    let mut server = QualityServer::new(workload.db, "customer").unwrap();
    let verdict = server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    println!(
        "registered {} CFDs (consistent: {})",
        server.engine().len(),
        verdict.is_consistent()
    );

    // 3. Detect violations with the SQL-based detector.
    let report = server.detect().unwrap();
    println!(
        "detected {} violations over {} dirty tuples",
        report.len(),
        report.dirty_rows().len()
    );

    // 4. Audit: the Fig-4-style quality report.
    let audit = server.audit().unwrap();
    print!("{}", audit.render());

    // 5. Repair and verify.
    let result = server.repair().unwrap();
    println!(
        "repair: {} cell changes, total cost {:.2}, {} residual violations",
        result.changes.len(),
        result.total_cost,
        result.residual.len()
    );
    let after = server.detect().unwrap();
    println!("violations after repair: {}", after.len());
    assert!(after.is_empty());
}
