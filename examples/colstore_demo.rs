//! Columnar detection through the public API: the quality server configured
//! with `DetectorKind::Columnar`, plus direct snapshot reuse.
//!
//! ```sh
//! cargo run --release --example colstore_demo
//! ```

use semandaq::colstore::{detect_on_snapshot, Snapshot};
use semandaq::datagen::dirty_customers;
use semandaq::detect::detect_native;
use semandaq::system::{DetectorKind, QualityServer, ServerConfig};

fn main() {
    let w = dirty_customers(20_000, 0.05, 2008);
    let table = w.db.table("customer").unwrap().clone();

    // Through the assembled system.
    let mut server = QualityServer::new(w.db, "customer")
        .unwrap()
        .with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
    server
        .register_cfds(semandaq::datagen::customer::CANONICAL_CFDS)
        .unwrap();
    let report = server.detect().unwrap();
    println!(
        "columnar server: {} violations over {} dirty tuples",
        report.len(),
        report.dirty_rows().len()
    );

    // Cross-check against the reference engine.
    let native = detect_native(&table, server.engine().cfds()).unwrap();
    assert_eq!(
        native.clone().normalized(),
        report.clone().normalized(),
        "columnar must equal native"
    );
    println!("native agrees: {} violations", native.len());

    // Snapshot reuse: one encode, many rule evaluations.
    let snap = Snapshot::of(&table);
    for (i, chunk) in server.engine().cfds().chunks(2).enumerate() {
        let r = detect_on_snapshot(&snap, chunk).unwrap();
        println!("rule chunk {i}: {} violations (snapshot reused)", r.len());
    }
}
