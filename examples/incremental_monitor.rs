//! The Data Monitor in action: a cleansed database under a live update
//! stream, first in detect-only mode, then with repair-on-arrival.
//!
//! ```sh
//! cargo run --example incremental_monitor
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use semandaq::datagen::{canonical_cfds, generate_customers, CustomerConfig};
use semandaq::minidb::{Database, Value};
use semandaq::system::{DataMonitor, MonitorMode, Update};

fn main() {
    let table = generate_customers(&CustomerConfig {
        rows: 1_000,
        ..CustomerConfig::default()
    });
    let mut db = Database::new();
    db.register_table(table);

    // Phase 1: detect-only monitoring of a mixed update stream.
    let mut monitor =
        DataMonitor::new(db, "customer", canonical_cfds(), MonitorMode::DetectOnly).unwrap();
    println!("initial violations: {}", monitor.violations());

    let mut rng = StdRng::seed_from_u64(2024);
    let mut inserted = Vec::new();
    for step in 0..20 {
        let ids = monitor.database().table("customer").unwrap().row_ids();
        let outcome = match step % 3 {
            0 => {
                // dirty insert: copy a row, corrupt its CITY
                let donor = ids[rng.gen_range(0..ids.len())];
                let mut row: Vec<Value> = monitor
                    .database()
                    .table("customer")
                    .unwrap()
                    .get(donor)
                    .unwrap()
                    .to_vec();
                row[2] = Value::str(format!("BAD{step}"));
                let out = monitor.apply(Update::Insert(row)).unwrap();
                inserted.push(out.row.unwrap());
                out
            }
            1 => {
                // clean delete
                let victim = ids[rng.gen_range(0..ids.len())];
                monitor.apply(Update::Delete(victim)).unwrap()
            }
            _ => {
                // corrupt a cell in place
                let row = ids[rng.gen_range(0..ids.len())];
                monitor
                    .apply(Update::SetCell {
                        row,
                        col: 1,
                        value: Value::str("XX"),
                    })
                    .unwrap()
            }
        };
        println!(
            "step {step:>2}: violations = {} (repairs applied: {})",
            outcome.violations, outcome.repairs
        );
    }

    // Phase 2: flip to repair-on-arrival; new dirty tuples are fixed as
    // they land.
    monitor.set_mode(MonitorMode::RepairOnArrival);
    println!("\nswitching to repair-on-arrival");
    let baseline = monitor.violations();
    for k in 0..5 {
        let ids = monitor.database().table("customer").unwrap().row_ids();
        let donor = ids[k * 7 % ids.len()];
        let mut row: Vec<Value> = monitor
            .database()
            .table("customer")
            .unwrap()
            .get(donor)
            .unwrap()
            .to_vec();
        row[2] = Value::str(format!("WRONG{k}"));
        let out = monitor.apply(Update::Insert(row)).unwrap();
        println!(
            "dirty arrival {k}: repaired with {} changes, violations = {}",
            out.repairs, out.violations
        );
        assert!(
            out.violations <= baseline,
            "arrivals must not add violations"
        );
    }
}
