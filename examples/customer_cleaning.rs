//! The full demo-paper walkthrough on the customer relation: reproduces
//! the *content* of Figures 2–5 as text.
//!
//! ```sh
//! cargo run --example customer_cleaning
//! ```

use semandaq::audit::{quality_map, quality_report};
use semandaq::datagen::dirty_customers;
use semandaq::detect::detect_sql;
use semandaq::explore::{
    diff_tables, inspect_tuple, render_inspection, NavigationSession, ReviewSession,
};
use semandaq::minidb::Value;
use semandaq::repair::{batch_repair, RepairConfig};

fn main() {
    let mut w = dirty_customers(400, 0.05, 7);
    let original = w.db.table("customer").unwrap().clone();

    // ---- Error detection (the engine behind every figure) --------------
    let report = detect_sql(&mut w.db, "customer", &w.cfds).unwrap();
    println!("== detection: {} violations ==\n", report.len());

    // ---- Figure 2: data exploration using CFDs --------------------------
    let table = w.db.table("customer").unwrap();
    let nav = NavigationSession::new(table, &w.cfds, &report).unwrap();
    println!("-- Fig 2 / table 1: embedded FDs --");
    print!("{}", nav.render_fds());
    let fds = nav.fds();
    let busiest = fds.iter().max_by_key(|e| e.violations).unwrap();
    println!("-- Fig 2 / table 2: pattern tuples of {} --", busiest.fd);
    print!("{}", nav.render_patterns(busiest.idx));
    let pattern = nav
        .patterns(busiest.idx)
        .into_iter()
        .max_by_key(|p| p.violations)
        .unwrap();
    println!("-- Fig 2 / table 3: LHS matches of {} --", pattern.pattern);
    print!("{}", nav.render_lhs(pattern.cfd_idx, 6));
    let lhs = nav.lhs_matches(pattern.cfd_idx);
    if let Some(worst) = lhs.iter().find(|e| e.violating > 0) {
        println!(
            "-- Fig 2 / table 4: RHS values under {:?} --",
            worst.key.iter().map(Value::render).collect::<Vec<_>>()
        );
        print!("{}", nav.render_rhs(pattern.cfd_idx, &worst.key));
    }

    // Reverse exploration: why is this tuple dirty?
    if let Some(row) = report.vio.rows().next() {
        println!("\n-- reverse exploration of row {} --", row.0);
        let rel = inspect_tuple(table, &w.cfds, &report, row).unwrap();
        print!("{}", render_inspection(&rel));
    }

    // ---- Figure 3: the data quality map ---------------------------------
    let map = quality_map(table, &report);
    println!("\n-- Fig 3: data quality map (first 10 lines) --");
    for line in map.render(80).lines().take(12) {
        println!("{line}");
    }

    // ---- Figure 4: the data quality report -------------------------------
    let audit = quality_report(table, &w.cfds, &report).unwrap();
    println!("\n-- Fig 4: data quality report --");
    print!("{}", audit.render());

    // ---- Figure 5: data cleansing review ---------------------------------
    let result = batch_repair(&mut w.db, "customer", &w.cfds, &RepairConfig::default()).unwrap();
    println!(
        "\n-- Fig 5: cleansing review ({} changes, cost {:.2}) --",
        result.changes.len(),
        result.total_cost
    );
    let diff = diff_tables(&original, w.db.table("customer").unwrap());
    for line in diff.lines().take(14) {
        println!("{line}");
    }
    let mut session = ReviewSession::new(&mut w.db, "customer", &w.cfds, &result.changes).unwrap();
    println!("\nalternatives for the first modification:");
    for alt in session.alternatives(0, 3).unwrap() {
        println!(
            "  {} (cost {:.2}, consistent: {})",
            alt.value.render(),
            alt.cost,
            alt.consistent
        );
    }
    // Override one change with a bad value and watch re-detection react.
    let before = session.current_violations();
    let conflicts = session.override_with(0, Value::str("Atlantis")).unwrap();
    println!(
        "override with 'Atlantis': violations {} -> {}, {} conflicting tuples",
        before,
        session.current_violations(),
        conflicts.len()
    );
}
