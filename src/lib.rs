//! # Semandaq — umbrella crate
//!
//! Re-exports every component of the Semandaq reproduction so examples and
//! downstream users can depend on a single crate:
//!
//! * [`api`] — the unified quality API: the `QualityBackend` trait every
//!   engine implements, the shared `Mutation`/`MutationBatch` vocabulary,
//!   and the serializable `Request`/`Response` command protocol.
//! * [`minidb`] — the relational substrate (SQL engine).
//! * [`cfd`] — conditional functional dependencies and static analysis.
//! * [`detect`] — SQL-based, native, and incremental violation detection.
//! * [`repair`] — cost-based data repair (batch + incremental).
//! * [`audit`] — quality metrics, reports, quality map and charts.
//! * [`explore`] — drill-down navigation, tuple inspection, cleansing review.
//! * [`colstore`] — columnar snapshot store: dictionary-encoded columns and
//!   vectorized CFD detection.
//! * [`cluster`] — sharded quality cluster: partitioned colstore shards
//!   with scatter/gather CFD detection and report merge.
//! * [`discovery`] — FD/CFD discovery from reference data.
//! * [`datagen`] — seeded workload generators.
//! * [`durable`] — the durability tier: CRC-framed mutation write-ahead
//!   log with startup replay and checkpointing (`Durable`), plus the
//!   paged cold-chunk spill store (`PagedStore`) behind a clock-eviction
//!   buffer pool.
//! * [`net`] — the TCP service tier: a single-writer / lock-free
//!   multi-reader `ConcurrentEngine` over any backend, a newline-framed
//!   `NetServer` transport, and a blocking `Client`.
//! * [`obs`] — zero-dependency telemetry: counters, gauges, latency
//!   histograms and span timers on a global registry, snapshotted as a
//!   `MetricsReport` (also served over the wire via `Request::Metrics`).
//! * [`system`] (re-export of `semandaq-core`) — the assembled system:
//!   constraint engine, quality server, data monitor.

pub use api;
pub use audit;
pub use cfd;
pub use cluster;
pub use colstore;
pub use datagen;
pub use detect;
pub use discovery;
pub use durable;
pub use explore;
pub use minidb;
pub use net;
pub use obs;
pub use repair;
pub use semandaq_core as system;
