//! Consistency (satisfiability) analysis for CFD sets.
//!
//! A set Σ of CFDs is *consistent* iff some **nonempty** instance satisfies
//! it ([3] §3). Because every subset of a satisfying instance also satisfies
//! Σ (CFD violations never disappear when tuples are removed), Σ is
//! consistent iff some **single tuple** satisfies it; and a single tuple can
//! only violate CFDs whose RHS pattern is a constant. So consistency
//! reduces to a constraint-satisfaction search for a witness tuple, over
//! per-attribute candidate sets of: constants appearing in Σ plus one fresh
//! value (infinite domains), or the declared finite domain.
//!
//! The problem is NP-complete with finite domains ([3] Thm 3.2); the solver
//! below is a backtracking search with unit propagation of constant rules,
//! guarded by a node budget.

use std::collections::HashMap;

use minidb::Value;

use crate::dependency::Cfd;
use crate::domain::DomainSpec;
use crate::error::{CfdError, CfdResult};
use crate::pattern::Pattern;

/// Outcome of a consistency check.
#[derive(Debug, Clone, PartialEq)]
pub enum Consistency {
    /// Σ is satisfiable; a witness tuple is included (attr → value).
    Consistent(Vec<(String, Value)>),
    /// No nonempty instance satisfies Σ.
    Inconsistent,
}

impl Consistency {
    /// True iff consistent.
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent(_))
    }
}

/// Default node budget for the backtracking search.
pub const DEFAULT_NODE_BUDGET: u64 = 5_000_000;

/// Check whether `cfds` (over one relation) admits a nonempty satisfying
/// instance. Attributes not mentioned in any CFD are unconstrained and
/// ignored. Uses [`DEFAULT_NODE_BUDGET`].
pub fn check_consistency(cfds: &[Cfd], domains: &DomainSpec) -> CfdResult<Consistency> {
    check_consistency_budgeted(cfds, domains, DEFAULT_NODE_BUDGET)
}

/// [`check_consistency`] with an explicit search budget.
pub fn check_consistency_budgeted(
    cfds: &[Cfd],
    domains: &DomainSpec,
    budget: u64,
) -> CfdResult<Consistency> {
    let mut solver = WitnessSolver::new(cfds, domains, budget)?;
    match solver.solve()? {
        Some(assign) => {
            let mut witness: Vec<(String, Value)> =
                solver.attrs.iter().cloned().zip(assign).collect();
            witness.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(Consistency::Consistent(witness))
        }
        None => Ok(Consistency::Inconsistent),
    }
}

/// Constant-RHS rule over attribute slots: if all `conds` hold then
/// slot `rhs` must equal `value`.
#[derive(Debug, Clone)]
struct Rule {
    conds: Vec<(usize, Value)>, // (slot, required constant); wildcards drop out
    rhs: usize,
    value: Value,
}

struct WitnessSolver {
    attrs: Vec<String>,
    candidates: Vec<Vec<Value>>,
    rules: Vec<Rule>,
    budget: u64,
    nodes: u64,
}

impl WitnessSolver {
    fn new(cfds: &[Cfd], domains: &DomainSpec, budget: u64) -> CfdResult<WitnessSolver> {
        let mut attr_ids: HashMap<String, usize> = HashMap::new();
        let mut attrs: Vec<String> = Vec::new();
        let mut constants: Vec<Vec<Value>> = Vec::new();
        let slot = |name: &str,
                    attrs: &mut Vec<String>,
                    constants: &mut Vec<Vec<Value>>,
                    attr_ids: &mut HashMap<String, usize>| {
            let key = name.to_ascii_lowercase();
            *attr_ids.entry(key.clone()).or_insert_with(|| {
                attrs.push(key);
                constants.push(Vec::new());
                attrs.len() - 1
            })
        };
        // First pass: collect attributes and constants.
        for c in cfds {
            for (a, p) in c.lhs.iter().zip(&c.lhs_pat) {
                let s = slot(a, &mut attrs, &mut constants, &mut attr_ids);
                if let Some(v) = p.constant() {
                    constants[s].push(v.clone());
                }
            }
            let s = slot(&c.rhs, &mut attrs, &mut constants, &mut attr_ids);
            if let Some(v) = c.rhs_pat.constant() {
                constants[s].push(v.clone());
            }
        }
        let candidates: Vec<Vec<Value>> = attrs
            .iter()
            .zip(&constants)
            .map(|(a, cs)| domains.candidates(a, cs, 1))
            .collect();
        // Second pass: build constant-RHS rules.
        let mut rules = Vec::new();
        for c in cfds {
            let Some(v) = c.rhs_pat.constant() else {
                continue; // variable CFDs cannot be violated by one tuple
            };
            let rhs = attr_ids[&c.rhs.to_ascii_lowercase()];
            let mut conds = Vec::new();
            for (a, p) in c.lhs.iter().zip(&c.lhs_pat) {
                if let Pattern::Const(cv) = p {
                    conds.push((attr_ids[&a.to_ascii_lowercase()], cv.clone()));
                }
            }
            rules.push(Rule {
                conds,
                rhs,
                value: v.clone(),
            });
        }
        if candidates.iter().any(|c| c.is_empty()) {
            return Err(CfdError::Malformed(
                "attribute with an empty declared domain".into(),
            ));
        }
        Ok(WitnessSolver {
            attrs,
            candidates,
            rules,
            budget,
            nodes: 0,
        })
    }

    fn solve(&mut self) -> CfdResult<Option<Vec<Value>>> {
        let n = self.attrs.len();
        if n == 0 {
            return Ok(Some(Vec::new())); // no constrained attributes at all
        }
        let mut assign: Vec<Option<Value>> = vec![None; n];
        if self.search(&mut assign)? {
            Ok(Some(
                assign.into_iter().map(|v| v.expect("complete")).collect(),
            ))
        } else {
            Ok(None)
        }
    }

    /// Unit propagation: apply every rule whose conditions are all satisfied
    /// by the current partial assignment. Returns `None` on conflict, or the
    /// list of slots this call assigned (the undo trail).
    fn propagate(&self, assign: &mut [Option<Value>]) -> Option<Vec<usize>> {
        let mut trail = Vec::new();
        loop {
            let mut changed = false;
            for r in &self.rules {
                let fires = r
                    .conds
                    .iter()
                    .all(|(s, v)| matches!(&assign[*s], Some(x) if x.strong_eq(v)));
                if !fires {
                    continue;
                }
                match &assign[r.rhs] {
                    Some(x) if x.strong_eq(&r.value) => {}
                    Some(_) => {
                        for s in trail {
                            assign[s] = None;
                        }
                        return None;
                    }
                    None => {
                        // Forced value must be admissible for the slot.
                        if !self.candidates[r.rhs].iter().any(|c| c.strong_eq(&r.value)) {
                            for s in trail {
                                assign[s] = None;
                            }
                            return None;
                        }
                        assign[r.rhs] = Some(r.value.clone());
                        trail.push(r.rhs);
                        changed = true;
                    }
                }
            }
            if !changed {
                return Some(trail);
            }
        }
    }

    fn search(&mut self, assign: &mut Vec<Option<Value>>) -> CfdResult<bool> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(CfdError::Budget);
        }
        let Some(trail) = self.propagate(assign) else {
            return Ok(false);
        };
        let next = assign.iter().position(Option::is_none);
        let Some(slot) = next else {
            return Ok(true); // complete and conflict-free
        };
        let cands = self.candidates[slot].clone();
        for v in cands {
            assign[slot] = Some(v);
            if self.search(assign)? {
                return Ok(true);
            }
            assign[slot] = None;
        }
        for s in trail {
            assign[s] = None;
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_cfds;

    fn consistent(src: &str) -> bool {
        let cfds = parse_cfds(src).unwrap();
        check_consistency(&cfds, &DomainSpec::all_infinite())
            .unwrap()
            .is_consistent()
    }

    #[test]
    fn papers_constraint_set_is_consistent() {
        assert!(consistent(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CNT='UK', ZIP=_] -> [STR=_]\n\
             customer: [CC] -> [CNT]\n\
             customer: [CC='44'] -> [CNT='UK']",
        ));
    }

    #[test]
    fn conflicting_constant_rules_with_wildcard_lhs_are_inconsistent() {
        // Every tuple matches both patterns but B cannot be b1 and b2.
        assert!(!consistent(
            "r: [A=_] -> [B='b1']\n\
             r: [A=_] -> [B='b2']",
        ));
    }

    #[test]
    fn conflicting_rules_on_disjoint_conditions_are_consistent() {
        // Conditions differ, a witness picks A outside {a1, a2} or either.
        assert!(consistent(
            "r: [A='a1'] -> [B='b1']\n\
             r: [A='a2'] -> [B='b2']",
        ));
    }

    #[test]
    fn chained_propagation_detects_deep_conflicts() {
        // A='x' forces B='y' forces C='z', but a third rule forces C='w'
        // whenever B='y'. Only consistent by avoiding A='x'… which a
        // wildcard rule then forbids.
        assert!(!consistent(
            "r: [A=_] -> [B='y']\n\
             r: [B='y'] -> [C='z']\n\
             r: [B='y'] -> [C='w']",
        ));
        assert!(consistent(
            "r: [A='x'] -> [B='y']\n\
             r: [B='y'] -> [C='z']",
        ));
    }

    #[test]
    fn finite_domain_flips_the_verdict() {
        // A witness over infinite domains picks A outside {true, false}, so
        // only the wildcard rule fires and B='3' works. Declaring A boolean
        // forces one of the first two rules to fire, conflicting with B='3'.
        let src = "r: [A=true] -> [B='1']\n\
                   r: [A=false] -> [B='2']\n\
                   r: [C=_] -> [B='3']";
        let cfds = parse_cfds(src).unwrap();
        let inf = DomainSpec::all_infinite();
        assert!(check_consistency(&cfds, &inf).unwrap().is_consistent());
        let dom = DomainSpec::all_infinite()
            .with_finite("A", vec![Value::Bool(true), Value::Bool(false)]);
        assert!(!check_consistency(&cfds, &dom).unwrap().is_consistent());
    }

    #[test]
    fn witness_satisfies_all_rules() {
        let cfds = parse_cfds(
            "r: [A='x'] -> [B='y']\n\
             r: [B='y'] -> [C='z']",
        )
        .unwrap();
        let Consistency::Consistent(w) =
            check_consistency(&cfds, &DomainSpec::all_infinite()).unwrap()
        else {
            panic!("expected consistent")
        };
        let lookup: std::collections::HashMap<_, _> = w.into_iter().collect();
        // If the witness sets A='x' then B must be 'y', etc.
        if lookup["a"].strong_eq(&Value::str("x")) {
            assert!(lookup["b"].strong_eq(&Value::str("y")));
        }
        if lookup["b"].strong_eq(&Value::str("y")) {
            assert!(lookup["c"].strong_eq(&Value::str("z")));
        }
    }

    #[test]
    fn empty_set_is_trivially_consistent() {
        assert!(consistent(""));
    }

    #[test]
    fn variable_cfds_never_cause_inconsistency() {
        assert!(consistent(
            "r: [A=_] -> [B=_]\n\
             r: [B=_] -> [A=_]\n\
             r: [A='x', B='y'] -> [C=_]",
        ));
    }

    #[test]
    fn empty_lhs_constant_rules() {
        // [] -> [B='x'] forces B='x' unconditionally.
        assert!(consistent("r: [] -> [B='x']"));
        assert!(!consistent("r: [] -> [B='x']\nr: [] -> [B='y']"));
    }

    #[test]
    fn budget_exhaustion_reports_error() {
        let cfds = parse_cfds(
            "r: [A='1'] -> [B='1']\n\
             r: [B='1'] -> [C='1']\n\
             r: [C='1'] -> [D='1']\n\
             r: [D='1'] -> [E='1']",
        )
        .unwrap();
        let r = check_consistency_budgeted(&cfds, &DomainSpec::all_infinite(), 1);
        assert_eq!(r, Err(CfdError::Budget));
    }
}
