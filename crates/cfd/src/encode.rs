//! Relational encoding of pattern tableaux ([3] §5).
//!
//! Each tableau (the pattern rows of all CFDs sharing an embedded FD) is
//! stored as a table whose columns are the FD's attributes plus a pattern-id
//! column. Wildcards are encoded as SQL `NULL`, so the match predicate in
//! generated SQL is `(tp.B IS NULL OR t.B = tp.B)` — constants in tableaux
//! are required to be non-null, which keeps the encoding unambiguous.

use minidb::{Column, DataType, Schema, Table, Value};

use crate::dependency::Tableau;
use crate::error::{CfdError, CfdResult};
use crate::pattern::Pattern;

/// Name of the pattern-id column in encoded tableaux.
pub const PATTERN_ID_COLUMN: &str = "__pat";

/// Encode `tableau` as a relation named `name`.
///
/// Columns: one per LHS attribute (in tableau order), one for the RHS
/// attribute, then [`PATTERN_ID_COLUMN`] holding the index of the source
/// CFD. Cell types are taken from `data_schema` when the attribute exists
/// there, defaulting to TEXT.
pub fn encode_tableau(name: &str, tableau: &Tableau, data_schema: &Schema) -> CfdResult<Table> {
    let mut cols: Vec<Column> = Vec::with_capacity(tableau.fd.lhs.len() + 2);
    for a in tableau
        .fd
        .lhs
        .iter()
        .chain(std::iter::once(&tableau.fd.rhs))
    {
        let dtype = data_schema
            .index_of(a)
            .map(|i| data_schema.column(i).dtype)
            .unwrap_or(DataType::Str);
        cols.push(Column::new(a.clone(), dtype));
    }
    cols.push(Column::not_null(PATTERN_ID_COLUMN, DataType::Int));
    let schema = Schema::new(cols).map_err(|e| CfdError::Malformed(e.to_string()))?;
    let mut t = Table::new(name.to_string(), schema);
    for (lhs_pats, rhs_pat, cfd_idx) in &tableau.rows {
        let mut row: Vec<Value> = Vec::with_capacity(lhs_pats.len() + 2);
        for p in lhs_pats.iter().chain(std::iter::once(rhs_pat)) {
            match p {
                Pattern::Wild => row.push(Value::Null),
                Pattern::Const(v) => {
                    if v.is_null() {
                        return Err(CfdError::Malformed(
                            "NULL constant in pattern tableau".into(),
                        ));
                    }
                    row.push(v.clone());
                }
            }
        }
        row.push(Value::Int(*cfd_idx as i64));
        t.insert(row)
            .map_err(|e| CfdError::Malformed(e.to_string()))?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::group_into_tableaux;
    use crate::parse::parse_cfds;
    use minidb::RowId;

    fn customer_schema() -> Schema {
        Schema::of_strings(&["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"])
    }

    #[test]
    fn encodes_wildcards_as_null_and_constants_verbatim() {
        let cfds = parse_cfds(
            "customer: [CC=_] -> [CNT=_]\n\
             customer: [CC='44'] -> [CNT='UK']",
        )
        .unwrap();
        let ts = group_into_tableaux(&cfds);
        assert_eq!(ts.len(), 1);
        let t = encode_tableau("tab0", &ts[0], &customer_schema()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.schema().names(), vec!["cc", "cnt", "__pat"]);
        let r0 = t.get(RowId(0)).unwrap();
        assert!(r0[0].is_null() && r0[1].is_null());
        assert_eq!(r0[2], Value::Int(0));
        let r1 = t.get(RowId(1)).unwrap();
        assert_eq!(r1[0], Value::str("44"));
        assert_eq!(r1[1], Value::str("UK"));
        assert_eq!(r1[2], Value::Int(1));
    }

    #[test]
    fn pattern_id_points_into_original_slice() {
        let cfds = parse_cfds(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CC='44'] -> [CNT='UK']\n\
             customer: [CNT='US', ZIP=_] -> [CITY=_]",
        )
        .unwrap();
        let ts = group_into_tableaux(&cfds);
        let city = ts.iter().find(|t| t.fd.rhs == "city").unwrap();
        let enc = encode_tableau("x", city, &customer_schema()).unwrap();
        let pat_col = enc.schema().require(PATTERN_ID_COLUMN).unwrap();
        let ids: Vec<i64> = enc
            .iter()
            .map(|(_, r)| r[pat_col].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![0, 2]);
    }
}
