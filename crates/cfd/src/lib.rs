//! # cfd — conditional functional dependencies
//!
//! The formalism at the heart of Semandaq (Fan, Geerts, Jia, VLDB'08;
//! theory in Fan et al., TODS 33(1) 2008):
//!
//! * [`Pattern`] / [`Cfd`] / [`Fd`] — the model, in the paper's normal form
//!   (single RHS attribute, one pattern tuple per CFD);
//! * [`parse::parse_cfds`] — the paper's bracket notation, e.g.
//!   `customer: [CNT='UK', ZIP=_] -> [STR=_]`;
//! * [`satisfiability::check_consistency`] — is there a nonempty instance
//!   satisfying Σ? (the "does this rule set make sense" check the demo
//!   performs when users enter CFDs);
//! * [`implication::implies`] — does Σ imply φ? with a closure fast path
//!   for plain FDs;
//! * [`cover::minimal_cover`] — redundancy removal;
//! * [`dependency::group_into_tableaux`] + [`encode::encode_tableau`] — the
//!   relational pattern-tableau encoding consumed by SQL-based detection.

#![warn(missing_docs)]

pub mod cover;
pub mod dependency;
pub mod domain;
pub mod encode;
pub mod error;
pub mod implication;
pub mod parse;
pub mod pattern;
pub mod satisfiability;

pub use dependency::{BoundCfd, Cfd, Fd, Tableau};
pub use domain::DomainSpec;
pub use error::{CfdError, CfdResult};
pub use pattern::Pattern;
pub use satisfiability::Consistency;
