//! Errors for CFD parsing, binding and analysis.

use std::fmt;

/// Errors produced while parsing, binding or analysing CFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfdError {
    /// Syntax error in the textual CFD notation.
    Parse(String),
    /// The CFD references an attribute missing from the schema.
    UnknownAttribute(String),
    /// Structural problem (e.g. empty LHS pattern list mismatch).
    Malformed(String),
    /// Analysis was asked on an unbound or mismatched relation.
    RelationMismatch {
        /// Relation the CFD declares.
        expected: String,
        /// Relation it was applied to.
        found: String,
    },
    /// Static analysis exceeded its search budget (the underlying problems
    /// are NP-/coNP-complete); raise the budget or shrink the input.
    Budget,
    /// The operation is not supported by the backend it was addressed to
    /// (e.g. `repair` on a backend whose capabilities do not include it).
    Unsupported(String),
}

impl fmt::Display for CfdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfdError::Parse(m) => write!(f, "CFD parse error: {m}"),
            CfdError::UnknownAttribute(a) => write!(f, "unknown attribute: {a}"),
            CfdError::Malformed(m) => write!(f, "malformed CFD: {m}"),
            CfdError::RelationMismatch { expected, found } => {
                write!(f, "CFD is declared on {expected}, applied to {found}")
            }
            CfdError::Budget => write!(f, "static analysis search budget exceeded"),
            CfdError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl std::error::Error for CfdError {}

/// Result alias for CFD operations.
pub type CfdResult<T> = Result<T, CfdError>;
