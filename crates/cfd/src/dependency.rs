//! Conditional functional dependencies and their schema bindings.
//!
//! A CFD φ = (X → A, tp) couples an embedded FD `X → A` with a pattern
//! tuple `tp` over `X ∪ {A}` whose cells are constants or `_`. We keep the
//! paper's normal form: a single RHS attribute per CFD (multi-attribute
//! input is split by [`crate::parse::parse_cfds`]).

use std::fmt;

use minidb::{Schema, Value};
use serde::{Deserialize, Serialize};

use crate::error::{CfdError, CfdResult};
use crate::pattern::Pattern;

/// A plain functional dependency `X → A` (single RHS attribute).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fd {
    /// Left-hand-side attribute names.
    pub lhs: Vec<String>,
    /// Right-hand-side attribute name.
    pub rhs: String,
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] -> [{}]", self.lhs.join(", "), self.rhs)
    }
}

/// A conditional functional dependency in normal form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfd {
    /// Relation the CFD is declared on.
    pub relation: String,
    /// LHS attribute names `X` (may be empty: a constant rule on `A` alone).
    pub lhs: Vec<String>,
    /// RHS attribute name `A`.
    pub rhs: String,
    /// LHS pattern cells, parallel to `lhs`.
    pub lhs_pat: Vec<Pattern>,
    /// RHS pattern cell.
    pub rhs_pat: Pattern,
}

impl Cfd {
    /// Construct and structurally validate a CFD.
    pub fn new(
        relation: impl Into<String>,
        lhs: Vec<(String, Pattern)>,
        rhs: impl Into<String>,
        rhs_pat: Pattern,
    ) -> CfdResult<Cfd> {
        let (lhs_names, lhs_pats): (Vec<_>, Vec<_>) = lhs.into_iter().unzip();
        let rhs = rhs.into();
        for (i, n) in lhs_names.iter().enumerate() {
            if lhs_names[..i].iter().any(|p| p.eq_ignore_ascii_case(n)) {
                return Err(CfdError::Malformed(format!("duplicate LHS attribute {n}")));
            }
            if n.eq_ignore_ascii_case(&rhs) {
                return Err(CfdError::Malformed(format!(
                    "attribute {n} appears on both sides"
                )));
            }
        }
        Ok(Cfd {
            relation: relation.into(),
            lhs: lhs_names,
            rhs,
            lhs_pat: lhs_pats,
            rhs_pat,
        })
    }

    /// A pure FD `X → A` viewed as a CFD (all-wildcard pattern).
    pub fn from_fd(relation: impl Into<String>, fd: &Fd) -> Cfd {
        Cfd {
            relation: relation.into(),
            lhs: fd.lhs.clone(),
            rhs: fd.rhs.clone(),
            lhs_pat: vec![Pattern::Wild; fd.lhs.len()],
            rhs_pat: Pattern::Wild,
        }
    }

    /// The embedded FD.
    pub fn embedded_fd(&self) -> Fd {
        Fd {
            lhs: self.lhs.clone(),
            rhs: self.rhs.clone(),
        }
    }

    /// Is this a *constant* CFD (all LHS cells and the RHS cell constants)?
    pub fn is_constant(&self) -> bool {
        self.rhs_pat.constant().is_some() && self.lhs_pat.iter().all(|p| !p.is_wild())
    }

    /// Is this a *variable* CFD (RHS pattern `_`)?
    pub fn is_variable(&self) -> bool {
        self.rhs_pat.is_wild()
    }

    /// Is this a plain FD in disguise (every cell `_`)?
    pub fn is_plain_fd(&self) -> bool {
        self.rhs_pat.is_wild() && self.lhs_pat.iter().all(Pattern::is_wild)
    }

    /// Bind attribute names to column indices of `schema`.
    pub fn bind(&self, schema: &Schema) -> CfdResult<BoundCfd> {
        let lhs_cols = self
            .lhs
            .iter()
            .map(|a| {
                schema
                    .index_of(a)
                    .ok_or_else(|| CfdError::UnknownAttribute(a.clone()))
            })
            .collect::<CfdResult<Vec<_>>>()?;
        let rhs_col = schema
            .index_of(&self.rhs)
            .ok_or_else(|| CfdError::UnknownAttribute(self.rhs.clone()))?;
        Ok(BoundCfd {
            cfd: self.clone(),
            lhs_cols,
            rhs_col,
        })
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [", self.relation)?;
        for (i, (a, p)) in self.lhs.iter().zip(&self.lhs_pat).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}={p}")?;
        }
        write!(f, "] -> [{}={}]", self.rhs, self.rhs_pat)
    }
}

/// A CFD bound to a concrete schema: attribute names resolved to positions.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundCfd {
    /// The source CFD.
    pub cfd: Cfd,
    /// Column indices of the LHS attributes.
    pub lhs_cols: Vec<usize>,
    /// Column index of the RHS attribute.
    pub rhs_col: usize,
}

impl BoundCfd {
    /// Does `row` match the LHS pattern `tp[X]`?
    pub fn lhs_matches(&self, row: &[Value]) -> bool {
        self.lhs_cols
            .iter()
            .zip(&self.cfd.lhs_pat)
            .all(|(&c, p)| p.matches(&row[c]))
    }

    /// Does `row` match the RHS pattern `tp[A]`? (Wild always matches.)
    pub fn rhs_matches(&self, row: &[Value]) -> bool {
        self.cfd.rhs_pat.matches(&row[self.rhs_col])
    }

    /// Is `row` a single-tuple violation: LHS matches, RHS is a constant,
    /// and the row's RHS value is non-null and different?
    ///
    /// NULL in the RHS is *not* flagged, mirroring the SQL query
    /// `... AND t.A <> tp.A` which is UNKNOWN on NULL.
    pub fn single_tuple_violation(&self, row: &[Value]) -> bool {
        match self.cfd.rhs_pat.constant() {
            None => false,
            Some(a) => {
                self.lhs_matches(row) && {
                    let v = &row[self.rhs_col];
                    !v.is_null() && !v.strong_eq(a)
                }
            }
        }
    }

    /// Project the LHS values of `row` (the group key for multi-tuple
    /// violation detection).
    pub fn lhs_key(&self, row: &[Value]) -> Vec<Value> {
        self.lhs_cols.iter().map(|&c| row[c].clone()).collect()
    }
}

/// Group a set of CFDs by embedded FD, yielding one pattern tableau per FD —
/// the representation the merged SQL detection queries operate on.
#[derive(Debug, Clone, PartialEq)]
pub struct Tableau {
    /// Relation name.
    pub relation: String,
    /// The shared embedded FD.
    pub fd: Fd,
    /// Pattern rows: `(tp[X], tp[A])`, with the index of the source CFD in
    /// the original input slice.
    pub rows: Vec<(Vec<Pattern>, Pattern, usize)>,
}

/// Partition `cfds` into tableaux keyed by `(relation, embedded FD)`
/// (case-insensitive on names; attribute order is normalized).
pub fn group_into_tableaux(cfds: &[Cfd]) -> Vec<Tableau> {
    let mut out: Vec<Tableau> = Vec::new();
    for (idx, c) in cfds.iter().enumerate() {
        // Normalize: sort LHS attributes (with their pattern cells).
        let mut pairs: Vec<(String, Pattern)> = c
            .lhs
            .iter()
            .map(|s| s.to_ascii_lowercase())
            .zip(c.lhs_pat.iter().cloned())
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let fd = Fd {
            lhs: pairs.iter().map(|(a, _)| a.clone()).collect(),
            rhs: c.rhs.to_ascii_lowercase(),
        };
        let rel = c.relation.to_ascii_lowercase();
        let pats: Vec<Pattern> = pairs.into_iter().map(|(_, p)| p).collect();
        match out.iter_mut().find(|t| t.relation == rel && t.fd == fd) {
            Some(t) => t.rows.push((pats, c.rhs_pat.clone(), idx)),
            None => out.push(Tableau {
                relation: rel,
                fd,
                rows: vec![(pats, c.rhs_pat.clone(), idx)],
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(
            ["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]
                .iter()
                .map(|n| Column::new(*n, DataType::Str))
                .collect(),
        )
        .unwrap()
    }

    fn phi2() -> Cfd {
        // [CNT='UK', ZIP=_] -> [STR=_]
        Cfd::new(
            "customer",
            vec![
                ("CNT".into(), Pattern::s("UK")),
                ("ZIP".into(), Pattern::Wild),
            ],
            "STR",
            Pattern::Wild,
        )
        .unwrap()
    }

    fn phi4() -> Cfd {
        // [CC='44'] -> [CNT='UK']
        Cfd::new(
            "customer",
            vec![("CC".into(), Pattern::s("44"))],
            "CNT",
            Pattern::s("UK"),
        )
        .unwrap()
    }

    fn row(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::str(*v)).collect()
    }

    #[test]
    fn classification() {
        assert!(phi2().is_variable());
        assert!(!phi2().is_plain_fd());
        assert!(phi4().is_constant());
        let fd = Cfd::from_fd(
            "customer",
            &Fd {
                lhs: vec!["CNT".into(), "ZIP".into()],
                rhs: "CITY".into(),
            },
        );
        assert!(fd.is_plain_fd());
    }

    #[test]
    fn rejects_overlapping_sides_and_duplicates() {
        assert!(Cfd::new(
            "r",
            vec![("A".into(), Pattern::Wild), ("a".into(), Pattern::Wild)],
            "B",
            Pattern::Wild
        )
        .is_err());
        assert!(Cfd::new("r", vec![("A".into(), Pattern::Wild)], "A", Pattern::Wild).is_err());
    }

    #[test]
    fn binding_resolves_case_insensitively() {
        let b = phi2().bind(&schema()).unwrap();
        assert_eq!(b.lhs_cols, vec![1, 3]);
        assert_eq!(b.rhs_col, 4);
        let missing = Cfd::new(
            "r",
            vec![("NOPE".into(), Pattern::Wild)],
            "CNT",
            Pattern::Wild,
        )
        .unwrap()
        .bind(&schema());
        assert!(missing.is_err());
    }

    #[test]
    fn single_tuple_violation_semantics() {
        let b = phi4().bind(&schema()).unwrap();
        // CC=44 but CNT=US: violation.
        let bad = row(&["x", "US", "NYC", "1", "s", "44", "131"]);
        assert!(b.single_tuple_violation(&bad));
        // CC=44, CNT=UK: fine.
        let good = row(&["x", "UK", "EDI", "1", "s", "44", "131"]);
        assert!(!b.single_tuple_violation(&good));
        // CC=01: pattern does not apply.
        let na = row(&["x", "US", "NYC", "1", "s", "01", "131"]);
        assert!(!b.single_tuple_violation(&na));
        // CC=44, CNT=NULL: not flagged (SQL semantics).
        let mut withnull = bad.clone();
        withnull[1] = Value::Null;
        assert!(!b.single_tuple_violation(&withnull));
    }

    #[test]
    fn variable_cfd_never_single_tuple_violates() {
        let b = phi2().bind(&schema()).unwrap();
        let r = row(&["x", "UK", "EDI", "EH1", "street", "44", "131"]);
        assert!(!b.single_tuple_violation(&r));
        assert!(b.lhs_matches(&r));
    }

    #[test]
    fn tableau_grouping_merges_same_embedded_fd() {
        // φ3: [CC=_] -> [CNT=_] and φ4 share the FD CC -> CNT.
        let phi3 = Cfd::new(
            "customer",
            vec![("CC".into(), Pattern::Wild)],
            "CNT",
            Pattern::Wild,
        )
        .unwrap();
        let ts = group_into_tableaux(&[phi3, phi4(), phi2()]);
        assert_eq!(ts.len(), 2);
        let cc_cnt = ts.iter().find(|t| t.fd.rhs == "cnt").unwrap();
        assert_eq!(cc_cnt.rows.len(), 2);
    }

    #[test]
    fn display_roundtrips_shape() {
        let s = phi2().to_string();
        assert_eq!(s, "customer: [CNT='UK', ZIP=_] -> [STR=_]");
    }
}
