//! Textual notation for CFDs, mirroring the paper:
//!
//! ```text
//! customer: [CNT='UK', ZIP=_] -> [STR=_]
//! customer: [CC='44'] -> [CNT='UK']
//! customer: [CNT, ZIP] -> [CITY]          -- bare attrs = wildcards (an FD)
//! ```
//!
//! Multiple RHS attributes are allowed in the input and are split into the
//! normal form (one CFD per RHS attribute): `[A] -> [B, C]` becomes
//! `[A] -> [B]` and `[A] -> [C]`. Lines starting with `--` or `#` are
//! comments; blank lines are skipped.

use minidb::Value;

use crate::dependency::Cfd;
use crate::error::{CfdError, CfdResult};
use crate::pattern::Pattern;

/// Parse a single CFD (one line of the notation).
pub fn parse_cfd(src: &str) -> CfdResult<Cfd> {
    let cfds = parse_cfds(src)?;
    match cfds.len() {
        1 => Ok(cfds.into_iter().next().expect("len checked")),
        0 => Err(CfdError::Parse("empty input".into())),
        n => Err(CfdError::Parse(format!(
            "input denotes {n} CFDs in normal form; use parse_cfds"
        ))),
    }
}

/// Parse a newline-separated list of CFDs, splitting multi-RHS rules into
/// normal form.
pub fn parse_cfds(src: &str) -> CfdResult<Vec<Cfd>> {
    let mut out = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") || line.starts_with('#') {
            continue;
        }
        out.extend(parse_line(line)?);
    }
    Ok(out)
}

fn parse_line(line: &str) -> CfdResult<Vec<Cfd>> {
    let mut p = Cursor::new(line);
    // optional "relation:"
    let relation = if let Some(colon) = find_top_level_colon(line) {
        let rel = line[..colon].trim().to_string();
        p = Cursor::new(line[colon + 1..].trim());
        if rel.is_empty() {
            return Err(CfdError::Parse("empty relation name".into()));
        }
        rel
    } else {
        "r".to_string()
    };
    let lhs = p.bracket_group()?;
    p.expect_arrow()?;
    let rhs = p.bracket_group()?;
    p.expect_end()?;
    if rhs.is_empty() {
        return Err(CfdError::Parse("empty RHS".into()));
    }
    let mut cfds = Vec::with_capacity(rhs.len());
    for (attr, pat) in rhs {
        cfds.push(Cfd::new(relation.clone(), lhs.clone(), attr, pat)?);
    }
    Ok(cfds)
}

/// Find the `:` separating the relation name, ignoring any inside brackets
/// or quotes (attribute values could contain one).
fn find_top_level_colon(line: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '\'' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            ':' if !in_str && depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

struct Cursor<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let r = self.rest();
        let trimmed = r.trim_start();
        self.pos += r.len() - trimmed.len();
    }

    fn expect_arrow(&mut self) -> CfdResult<()> {
        self.skip_ws();
        for arrow in ["->", "=>", "→"] {
            if self.rest().starts_with(arrow) {
                self.pos += arrow.len();
                return Ok(());
            }
        }
        Err(CfdError::Parse(format!(
            "expected '->' at: {}",
            truncate(self.rest())
        )))
    }

    fn expect_end(&mut self) -> CfdResult<()> {
        self.skip_ws();
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(CfdError::Parse(format!(
                "trailing input: {}",
                truncate(self.rest())
            )))
        }
    }

    /// `[ item, item, ... ]` where item = ATTR [= pattern]
    fn bracket_group(&mut self) -> CfdResult<Vec<(String, Pattern)>> {
        self.skip_ws();
        if !self.rest().starts_with('[') {
            return Err(CfdError::Parse(format!(
                "expected '[' at: {}",
                truncate(self.rest())
            )));
        }
        self.pos += 1;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.rest().starts_with(']') {
                self.pos += 1;
                break;
            }
            if !items.is_empty() {
                if !self.rest().starts_with(',') {
                    return Err(CfdError::Parse(format!(
                        "expected ',' or ']' at: {}",
                        truncate(self.rest())
                    )));
                }
                self.pos += 1;
                self.skip_ws();
            }
            let attr = self.attr_name()?;
            self.skip_ws();
            let pat = if self.rest().starts_with('=') {
                self.pos += 1;
                self.pattern()?
            } else {
                Pattern::Wild
            };
            items.push((attr, pat));
        }
        Ok(items)
    }

    fn attr_name(&mut self) -> CfdResult<String> {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return Err(CfdError::Parse(format!(
                "expected attribute name at: {}",
                truncate(rest)
            )));
        }
        let name = &rest[..end];
        self.pos += end;
        Ok(name.to_string())
    }

    fn pattern(&mut self) -> CfdResult<Pattern> {
        self.skip_ws();
        let rest = self.rest();
        if let Some(after) = rest.strip_prefix('_') {
            // `_` must stand alone (not an identifier prefix like `_x`).
            if after
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                return Err(CfdError::Parse(format!(
                    "bad wildcard at: {}",
                    truncate(rest)
                )));
            }
            self.pos += 1;
            return Ok(Pattern::Wild);
        }
        if rest.starts_with('\'') {
            // quoted string with '' escape
            let mut s = String::new();
            let bytes = rest.as_bytes();
            let mut i = 1usize;
            loop {
                match bytes.get(i) {
                    None => return Err(CfdError::Parse("unterminated string".into())),
                    Some(&b'\'') => {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(_) => {
                        let ch = rest[i..].chars().next().expect("in-bounds");
                        s.push(ch);
                        i += ch.len_utf8();
                    }
                }
            }
            self.pos += i;
            return Ok(Pattern::Const(Value::str(s)));
        }
        // bare token: number, true/false, or a bare word (string)
        let end = rest
            .char_indices()
            .find(|(_, c)| matches!(c, ',' | ']' | ' ' | '\t'))
            .map_or(rest.len(), |(i, _)| i);
        if end == 0 {
            return Err(CfdError::Parse(format!(
                "expected pattern at: {}",
                truncate(rest)
            )));
        }
        let tok = &rest[..end];
        self.pos += end;
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Pattern::Const(Value::Int(i)));
        }
        if let Ok(f) = tok.parse::<f64>() {
            return Ok(Pattern::Const(Value::Float(f)));
        }
        match tok.to_ascii_lowercase().as_str() {
            "true" => Ok(Pattern::Const(Value::Bool(true))),
            "false" => Ok(Pattern::Const(Value::Bool(false))),
            _ => Ok(Pattern::Const(Value::str(tok))),
        }
    }
}

fn truncate(s: &str) -> String {
    let mut t: String = s.chars().take(24).collect();
    if t.len() < s.len() {
        t.push('…');
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_cfds() {
        let phi1 = parse_cfd("customer: [CNT=_, ZIP=_] -> [CITY=_]").unwrap();
        assert!(phi1.is_plain_fd());
        let phi2 = parse_cfd("customer: [CNT='UK', ZIP=_] -> [STR=_]").unwrap();
        assert_eq!(phi2.lhs, vec!["CNT", "ZIP"]);
        assert_eq!(phi2.lhs_pat[0], Pattern::s("UK"));
        assert!(phi2.rhs_pat.is_wild());
        let phi4 = parse_cfd("customer: [CC='44'] -> [CNT='UK']").unwrap();
        assert!(phi4.is_constant());
    }

    #[test]
    fn bare_attributes_default_to_wildcard() {
        let fd = parse_cfd("customer: [CNT, ZIP] -> [CITY]").unwrap();
        assert!(fd.is_plain_fd());
    }

    #[test]
    fn multi_rhs_splits_into_normal_form() {
        let cfds = parse_cfds("r: [A='1'] -> [B='x', C]").unwrap();
        assert_eq!(cfds.len(), 2);
        assert_eq!(cfds[0].rhs, "B");
        assert_eq!(cfds[1].rhs, "C");
        assert!(cfds[1].rhs_pat.is_wild());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let cfds = parse_cfds(
            "-- the paper's constraints\n\n# another comment\ncustomer: [CC='44'] -> [CNT='UK']\n",
        )
        .unwrap();
        assert_eq!(cfds.len(), 1);
    }

    #[test]
    fn default_relation_when_unqualified() {
        let c = parse_cfd("[A='x'] -> [B]").unwrap();
        assert_eq!(c.relation, "r");
    }

    #[test]
    fn numeric_and_bool_literals() {
        let c = parse_cfd("[CC=44] -> [OK=true]").unwrap();
        assert_eq!(c.lhs_pat[0], Pattern::of(44i64));
        assert_eq!(c.rhs_pat, Pattern::of(true));
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let c = parse_cfd("[STR='O''Hara St'] -> [ZIP]").unwrap();
        assert_eq!(c.lhs_pat[0], Pattern::s("O'Hara St"));
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "customer: [CNT='UK', ZIP=_] -> [STR=_]",
            "customer: [CC='44'] -> [CNT='UK']",
            "r: [A=_] -> [B='x']",
        ] {
            let c = parse_cfd(s).unwrap();
            let c2 = parse_cfd(&c.to_string()).unwrap();
            assert_eq!(c, c2);
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_cfd("customer: CNT -> CITY").is_err());
        assert!(parse_cfd("customer: [CNT] -> ").is_err());
        assert!(parse_cfd("customer: [CNT='unterminated] -> [CITY]").is_err());
        assert!(parse_cfd("[] -> []").is_err());
    }
}
