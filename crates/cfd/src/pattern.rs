//! Pattern-tableau cells: constants and the "don't care" wildcard.

use std::fmt;

use minidb::Value;
use serde::{Deserialize, Serialize};

/// One cell of a pattern tuple: a constant or the `_` wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Matches exactly this value.
    Const(Value),
    /// Matches any value (written `_` in the paper).
    Wild,
}

impl Pattern {
    /// Constant string pattern.
    pub fn s(v: impl AsRef<str>) -> Pattern {
        Pattern::Const(Value::str(v))
    }

    /// Constant pattern from any value.
    pub fn of(v: impl Into<Value>) -> Pattern {
        Pattern::Const(v.into())
    }

    /// Does this pattern match a data value?
    ///
    /// Constants never match NULL (mirroring the SQL detection queries of
    /// Fan et al., TODS 2008, where `t.B = tp.B` is UNKNOWN on NULL);
    /// the wildcard matches everything, NULL included.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Wild => true,
            Pattern::Const(c) => !v.is_null() && c.strong_eq(v),
        }
    }

    /// Is this the wildcard?
    pub fn is_wild(&self) -> bool {
        matches!(self, Pattern::Wild)
    }

    /// The constant, if any.
    pub fn constant(&self) -> Option<&Value> {
        match self {
            Pattern::Const(v) => Some(v),
            Pattern::Wild => None,
        }
    }

    /// Pattern subsumption: `self ⪯ other` iff every value matched by
    /// `self` is matched by `other` (constants are below the wildcard).
    pub fn subsumed_by(&self, other: &Pattern) -> bool {
        match (self, other) {
            (_, Pattern::Wild) => true,
            (Pattern::Const(a), Pattern::Const(b)) => a.strong_eq(b),
            (Pattern::Wild, Pattern::Const(_)) => false,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Wild => write!(f, "_"),
            Pattern::Const(v) => match v {
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                other => write!(f, "{other}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcard_matches_everything_including_null() {
        assert!(Pattern::Wild.matches(&Value::Null));
        assert!(Pattern::Wild.matches(&Value::str("x")));
        assert!(Pattern::Wild.matches(&Value::Int(0)));
    }

    #[test]
    fn constant_matches_exact_value_not_null() {
        let p = Pattern::s("UK");
        assert!(p.matches(&Value::str("UK")));
        assert!(!p.matches(&Value::str("US")));
        assert!(!p.matches(&Value::Null));
    }

    #[test]
    fn subsumption_order() {
        assert!(Pattern::s("a").subsumed_by(&Pattern::Wild));
        assert!(Pattern::s("a").subsumed_by(&Pattern::s("a")));
        assert!(!Pattern::Wild.subsumed_by(&Pattern::s("a")));
        assert!(!Pattern::s("a").subsumed_by(&Pattern::s("b")));
    }

    #[test]
    fn display_quotes_strings() {
        assert_eq!(Pattern::s("UK").to_string(), "'UK'");
        assert_eq!(Pattern::Wild.to_string(), "_");
        assert_eq!(Pattern::of(44i64).to_string(), "44");
    }
}
