//! Minimal covers of CFD sets.
//!
//! A cover is *minimal* when (1) no CFD is implied by the others and (2) no
//! LHS attribute can be dropped from any CFD without changing the implied
//! set. Minimality keeps the detection workload small: every redundant
//! pattern row costs a scan in the merged detection queries.

use crate::dependency::Cfd;
use crate::domain::DomainSpec;
use crate::error::CfdResult;
use crate::implication::implies;
use crate::pattern::Pattern;

/// Compute a minimal cover of `sigma` (order-dependent, deterministic).
pub fn minimal_cover(sigma: &[Cfd], domains: &DomainSpec) -> CfdResult<Vec<Cfd>> {
    // Phase 1: left-reduce each CFD.
    let mut work: Vec<Cfd> = Vec::with_capacity(sigma.len());
    for c in sigma {
        work.push(left_reduce(c, sigma, domains)?);
    }
    // Phase 2: drop CFDs implied by the rest.
    let mut keep: Vec<bool> = vec![true; work.len()];
    for i in 0..work.len() {
        let rest: Vec<Cfd> = work
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i && keep[*j])
            .map(|(_, c)| c.clone())
            .collect();
        if implies(&rest, &work[i], domains)? {
            keep[i] = false;
        }
    }
    Ok(work
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect())
}

/// Remove LHS attributes of `c` that are redundant given `sigma`.
fn left_reduce(c: &Cfd, sigma: &[Cfd], domains: &DomainSpec) -> CfdResult<Cfd> {
    let mut current = c.clone();
    let mut i = 0;
    while i < current.lhs.len() {
        if current.lhs.len() == 1 {
            break; // keep at least one attribute for a non-degenerate rule
        }
        let mut reduced = current.clone();
        reduced.lhs.remove(i);
        reduced.lhs_pat.remove(i);
        // The reduced CFD implies the original (augmentation), so swapping
        // preserves the implied set iff Σ implies the reduced one.
        if implies(sigma, &reduced, domains)? {
            current = reduced;
        } else {
            i += 1;
        }
    }
    Ok(current)
}

/// Syntactic redundancy: `a` subsumes `b` when they share relation and
/// embedded FD and every `a`-matched tuple pattern is matched by… i.e. `b`'s
/// patterns are cell-wise subsumed by `a`'s and the RHS patterns agree
/// appropriately. Cheap pre-filter before the full implication test.
pub fn subsumes(a: &Cfd, b: &Cfd) -> bool {
    if !a.relation.eq_ignore_ascii_case(&b.relation)
        || !a.rhs.eq_ignore_ascii_case(&b.rhs)
        || a.lhs.len() != b.lhs.len()
    {
        return false;
    }
    // Match attributes pairwise (order-insensitive).
    let mut used = vec![false; a.lhs.len()];
    for (bn, bp) in b.lhs.iter().zip(&b.lhs_pat) {
        let found = a.lhs.iter().enumerate().find(|(i, an)| {
            !used[*i] && an.eq_ignore_ascii_case(bn) && bp.subsumed_by(&a.lhs_pat[*i])
        });
        match found {
            Some((i, _)) => used[i] = true,
            None => return false,
        }
    }
    match (&a.rhs_pat, &b.rhs_pat) {
        (Pattern::Wild, Pattern::Wild) => true,
        (Pattern::Const(x), Pattern::Const(y)) => x.strong_eq(y),
        // A constant RHS is strictly stronger than a variable RHS on the
        // same pattern scope.
        (Pattern::Const(_), Pattern::Wild) => true,
        (Pattern::Wild, Pattern::Const(_)) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_cfd, parse_cfds};

    fn cover(src: &str) -> Vec<String> {
        let sigma = parse_cfds(src).unwrap();
        minimal_cover(&sigma, &DomainSpec::all_infinite())
            .unwrap()
            .iter()
            .map(|c| c.to_string())
            .collect()
    }

    #[test]
    fn drops_transitively_implied_fd() {
        let c = cover("r: [A] -> [B]\nr: [B] -> [C]\nr: [A] -> [C]");
        assert_eq!(c.len(), 2);
        assert!(!c.iter().any(|s| s.contains("[A=_] -> [C=_]")));
    }

    #[test]
    fn drops_specialized_pattern() {
        let c = cover("customer: [CC=_] -> [CNT=_]\ncustomer: [CC='44'] -> [CNT=_]");
        assert_eq!(c.len(), 1);
        assert!(c[0].contains("CC=_"));
    }

    #[test]
    fn left_reduces_superfluous_attributes() {
        // B is superfluous in [A,B] -> [C] given [A] -> [C].
        let c = cover("r: [A] -> [C]\nr: [A, B] -> [C]");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0], "r: [A=_] -> [C=_]");
    }

    #[test]
    fn keeps_independent_cfds() {
        let c = cover(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CNT='UK', ZIP=_] -> [STR=_]\n\
             customer: [CC='44'] -> [CNT='UK']",
        );
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn constant_rhs_implies_variable_rhs_version() {
        let c = cover(
            "customer: [CC='44'] -> [CNT='UK']\n\
             customer: [CC='44'] -> [CNT=_]",
        );
        assert_eq!(c.len(), 1);
        assert!(c[0].contains("'UK'"));
    }

    #[test]
    fn subsumption_prefilter() {
        let gen = parse_cfd("r: [A=_] -> [B=_]").unwrap();
        let spec = parse_cfd("r: [A='1'] -> [B=_]").unwrap();
        let conz = parse_cfd("r: [A='1'] -> [B='2']").unwrap();
        assert!(subsumes(&gen, &spec));
        assert!(!subsumes(&spec, &gen));
        assert!(subsumes(&conz, &spec)); // constant RHS stronger
        assert!(!subsumes(&spec, &conz));
    }
}
