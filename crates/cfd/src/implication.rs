//! Implication analysis: does Σ ⊨ φ?
//!
//! Σ implies φ iff **no** instance satisfies Σ while violating φ. A
//! violation of φ = (X → A, tp) involves at most two tuples (one when
//! `tp[A]` is a constant), and every sub-instance of a Σ-satisfying instance
//! still satisfies Σ, so it suffices to search for a one- or two-tuple
//! counterexample. Candidate values per attribute are the constants of
//! Σ ∪ {φ} plus two fresh sentinels (so the two tuples can agree or
//! disagree outside the constants), or the declared finite domain.
//!
//! Implication with finite domains is coNP-complete ([3] Thm 3.5); the
//! search is budgeted. For inputs that are all plain FDs, the classical
//! attribute-closure test is used instead (linear time).

use std::collections::HashMap;

use minidb::Value;

use crate::dependency::Cfd;
use crate::domain::DomainSpec;
use crate::error::{CfdError, CfdResult};
use crate::satisfiability::DEFAULT_NODE_BUDGET;

/// Does `sigma` imply `phi`? (See module docs for semantics and complexity.)
pub fn implies(sigma: &[Cfd], phi: &Cfd, domains: &DomainSpec) -> CfdResult<bool> {
    implies_budgeted(sigma, phi, domains, DEFAULT_NODE_BUDGET)
}

/// [`implies`] with an explicit search budget.
pub fn implies_budgeted(
    sigma: &[Cfd],
    phi: &Cfd,
    domains: &DomainSpec,
    budget: u64,
) -> CfdResult<bool> {
    // Fast path: plain FDs on both sides — classical closure.
    if phi.is_plain_fd() && sigma.iter().all(|c| c.is_plain_fd()) {
        return Ok(fd_closure_implies(sigma, phi));
    }
    let mut solver = PairSolver::new(sigma, phi, domains, budget)?;
    // Σ ⊨ φ iff no counterexample exists.
    Ok(!solver.counterexample_exists()?)
}

/// Attribute-closure implication test for plain FDs.
fn fd_closure_implies(sigma: &[Cfd], phi: &Cfd) -> bool {
    let mut closure: Vec<String> = phi.lhs.iter().map(|a| a.to_ascii_lowercase()).collect();
    let target = phi.rhs.to_ascii_lowercase();
    loop {
        let mut grew = false;
        for c in sigma {
            let lhs_in = c
                .lhs
                .iter()
                .all(|a| closure.iter().any(|x| x.eq_ignore_ascii_case(a)));
            let rhs = c.rhs.to_ascii_lowercase();
            if lhs_in && !closure.contains(&rhs) {
                closure.push(rhs);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    closure.contains(&target)
}

/// A rule interpreted over the two-tuple search space.
#[derive(Debug, Clone)]
enum PairRule {
    /// Constant-RHS CFD: per tuple, if all (slot, const) conditions hold
    /// then slot `rhs` = `value`.
    Const {
        conds: Vec<(usize, Value)>,
        rhs: usize,
        value: Value,
    },
    /// Variable CFD ψ = (Y → B, sp) with `sp[B] = _`: if both tuples match
    /// the constant LHS cells and agree on all of Y, they must agree on B.
    Var {
        conds: Vec<(usize, Value)>, // constant cells of sp[Y]
        lhs: Vec<usize>,            // all Y slots
        rhs: usize,                 // B slot
    },
}

struct PairSolver {
    n_attrs: usize,
    /// Candidate values per slot (attribute); shared by both tuples.
    candidates: Vec<Vec<Value>>,
    rules: Vec<PairRule>,
    /// φ's data, expressed over slots.
    phi_conds: Vec<(usize, Value)>,
    phi_lhs: Vec<usize>,
    phi_rhs: usize,
    phi_rhs_const: Option<Value>,
    budget: u64,
    nodes: u64,
}

impl PairSolver {
    fn new(sigma: &[Cfd], phi: &Cfd, domains: &DomainSpec, budget: u64) -> CfdResult<PairSolver> {
        let mut attr_ids: HashMap<String, usize> = HashMap::new();
        let mut attrs: Vec<String> = Vec::new();
        let mut constants: Vec<Vec<Value>> = Vec::new();
        let slot = |name: &str,
                    attrs: &mut Vec<String>,
                    constants: &mut Vec<Vec<Value>>,
                    attr_ids: &mut HashMap<String, usize>| {
            let key = name.to_ascii_lowercase();
            *attr_ids.entry(key.clone()).or_insert_with(|| {
                attrs.push(key);
                constants.push(Vec::new());
                attrs.len() - 1
            })
        };
        let note_constants = |c: &Cfd,
                              attrs: &mut Vec<String>,
                              constants: &mut Vec<Vec<Value>>,
                              attr_ids: &mut HashMap<String, usize>| {
            for (a, p) in c.lhs.iter().zip(&c.lhs_pat) {
                let s = slot(a, attrs, constants, attr_ids);
                if let Some(v) = p.constant() {
                    constants[s].push(v.clone());
                }
            }
            let s = slot(&c.rhs, attrs, constants, attr_ids);
            if let Some(v) = c.rhs_pat.constant() {
                constants[s].push(v.clone());
            }
        };
        for c in sigma {
            note_constants(c, &mut attrs, &mut constants, &mut attr_ids);
        }
        note_constants(phi, &mut attrs, &mut constants, &mut attr_ids);

        let candidates: Vec<Vec<Value>> = attrs
            .iter()
            .zip(&constants)
            .map(|(a, cs)| domains.candidates(a, cs, 2))
            .collect();
        if candidates.iter().any(|c| c.is_empty()) {
            return Err(CfdError::Malformed(
                "attribute with an empty declared domain".into(),
            ));
        }

        let mut rules = Vec::new();
        for c in sigma {
            let lhs_slots: Vec<usize> = c
                .lhs
                .iter()
                .map(|a| attr_ids[&a.to_ascii_lowercase()])
                .collect();
            let conds: Vec<(usize, Value)> = c
                .lhs
                .iter()
                .zip(&c.lhs_pat)
                .filter_map(|(a, p)| {
                    p.constant()
                        .map(|v| (attr_ids[&a.to_ascii_lowercase()], v.clone()))
                })
                .collect();
            let rhs = attr_ids[&c.rhs.to_ascii_lowercase()];
            match c.rhs_pat.constant() {
                Some(v) => rules.push(PairRule::Const {
                    conds,
                    rhs,
                    value: v.clone(),
                }),
                None => rules.push(PairRule::Var {
                    conds,
                    lhs: lhs_slots,
                    rhs,
                }),
            }
        }

        let phi_conds: Vec<(usize, Value)> = phi
            .lhs
            .iter()
            .zip(&phi.lhs_pat)
            .filter_map(|(a, p)| {
                p.constant()
                    .map(|v| (attr_ids[&a.to_ascii_lowercase()], v.clone()))
            })
            .collect();
        let phi_lhs: Vec<usize> = phi
            .lhs
            .iter()
            .map(|a| attr_ids[&a.to_ascii_lowercase()])
            .collect();
        let phi_rhs = attr_ids[&phi.rhs.to_ascii_lowercase()];

        Ok(PairSolver {
            n_attrs: attrs.len(),
            candidates,
            rules,
            phi_conds,
            phi_lhs,
            phi_rhs,
            phi_rhs_const: phi.rhs_pat.constant().cloned(),
            budget,
            nodes: 0,
        })
    }

    fn counterexample_exists(&mut self) -> CfdResult<bool> {
        // Assignment layout: slots [0, n) = tuple 1, [n, 2n) = tuple 2.
        // For a constant-RHS φ a single tuple suffices: tuple 2 is cloned
        // from tuple 1 (kept identical so pair rules are trivially fine).
        let n = self.n_attrs;
        let two_tuples = self.phi_rhs_const.is_none();
        let total = if two_tuples { 2 * n } else { n };
        let mut assign: Vec<Option<Value>> = vec![None; total];

        // Seed: tuple 1 (and tuple 2) must match φ's constant LHS cells.
        for (s, v) in &self.phi_conds.clone() {
            if !self.try_set(&mut assign, *s, v.clone()) {
                return Ok(false);
            }
            if two_tuples && !self.try_set(&mut assign, n + *s, v.clone()) {
                return Ok(false);
            }
        }
        self.search(&mut assign, two_tuples)
    }

    fn try_set(&self, assign: &mut [Option<Value>], slot: usize, v: Value) -> bool {
        let attr = slot % self.n_attrs;
        if !self.candidates[attr].iter().any(|c| c.strong_eq(&v)) {
            return false;
        }
        match &assign[slot] {
            Some(x) => x.strong_eq(&v),
            None => {
                assign[slot] = Some(v);
                true
            }
        }
    }

    /// Check all constraints on a (possibly partial) assignment; complete
    /// assignments are judged exactly.
    fn consistent(&self, assign: &[Option<Value>], two: bool) -> bool {
        let n = self.n_attrs;
        let get = |t: usize, a: usize| -> Option<&Value> {
            let idx = if t == 0 || !two { a } else { n + a };
            assign[idx].as_ref()
        };
        let tuples: &[usize] = if two { &[0, 1] } else { &[0] };
        // Σ constant rules per tuple.
        for r in &self.rules {
            if let PairRule::Const { conds, rhs, value } = r {
                for &t in tuples {
                    let fires = conds
                        .iter()
                        .all(|(s, v)| matches!(get(t, *s), Some(x) if x.strong_eq(v)));
                    if fires {
                        if let Some(x) = get(t, *rhs) {
                            if !x.strong_eq(value) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        if two {
            // Σ variable rules across the pair.
            for r in &self.rules {
                if let PairRule::Var { conds, lhs, rhs } = r {
                    let both_match = conds.iter().all(|(s, v)| {
                        matches!(get(0, *s), Some(x) if x.strong_eq(v))
                            && matches!(get(1, *s), Some(x) if x.strong_eq(v))
                    });
                    if !both_match {
                        continue;
                    }
                    let mut agree_lhs = true;
                    for &s in lhs {
                        match (get(0, s), get(1, s)) {
                            (Some(a), Some(b)) => {
                                if !a.strong_eq(b) {
                                    agree_lhs = false;
                                    break;
                                }
                            }
                            _ => {
                                agree_lhs = false; // undecided: don't prune yet
                                break;
                            }
                        }
                    }
                    if agree_lhs {
                        if let (Some(a), Some(b)) = (get(0, *rhs), get(1, *rhs)) {
                            if !a.strong_eq(b) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Does the completed assignment actually violate φ?
    fn violates_phi(&self, assign: &[Option<Value>], two: bool) -> bool {
        let n = self.n_attrs;
        let v1 = |a: usize| assign[a].as_ref().expect("complete");
        match &self.phi_rhs_const {
            Some(c) => {
                // Single tuple: matches LHS pattern, RHS differs.
                let matches = self.phi_conds.iter().all(|(s, v)| v1(*s).strong_eq(v));
                matches && !v1(self.phi_rhs).strong_eq(c)
            }
            None => {
                if !two {
                    return false;
                }
                let v2 = |a: usize| assign[n + a].as_ref().expect("complete");
                let both_match = self
                    .phi_conds
                    .iter()
                    .all(|(s, v)| v1(*s).strong_eq(v) && v2(*s).strong_eq(v));
                let agree = self.phi_lhs.iter().all(|&s| v1(s).strong_eq(v2(s)));
                both_match && agree && !v1(self.phi_rhs).strong_eq(v2(self.phi_rhs))
            }
        }
    }

    fn search(&mut self, assign: &mut Vec<Option<Value>>, two: bool) -> CfdResult<bool> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(CfdError::Budget);
        }
        if !self.consistent(assign, two) {
            return Ok(false);
        }
        let next = assign.iter().position(Option::is_none);
        let Some(slot) = next else {
            return Ok(self.consistent(assign, two) && self.violates_phi(assign, two));
        };
        let attr = slot % self.n_attrs;
        let cands = self.candidates[attr].clone();
        for v in cands {
            // Prune with φ's structure: tuple 2 must agree with tuple 1 on
            // φ's LHS, and differ on φ's RHS (variable case).
            if two && slot >= self.n_attrs {
                let a = slot - self.n_attrs;
                if self.phi_lhs.contains(&a) {
                    if let Some(x) = &assign[a] {
                        if !x.strong_eq(&v) {
                            continue;
                        }
                    }
                }
                if a == self.phi_rhs && self.phi_rhs_const.is_none() {
                    if let Some(x) = &assign[self.phi_rhs] {
                        if x.strong_eq(&v) {
                            continue;
                        }
                    }
                }
            }
            // Constant-RHS φ single-tuple case: force the violation shape.
            if !two && slot == self.phi_rhs {
                if let Some(c) = &self.phi_rhs_const {
                    if c.strong_eq(&v) {
                        continue;
                    }
                }
            }
            assign[slot] = Some(v);
            if self.search(assign, two)? {
                return Ok(true);
            }
            assign[slot] = None;
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_cfd, parse_cfds};

    fn imp(sigma: &str, phi: &str) -> bool {
        let s = parse_cfds(sigma).unwrap();
        let p = parse_cfd(phi).unwrap();
        implies(&s, &p, &DomainSpec::all_infinite()).unwrap()
    }

    #[test]
    fn plain_fd_transitivity_via_closure() {
        assert!(imp("r: [A] -> [B]\nr: [B] -> [C]", "r: [A] -> [C]"));
        assert!(!imp("r: [A] -> [B]", "r: [B] -> [A]"));
        assert!(imp("r: [A] -> [B]", "r: [A, C] -> [B]"));
    }

    #[test]
    fn cfd_is_implied_by_more_general_pattern() {
        // The plain FD CC -> CNT implies the conditional [CC='44'] -> [CNT=_].
        assert!(imp(
            "customer: [CC] -> [CNT]",
            "customer: [CC='44'] -> [CNT=_]"
        ));
        // But not the constant-RHS version: the FD does not pin the value.
        assert!(!imp(
            "customer: [CC] -> [CNT]",
            "customer: [CC='44'] -> [CNT='UK']"
        ));
    }

    #[test]
    fn constant_rules_chain() {
        assert!(imp(
            "r: [A='1'] -> [B='2']\nr: [B='2'] -> [C='3']",
            "r: [A='1'] -> [C='3']"
        ));
        assert!(!imp(
            "r: [A='1'] -> [B='2']\nr: [B='9'] -> [C='3']",
            "r: [A='1'] -> [C='3']"
        ));
    }

    #[test]
    fn constant_rule_implies_weaker_variable_rule() {
        // [CC='44'] -> [CNT='UK'] pins CNT for all matching tuples, hence
        // any two matching tuples agree: [CC='44'] -> [CNT=_].
        assert!(imp(
            "customer: [CC='44'] -> [CNT='UK']",
            "customer: [CC='44'] -> [CNT=_]"
        ));
        // The converse fails.
        assert!(!imp(
            "customer: [CC='44'] -> [CNT=_]",
            "customer: [CC='44'] -> [CNT='UK']"
        ));
    }

    #[test]
    fn pattern_specialization_is_implied() {
        // A variable CFD on all of CC implies its restriction to CC='44'.
        assert!(imp(
            "customer: [CC=_] -> [CNT=_]",
            "customer: [CC='44'] -> [CNT=_]"
        ));
        // The restriction does not imply the general rule.
        assert!(!imp(
            "customer: [CC='44'] -> [CNT=_]",
            "customer: [CC=_] -> [CNT=_]"
        ));
    }

    #[test]
    fn augmenting_lhs_preserves_implication() {
        assert!(imp("r: [A=_] -> [C=_]", "r: [A=_, B=_] -> [C=_]"));
        assert!(!imp("r: [A=_, B=_] -> [C=_]", "r: [A=_] -> [C=_]"));
    }

    #[test]
    fn inconsistent_sigma_implies_everything() {
        assert!(imp(
            "r: [A=_] -> [B='1']\nr: [A=_] -> [B='2']",
            "r: [C=_] -> [D='anything']"
        ));
    }

    #[test]
    fn empty_sigma_implies_only_trivial() {
        // Trivial: a CFD whose RHS is forced by its own LHS pattern…
        // e.g. [A='1'] -> [A… not allowed (A on both sides). Use reflexive-ish:
        assert!(!imp("", "r: [A] -> [B]"));
    }

    #[test]
    fn finite_domain_enables_case_analysis() {
        // With BOOL = {true,false}: [F=true] -> [B='x'] and [F=false] -> [B='x']
        // together imply [C=_] -> [B='x'] … only under the finite domain.
        let sigma = parse_cfds(
            "r: [F=true] -> [B='x']\n\
             r: [F=false] -> [B='x']",
        )
        .unwrap();
        let phi = parse_cfd("r: [C=_] -> [B='x']").unwrap();
        let inf = DomainSpec::all_infinite();
        assert!(!implies(&sigma, &phi, &inf).unwrap());
        let dom = DomainSpec::all_infinite()
            .with_finite("F", vec![Value::Bool(true), Value::Bool(false)]);
        assert!(implies(&sigma, &phi, &dom).unwrap());
    }
}
