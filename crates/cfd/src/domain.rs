//! Attribute domain declarations for static analysis.
//!
//! Consistency and implication of CFDs are sensitive to whether attributes
//! range over infinite domains (strings, integers) or finite ones (booleans,
//! enumerated codes): the problems are NP-complete / coNP-complete in the
//! presence of finite domains ([3] Thm 3.2/3.5). `DomainSpec` lets callers
//! declare finite domains; undeclared attributes are treated as infinite.

use std::collections::HashMap;

use minidb::Value;

/// Finite-domain declarations, keyed by lower-cased attribute name.
#[derive(Debug, Clone, Default)]
pub struct DomainSpec {
    finite: HashMap<String, Vec<Value>>,
}

impl DomainSpec {
    /// All attributes infinite.
    pub fn all_infinite() -> DomainSpec {
        DomainSpec::default()
    }

    /// Declare a finite domain for `attr`.
    pub fn with_finite(mut self, attr: &str, values: Vec<Value>) -> DomainSpec {
        self.finite.insert(attr.to_ascii_lowercase(), values);
        self
    }

    /// The declared finite domain of `attr`, if any.
    pub fn finite_domain(&self, attr: &str) -> Option<&[Value]> {
        self.finite
            .get(&attr.to_ascii_lowercase())
            .map(Vec::as_slice)
    }

    /// Candidate values for a witness search on `attr`: the declared finite
    /// domain if any; otherwise the constants observed in the constraint set
    /// plus `extra_fresh` sentinel values guaranteed distinct from them.
    ///
    /// One fresh value per tuple-variable suffices: every value outside the
    /// constants of Σ behaves identically w.r.t. pattern matching, and two
    /// sentinels let a two-tuple search choose "equal outside constants" vs
    /// "unequal outside constants".
    pub fn candidates(&self, attr: &str, constants: &[Value], extra_fresh: usize) -> Vec<Value> {
        if let Some(dom) = self.finite_domain(attr) {
            return dom.to_vec();
        }
        let mut out: Vec<Value> = Vec::with_capacity(constants.len() + extra_fresh);
        for c in constants {
            if !out.iter().any(|v| v.strong_eq(c)) {
                out.push(c.clone());
            }
        }
        for k in 0..extra_fresh {
            let mut n = k;
            loop {
                let candidate = Value::str(format!("\u{22a5}{attr}#{n}"));
                if !out.iter().any(|v| v.strong_eq(&candidate)) {
                    out.push(candidate);
                    break;
                }
                n += extra_fresh.max(1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_dedupe_constants_and_add_fresh() {
        let d = DomainSpec::all_infinite();
        let consts = vec![Value::str("UK"), Value::str("UK"), Value::str("US")];
        let c = d.candidates("cnt", &consts, 2);
        assert_eq!(c.len(), 4);
        assert!(c.iter().filter(|v| v.strong_eq(&Value::str("UK"))).count() == 1);
    }

    #[test]
    fn finite_domain_wins_over_constants() {
        let d = DomainSpec::all_infinite()
            .with_finite("flag", vec![Value::Bool(true), Value::Bool(false)]);
        let c = d.candidates("FLAG", &[Value::Bool(true)], 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn fresh_values_avoid_collisions_with_constants() {
        let d = DomainSpec::all_infinite();
        let consts = vec![Value::str("\u{22a5}a#0")];
        let c = d.candidates("a", &consts, 1);
        assert_eq!(c.len(), 2);
        assert!(!c[1].strong_eq(&c[0]));
    }
}
