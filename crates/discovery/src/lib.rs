//! # discovery — dependency discovery from reference data
//!
//! The Semandaq constraint engine accepts CFDs "explicitly specified by
//! users or automatically discovered from reference data" (paper §2). This
//! crate provides the discovery half:
//!
//! * [`partition`] — stripped partitions and refinement (the TANE core);
//! * [`tane::discover_fds`] — minimal exact/approximate FDs;
//! * [`cfdminer::mine_constant_cfds`] — constant CFDs via frequent-itemset
//!   mining with left-reduction;
//! * [`ctane::mine_variable_cfds`] — variable CFDs with mixed
//!   constant/wildcard LHS patterns, subsumption-pruned;
//! * [`validate`] — consistency checking of discovered rule sets.

#![warn(missing_docs)]

pub mod cfdminer;
pub mod ctane;
pub mod partition;
pub mod tane;
pub mod validate;

pub use cfdminer::{mine_constant_cfds, DiscoveredConstCfd, MinerConfig};
pub use ctane::{mine_variable_cfds, CtaneConfig, DiscoveredVarCfd};
pub use partition::{
    partition_by_column, partition_from_codes, refine, snapshot_partitions, Partition,
};
pub use tane::{discover_fds, DiscoveredFd, TaneConfig};
pub use validate::{validate_rules, ValidationOutcome};
