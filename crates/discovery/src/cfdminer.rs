//! Constant CFD discovery (CFDMiner-style): rules `(X = x̄) → (A = a)`
//! holding with confidence 1 and support ≥ `min_support`, mined levelwise
//! over frequent (attribute = value) itemsets, reporting only
//! left-reduced rules (no proper sub-itemset yields the same conclusion).

use std::collections::HashMap;

use cfd::{Cfd, Pattern};
use minidb::{Table, Value};

/// Mining configuration.
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Minimum number of matching tuples for a rule.
    pub min_support: usize,
    /// Maximum LHS itemset size.
    pub max_lhs: usize,
    /// Relation name stamped on discovered CFDs.
    pub relation: String,
}

impl Default for MinerConfig {
    fn default() -> MinerConfig {
        MinerConfig {
            min_support: 10,
            max_lhs: 2,
            relation: "r".to_string(),
        }
    }
}

/// A discovered constant CFD with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredConstCfd {
    /// The rule in normal form.
    pub cfd: Cfd,
    /// Number of supporting tuples.
    pub support: usize,
}

type Item = (usize, Value); // (column, value)

/// Mine constant CFDs from `table`.
pub fn mine_constant_cfds(table: &Table, cfg: &MinerConfig) -> Vec<DiscoveredConstCfd> {
    let arity = table.schema().arity();
    let names: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<Value>> = table.iter().map(|(_, r)| r.to_vec()).collect();
    if rows.is_empty() {
        return Vec::new();
    }

    // Frequent single items.
    let mut item_rows: HashMap<Item, Vec<u32>> = HashMap::new();
    for (i, row) in rows.iter().enumerate() {
        for (c, v) in row.iter().enumerate() {
            if v.is_null() {
                continue;
            }
            item_rows.entry((c, v.clone())).or_default().push(i as u32);
        }
    }
    item_rows.retain(|_, tids| tids.len() >= cfg.min_support);

    // Levelwise: itemsets as sorted Vec<Item> with their tid lists.
    let mut level: Vec<(Vec<Item>, Vec<u32>)> = item_rows
        .iter()
        .map(|(it, tids)| (vec![it.clone()], tids.clone()))
        .collect();
    level.sort_by_key(|a| itemset_key(&a.0));

    let mut found: Vec<DiscoveredConstCfd> = Vec::new();
    // Conclusions derivable from an itemset (whether or not emitted —
    // suppressed non-minimal rules are still recorded so minimality
    // propagates transitively up the lattice): (itemset key, rhs column).
    let mut derived: std::collections::HashSet<(Vec<(usize, String)>, usize)> = Default::default();

    for level_no in 1..=cfg.max_lhs {
        // Emit rules for this level.
        for (items, tids) in &level {
            for a in 0..arity {
                if items.iter().any(|(c, _)| *c == a) {
                    continue;
                }
                let first = &rows[tids[0] as usize][a];
                if first.is_null() {
                    continue;
                }
                let holds = tids[1..]
                    .iter()
                    .all(|&t| rows[t as usize][a].strong_eq(first));
                if !holds {
                    continue;
                }
                let minimal = !subsets_derive(&derived, items, a);
                derived.insert((itemset_key(items), a));
                if !minimal {
                    continue;
                }
                let lhs: Vec<(String, Pattern)> = items
                    .iter()
                    .map(|(c, v)| (names[*c].clone(), Pattern::Const(v.clone())))
                    .collect();
                let cfd = Cfd::new(
                    cfg.relation.clone(),
                    lhs,
                    names[a].clone(),
                    Pattern::Const(first.clone()),
                )
                .expect("mined rule is structurally valid");
                found.push(DiscoveredConstCfd {
                    cfd,
                    support: tids.len(),
                });
            }
        }
        if level_no == cfg.max_lhs {
            break;
        }
        // Candidate generation: join itemsets sharing all but the last item.
        let mut next: Vec<(Vec<Item>, Vec<u32>)> = Vec::new();
        let mut seen: std::collections::HashSet<Vec<(usize, String)>> = Default::default();
        for i in 0..level.len() {
            for j in (i + 1)..level.len() {
                let (a_items, a_tids) = &level[i];
                let (b_items, b_tids) = &level[j];
                if a_items[..a_items.len() - 1] != b_items[..b_items.len() - 1] {
                    continue;
                }
                let last = b_items.last().expect("non-empty itemset").clone();
                if a_items.iter().any(|(c, _)| *c == last.0) {
                    continue; // one value per attribute
                }
                let mut merged = a_items.clone();
                merged.push(last);
                merged.sort_by_key(item_key);
                let key = itemset_key(&merged);
                if !seen.insert(key) {
                    continue;
                }
                let tids = intersect(a_tids, b_tids);
                if tids.len() >= cfg.min_support {
                    next.push((merged, tids));
                }
            }
        }
        next.sort_by_key(|a| itemset_key(&a.0));
        level = next;
        if level.is_empty() {
            break;
        }
    }
    found
}

fn subsets_derive(
    derived: &std::collections::HashSet<(Vec<(usize, String)>, usize)>,
    items: &[Item],
    rhs: usize,
) -> bool {
    if items.len() <= 1 {
        return false;
    }
    (0..items.len()).any(|skip| {
        let sub: Vec<(usize, String)> = items
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, it)| item_key(it))
            .collect();
        derived.contains(&(sub, rhs))
    })
}

fn item_key(it: &Item) -> (usize, String) {
    (it.0, it.1.render())
}

fn itemset_key(items: &[Item]) -> Vec<(usize, String)> {
    items.iter().map(item_key).collect()
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_customers, generate_planted, CustomerConfig, GenericConfig};

    #[test]
    fn finds_cc_cnt_bindings_on_customers() {
        let t = generate_customers(&CustomerConfig {
            rows: 500,
            ..CustomerConfig::default()
        });
        let found = mine_constant_cfds(
            &t,
            &MinerConfig {
                min_support: 20,
                max_lhs: 1,
                relation: "customer".into(),
            },
        );
        // φ4 and friends: [CC='44'] -> [CNT='UK'] etc.
        let has = |cc: &str, cnt: &str| {
            found.iter().any(|d| {
                d.cfd.lhs == vec!["CC".to_string()]
                    && d.cfd.lhs_pat[0] == Pattern::s(cc)
                    && d.cfd.rhs == "CNT"
                    && d.cfd.rhs_pat == Pattern::s(cnt)
            })
        };
        assert!(has("44", "UK"), "{found:?}");
        assert!(has("01", "US"));
        assert!(has("31", "NL"));
    }

    #[test]
    fn recovers_planted_constant_cfd() {
        let p = generate_planted(&GenericConfig {
            rows: 1500,
            attrs: 5,
            domain: 10,
            seed: 8,
        });
        let found = mine_constant_cfds(
            &p.table,
            &MinerConfig {
                min_support: 5,
                max_lhs: 1,
                relation: "planted".into(),
            },
        );
        let target = &p.constant_cfds[0];
        assert!(
            found.iter().any(|d| d.cfd.lhs == target.lhs
                && d.cfd.lhs_pat == target.lhs_pat
                && d.cfd.rhs == target.rhs
                && d.cfd.rhs_pat == target.rhs_pat),
            "planted constant CFD not found: {found:?}"
        );
    }

    #[test]
    fn support_threshold_filters_rare_rules() {
        let t = generate_customers(&CustomerConfig {
            rows: 100,
            ..CustomerConfig::default()
        });
        let strict = mine_constant_cfds(
            &t,
            &MinerConfig {
                min_support: 1000,
                max_lhs: 1,
                relation: "customer".into(),
            },
        );
        assert!(strict.is_empty());
    }

    #[test]
    fn discovered_rules_hold_on_the_data() {
        let t = generate_customers(&CustomerConfig {
            rows: 300,
            ..CustomerConfig::default()
        });
        let found = mine_constant_cfds(
            &t,
            &MinerConfig {
                min_support: 15,
                max_lhs: 2,
                relation: "customer".into(),
            },
        );
        assert!(!found.is_empty());
        for d in &found {
            let b = d.cfd.bind(t.schema()).unwrap();
            let mut support = 0usize;
            for (_, row) in t.iter() {
                if b.lhs_matches(row) {
                    support += 1;
                    assert!(b.rhs_matches(row), "rule {} broken", d.cfd);
                }
            }
            assert_eq!(support, d.support, "support bookkeeping for {}", d.cfd);
        }
    }
}
