//! Variable CFD discovery (CTane-style): rules `(X → A, tp)` with wildcard
//! RHS, where the LHS pattern mixes constants and wildcards, holding
//! exactly on the data with support ≥ `min_support`.
//!
//! The search space is the product of attribute-set and pattern lattices;
//! we explore LHS sets up to `max_lhs` and patterns with at most
//! `max_constants` constant cells (the shape of the paper's φ2), pruning
//! rules subsumed by an already-found, more general rule.

use std::collections::HashMap;

use cfd::cover::subsumes;
use cfd::{Cfd, Pattern};
use minidb::{Table, Value};

/// Discovery configuration.
#[derive(Debug, Clone)]
pub struct CtaneConfig {
    /// Maximum LHS attribute-set size.
    pub max_lhs: usize,
    /// Maximum number of constant cells in the LHS pattern.
    pub max_constants: usize,
    /// Minimum number of pattern-matching tuples.
    pub min_support: usize,
    /// Relation name stamped on discovered CFDs.
    pub relation: String,
}

impl Default for CtaneConfig {
    fn default() -> CtaneConfig {
        CtaneConfig {
            max_lhs: 2,
            max_constants: 1,
            min_support: 20,
            relation: "r".to_string(),
        }
    }
}

/// A discovered variable CFD with its support.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredVarCfd {
    /// The rule (wildcard RHS).
    pub cfd: Cfd,
    /// Number of tuples matching the LHS pattern.
    pub support: usize,
}

/// Mine variable CFDs from `table`.
pub fn mine_variable_cfds(table: &Table, cfg: &CtaneConfig) -> Vec<DiscoveredVarCfd> {
    let arity = table.schema().arity();
    let names: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<Vec<Value>> = table.iter().map(|(_, r)| r.to_vec()).collect();
    if rows.len() < 2 {
        return Vec::new();
    }

    let mut found: Vec<DiscoveredVarCfd> = Vec::new();

    // Enumerate LHS attribute sets (size 1..=max_lhs).
    let sets = attr_sets(arity, cfg.max_lhs);
    for x in &sets {
        for a in 0..arity {
            if x.contains(&a) {
                continue;
            }
            // Pattern candidates: choose ≤ max_constants positions in X to
            // pin; constant values are drawn from frequent values of that
            // column among rows (support pruning applies anyway).
            for pinned in pin_choices(x.len(), cfg.max_constants) {
                if pinned.is_empty() {
                    // pure FD shape — evaluate directly
                    if let Some(d) = check_rule(&rows, x, &[], a, cfg, &names) {
                        push_minimal(&mut found, d);
                    }
                } else {
                    // collect candidate constants per pinned position
                    let value_lists: Vec<Vec<Value>> = pinned
                        .iter()
                        .map(|&pos| frequent_values(&rows, x[pos], cfg.min_support))
                        .collect();
                    for combo in cartesian(&value_lists) {
                        let consts: Vec<(usize, Value)> = pinned
                            .iter()
                            .zip(&combo)
                            .map(|(&pos, v)| (pos, (*v).clone()))
                            .collect();
                        if let Some(d) = check_rule(&rows, x, &consts, a, cfg, &names) {
                            push_minimal(&mut found, d);
                        }
                    }
                }
            }
        }
    }
    found.sort_by_key(|a| a.cfd.to_string());
    found
}

/// Keep only rules not subsumed by an existing more-general rule; also
/// remove existing rules the new one generalizes.
fn push_minimal(found: &mut Vec<DiscoveredVarCfd>, d: DiscoveredVarCfd) {
    if found.iter().any(|f| subsumes(&f.cfd, &d.cfd)) {
        return;
    }
    found.retain(|f| !subsumes(&d.cfd, &f.cfd));
    found.push(d);
}

fn check_rule(
    rows: &[Vec<Value>],
    x: &[usize],
    consts: &[(usize, Value)],
    a: usize,
    cfg: &CtaneConfig,
    names: &[String],
) -> Option<DiscoveredVarCfd> {
    let mut groups: HashMap<Vec<&Value>, &Value> = HashMap::new();
    let mut support = 0usize;
    for row in rows {
        // pattern match
        if consts
            .iter()
            .any(|(pos, v)| !row[x[*pos]].strong_eq(v) || row[x[*pos]].is_null())
        {
            continue;
        }
        let rhs = &row[a];
        if rhs.is_null() {
            continue;
        }
        support += 1;
        let key: Vec<&Value> = x.iter().map(|&c| &row[c]).collect();
        match groups.get(&key) {
            None => {
                groups.insert(key, rhs);
            }
            Some(existing) => {
                if !existing.strong_eq(rhs) {
                    return None; // rule broken
                }
            }
        }
    }
    if support < cfg.min_support {
        return None;
    }
    let lhs: Vec<(String, Pattern)> = x
        .iter()
        .enumerate()
        .map(|(pos, &c)| {
            let pat = consts
                .iter()
                .find(|(p, _)| *p == pos)
                .map(|(_, v)| Pattern::Const(v.clone()))
                .unwrap_or(Pattern::Wild);
            (names[c].clone(), pat)
        })
        .collect();
    let cfd = Cfd::new(cfg.relation.clone(), lhs, names[a].clone(), Pattern::Wild)
        .expect("mined rule is structurally valid");
    Some(DiscoveredVarCfd { cfd, support })
}

fn attr_sets(arity: usize, max: usize) -> Vec<Vec<usize>> {
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut frontier: Vec<Vec<usize>> = (0..arity).map(|c| vec![c]).collect();
    for _ in 0..max {
        out.extend(frontier.iter().cloned());
        let mut next = Vec::new();
        for s in &frontier {
            let last = *s.last().expect("non-empty set");
            for c in (last + 1)..arity {
                let mut bigger = s.clone();
                bigger.push(c);
                next.push(bigger);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    out
}

fn pin_choices(len: usize, max_constants: usize) -> Vec<Vec<usize>> {
    // all subsets of positions 0..len with size ≤ max_constants
    let mut out: Vec<Vec<usize>> = vec![Vec::new()];
    for k in 1..=max_constants.min(len) {
        out.extend(combinations(len, k));
    }
    out
}

fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // advance
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] + (k - i) < n {
                idx[i] += 1;
                for j in (i + 1)..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn frequent_values(rows: &[Vec<Value>], col: usize, min_support: usize) -> Vec<Value> {
    let mut counts: HashMap<&Value, usize> = HashMap::new();
    for r in rows {
        if !r[col].is_null() {
            *counts.entry(&r[col]).or_default() += 1;
        }
    }
    let mut vals: Vec<Value> = counts
        .into_iter()
        .filter(|(_, n)| *n >= min_support)
        .map(|(v, _)| v.clone())
        .collect();
    vals.sort_by(|a, b| a.total_cmp(b));
    vals
}

fn cartesian(lists: &[Vec<Value>]) -> Vec<Vec<&Value>> {
    let mut out: Vec<Vec<&Value>> = vec![Vec::new()];
    for list in lists {
        let mut next = Vec::with_capacity(out.len() * list.len());
        for prefix in &out {
            for v in list {
                let mut p = prefix.clone();
                p.push(v);
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_customers, CustomerConfig};

    #[test]
    fn finds_variable_rules_on_customers() {
        let t = generate_customers(&CustomerConfig {
            rows: 600,
            ..CustomerConfig::default()
        });
        let found = mine_variable_cfds(
            &t,
            &CtaneConfig {
                max_lhs: 2,
                max_constants: 1,
                min_support: 50,
                relation: "customer".into(),
            },
        );
        // ZIP → CITY (pure FD shape) must be found.
        assert!(
            found
                .iter()
                .any(|d| d.cfd.rhs == "CITY" && d.cfd.lhs == vec!["ZIP".to_string()]),
            "{:?}",
            found.iter().map(|d| d.cfd.to_string()).collect::<Vec<_>>()
        );
        // CC → CNT as well.
        assert!(found
            .iter()
            .any(|d| d.cfd.rhs == "CNT" && d.cfd.lhs == vec!["CC".to_string()]));
    }

    #[test]
    fn discovers_conditional_rule_that_fails_globally() {
        // STR is determined by ZIP only for CNT='UK' in this handcrafted
        // table; globally the FD fails.
        use minidb::{Schema, Table};
        let mut t = Table::new("customer", Schema::of_strings(&["CNT", "ZIP", "STR"]));
        for i in 0..30 {
            // UK rows: zip z{i%3} always street s{i%3}
            t.insert(vec![
                Value::str("UK"),
                Value::str(format!("z{}", i % 3)),
                Value::str(format!("s{}", i % 3)),
            ])
            .unwrap();
        }
        for i in 0..30 {
            // US rows: same zips, streets vary
            t.insert(vec![
                Value::str("US"),
                Value::str(format!("z{}", i % 3)),
                Value::str(format!("t{i}")),
            ])
            .unwrap();
        }
        let found = mine_variable_cfds(
            &t,
            &CtaneConfig {
                max_lhs: 2,
                max_constants: 1,
                min_support: 10,
                relation: "customer".into(),
            },
        );
        let strs: Vec<String> = found.iter().map(|d| d.cfd.to_string()).collect();
        // The φ2 shape: [CNT='UK', ZIP=_] -> [STR=_].
        assert!(
            strs.iter()
                .any(|s| s.contains("CNT='UK'") && s.contains("ZIP=_") && s.contains("[STR=_]")),
            "{strs:?}"
        );
        // And no unconditional [ZIP] -> [STR].
        assert!(!strs.iter().any(|s| s == "customer: [ZIP=_] -> [STR=_]"));
    }

    #[test]
    fn subsumed_specializations_are_pruned() {
        let t = generate_customers(&CustomerConfig {
            rows: 500,
            ..CustomerConfig::default()
        });
        let found = mine_variable_cfds(
            &t,
            &CtaneConfig {
                max_lhs: 1,
                max_constants: 1,
                min_support: 30,
                relation: "customer".into(),
            },
        );
        // CC → CNT holds globally, so [CC='44'] -> [CNT=_] must be pruned.
        let strs: Vec<String> = found.iter().map(|d| d.cfd.to_string()).collect();
        assert!(strs.iter().any(|s| s == "customer: [CC=_] -> [CNT=_]"));
        assert!(!strs
            .iter()
            .any(|s| s.contains("CC='44'") && s.contains("[CNT=_]")));
    }

    #[test]
    fn support_is_counted_per_pattern() {
        let t = generate_customers(&CustomerConfig {
            rows: 300,
            ..CustomerConfig::default()
        });
        let found = mine_variable_cfds(
            &t,
            &CtaneConfig {
                max_lhs: 1,
                max_constants: 0,
                min_support: 10,
                relation: "customer".into(),
            },
        );
        for d in &found {
            assert!(d.support >= 10);
            assert!(d.support <= 300);
        }
    }
}
