//! Stripped partitions — the workhorse of TANE-style dependency discovery.
//!
//! The partition Π_X of a relation groups row positions by their values on
//! attribute set X; an FD `X → A` holds iff refining Π_X by A does not
//! split any class. *Stripped* partitions drop singleton classes (they can
//! never witness a violation), keeping memory proportional to duplication.

use std::collections::HashMap;

use colstore::{ColumnBuilder, Snapshot};
use minidb::{Table, Value};

/// A stripped partition: classes of row positions with ≥ 2 members, plus
/// the total number of rows (needed for error measures).
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Equivalence classes (each sorted, len ≥ 2), in first-seen order.
    pub classes: Vec<Vec<u32>>,
    /// Total rows in the relation.
    pub n_rows: usize,
}

impl Partition {
    /// Number of stripped classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when every class is a singleton (X is a key).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Σ |class| over stripped classes.
    pub fn member_count(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// TANE's error `e(X) = (member_count - len) / n_rows`: 0 iff X is a
    /// (super)key over the duplicated rows.
    pub fn error(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        (self.member_count() - self.len()) as f64 / self.n_rows as f64
    }
}

/// Build the single-attribute partition of column `col` by
/// dictionary-encoding the column and bucketing codes — no `Value` clones,
/// no per-row `Value` hashing beyond the one interning pass.
pub fn partition_by_column(table: &Table, col: usize) -> Partition {
    let mut b = ColumnBuilder::with_capacity(table.len());
    for (_, row) in table.iter() {
        b.push(&row[col]);
    }
    let column = b.finish();
    partition_from_codes(&column.contiguous(), column.distinct(), table.len())
}

/// Build a stripped partition directly from a dictionary-encoded code slice
/// (codes `0..=n_distinct`, 0 = NULL). Bucketing is a counting pass over
/// dense codes — the colstore fast path for discovery.
///
/// NULLs land in one class, mirroring [`Value::strong_eq`] grouping (the
/// dictionary assigns all NULLs the sentinel code).
pub fn partition_from_codes(codes: &[u32], n_distinct: usize, n_rows: usize) -> Partition {
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_distinct + 1];
    for (pos, &c) in codes.iter().enumerate() {
        buckets[c as usize].push(pos as u32);
    }
    strip(buckets.into_iter(), n_rows)
}

/// All single-attribute partitions of a columnar snapshot, tagged with
/// their schema positions (one shared encode, one counting pass per encoded
/// column). The tags matter on projected snapshots, where the encoded
/// columns are not contiguous.
pub fn snapshot_partitions(snap: &Snapshot) -> Vec<(usize, Partition)> {
    snap.encoded_columns()
        .map(|(i, c)| {
            (
                i,
                partition_from_codes(&c.contiguous(), c.distinct(), snap.n_rows()),
            )
        })
        .collect()
}

/// Refine `base` by `other` (partition product): classes of `base` are
/// split by the class membership in `other`. This is the standard
/// stripped-partition product used level-by-level in TANE.
pub fn refine(base: &Partition, other: &Partition) -> Partition {
    // Map row → other-class id (stripped rows get a unique negative id by
    // virtue of being absent).
    let mut other_class: HashMap<u32, u32> = HashMap::new();
    for (cid, class) in other.classes.iter().enumerate() {
        for &r in class {
            other_class.insert(r, cid as u32);
        }
    }
    let mut out: Vec<Vec<u32>> = Vec::new();
    for class in &base.classes {
        let mut sub: HashMap<Option<u32>, Vec<u32>> = HashMap::new();
        for (i, &r) in class.iter().enumerate() {
            // Rows absent from `other` are singletons there; give each its
            // own bucket (None collides, so tag by index).
            match other_class.get(&r) {
                Some(&cid) => sub.entry(Some(cid)).or_default().push(r),
                None => {
                    sub.entry(None).or_default(); // ensure key exists
                    sub.insert(Some(u32::MAX - i as u32), vec![r]);
                }
            }
        }
        for (_, rows) in sub {
            if rows.len() >= 2 {
                out.push(rows);
            }
        }
    }
    for c in &mut out {
        c.sort_unstable();
    }
    out.sort();
    Partition {
        classes: out,
        n_rows: base.n_rows,
    }
}

fn strip(classes: impl Iterator<Item = Vec<u32>>, n_rows: usize) -> Partition {
    let mut kept: Vec<Vec<u32>> = classes.filter(|c| c.len() >= 2).collect();
    for c in &mut kept {
        c.sort_unstable();
    }
    kept.sort();
    Partition {
        classes: kept,
        n_rows,
    }
}

/// Does the FD "X → col" hold, where `pi_x` is Π_X? Holds iff refining by
/// the column splits nothing — checked directly against column values
/// (cheaper than building the product).
pub fn fd_holds(table: &Table, pi_x: &Partition, col: usize) -> bool {
    let values: Vec<&Value> = table.iter().map(|(_, r)| &r[col]).collect();
    for class in &pi_x.classes {
        let first = values[class[0] as usize];
        if class[1..]
            .iter()
            .any(|&r| !values[r as usize].strong_eq(first))
        {
            return false;
        }
    }
    true
}

/// [`fd_holds`] over a dictionary-encoded RHS column: code equality is
/// strong equality, so the check is pure integer comparison.
pub fn fd_holds_codes(codes: &[u32], pi_x: &Partition) -> bool {
    pi_x.classes.iter().all(|class| {
        let first = codes[class[0] as usize];
        class[1..].iter().all(|&r| codes[r as usize] == first)
    })
}

/// [`g3_error`] over a dictionary-encoded RHS column.
pub fn g3_error_codes(codes: &[u32], pi_x: &Partition, n_rows: usize) -> f64 {
    if n_rows == 0 {
        return 0.0;
    }
    let mut violating = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for class in &pi_x.classes {
        counts.clear();
        for &r in class {
            *counts.entry(codes[r as usize]).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        violating += class.len() - max;
    }
    violating as f64 / n_rows as f64
}

/// The g3 error of the FD "X → col": the minimum fraction of rows to
/// delete for the FD to hold. 0 for exact FDs.
pub fn g3_error(table: &Table, pi_x: &Partition, col: usize) -> f64 {
    if table.is_empty() {
        return 0.0;
    }
    let values: Vec<&Value> = table.iter().map(|(_, r)| &r[col]).collect();
    let mut violating = 0usize;
    for class in &pi_x.classes {
        let mut counts: HashMap<&Value, usize> = HashMap::new();
        for &r in class {
            *counts.entry(values[r as usize]).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0);
        violating += class.len() - max;
    }
    violating as f64 / table.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Schema;

    fn t(rows: &[[&str; 3]]) -> Table {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B", "C"]));
        for r in rows {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        t
    }

    #[test]
    fn single_column_partition_strips_singletons() {
        let table = t(&[["x", "1", "p"], ["x", "2", "q"], ["y", "3", "r"]]);
        let p = partition_by_column(&table, 0);
        assert_eq!(p.classes, vec![vec![0, 1]]); // 'y' singleton stripped
        assert_eq!(p.n_rows, 3);
    }

    #[test]
    fn refinement_splits_classes() {
        let table = t(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["x", "2", "r"],
            ["y", "1", "s"],
        ]);
        let pa = partition_by_column(&table, 0);
        let pb = partition_by_column(&table, 1);
        let pab = refine(&pa, &pb);
        // {0,1,2} (A=x) split by B: {0,1} (B=1) survives, {2} stripped.
        assert_eq!(pab.classes, vec![vec![0, 1]]);
    }

    #[test]
    fn fd_check_via_partitions() {
        let table = t(&[
            ["x", "1", "p"],
            ["x", "1", "p"],
            ["y", "2", "q"],
            ["y", "2", "q"],
        ]);
        let pa = partition_by_column(&table, 0);
        assert!(fd_holds(&table, &pa, 1), "A -> B holds");
        assert!(fd_holds(&table, &pa, 2), "A -> C holds");
        let table2 = t(&[["x", "1", "p"], ["x", "2", "p"]]);
        let pa2 = partition_by_column(&table2, 0);
        assert!(!fd_holds(&table2, &pa2, 1), "A -> B broken");
    }

    #[test]
    fn g3_counts_minimum_deletions() {
        let table = t(&[
            ["x", "1", "p"],
            ["x", "1", "p"],
            ["x", "2", "p"],
            ["y", "9", "q"],
        ]);
        let pa = partition_by_column(&table, 0);
        // Class {0,1,2}: B values {1:2, 2:1} → delete 1 row of 4.
        assert!((g3_error(&table, &pa, 1) - 0.25).abs() < 1e-9);
        assert_eq!(g3_error(&table, &pa, 2), 0.0);
    }

    #[test]
    fn error_measure_tracks_duplication() {
        let table = t(&[["x", "1", "p"], ["x", "2", "q"], ["z", "3", "r"]]);
        let pa = partition_by_column(&table, 0);
        // one class of 2 → (2 - 1)/3
        assert!((pa.error() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn code_partitions_match_value_partitions() {
        let table = t(&[
            ["x", "1", "p"],
            ["x", "2", "p"],
            ["y", "1", "q"],
            ["y", "1", "q"],
            ["z", "3", "p"],
        ]);
        let snap = Snapshot::of(&table);
        for (c, p) in snapshot_partitions(&snap) {
            assert_eq!(p, partition_by_column(&table, c), "column {c}");
        }
        // Projected snapshots keep their schema positions.
        let proj = Snapshot::projected(&table, &[2]);
        let tagged = snapshot_partitions(&proj);
        assert_eq!(tagged.len(), 1);
        assert_eq!(tagged[0].0, 2, "partition tagged with schema position");
        assert_eq!(tagged[0].1, partition_by_column(&table, 2));
    }

    #[test]
    fn code_fd_checks_match_value_fd_checks() {
        let table = t(&[
            ["x", "1", "p"],
            ["x", "1", "q"],
            ["y", "2", "q"],
            ["y", "2", "q"],
        ]);
        let snap = Snapshot::of(&table);
        let pa = partition_by_column(&table, 0);
        for col in 1..3 {
            let codes = snap.column(col).contiguous();
            assert_eq!(fd_holds_codes(&codes, &pa), fd_holds(&table, &pa, col));
            assert!(
                (g3_error_codes(&codes, &pa, table.len()) - g3_error(&table, &pa, col)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn null_rows_share_one_code_class() {
        let mut table = Table::new("r", minidb::Schema::of_strings(&["A"]));
        for v in [Value::Null, Value::Null, Value::str("x")] {
            table.insert(vec![v]).unwrap();
        }
        let p = partition_by_column(&table, 0);
        assert_eq!(p.classes, vec![vec![0, 1]], "NULLs group together");
    }
}
