//! Levelwise FD discovery (TANE-style): minimal exact FDs `X → A` with
//! `|X| ≤ max_lhs`, via stripped-partition refinement, plus approximate
//! FDs under a g3 threshold.

use std::collections::HashMap;

use cfd::Fd;
use minidb::Table;

use colstore::Snapshot;

use crate::partition::{fd_holds_codes, g3_error_codes, refine, snapshot_partitions, Partition};

/// Discovery configuration.
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum LHS size to explore.
    pub max_lhs: usize,
    /// g3 threshold: 0.0 discovers exact FDs only; larger values admit
    /// approximate FDs whose violation fraction is below the threshold.
    pub g3_threshold: f64,
}

impl Default for TaneConfig {
    fn default() -> TaneConfig {
        TaneConfig {
            max_lhs: 3,
            g3_threshold: 0.0,
        }
    }
}

/// A discovered FD with its g3 error (0 for exact).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredFd {
    /// The dependency.
    pub fd: Fd,
    /// Its g3 error on the input.
    pub g3: f64,
}

/// Discover minimal FDs of `table` under `cfg`.
///
/// Minimality: `X → A` is reported only if no discovered `Y → A` with
/// `Y ⊂ X` exists (checked per level, so reported FDs have minimal LHS
/// within the explored lattice).
pub fn discover_fds(table: &Table, cfg: &TaneConfig) -> Vec<DiscoveredFd> {
    let arity = table.schema().arity();
    let names: Vec<String> = table
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    if table.len() < 2 || arity < 2 {
        return Vec::new();
    }

    // One columnar encode; level-1 partitions and all FD checks run over
    // dictionary codes instead of cloned values.
    let snap = Snapshot::of(table);
    let mut level: HashMap<Vec<usize>, Partition> = HashMap::new();
    for (c, p) in snapshot_partitions(&snap) {
        level.insert(vec![c], p);
    }

    let mut found: Vec<DiscoveredFd> = Vec::new();
    // For minimality: rhs → list of minimal LHSs discovered so far.
    let mut minimal_lhs: HashMap<usize, Vec<Vec<usize>>> = HashMap::new();

    let mut level_no = 1usize;
    while level_no <= cfg.max_lhs && !level.is_empty() {
        // Test FDs X → A for each X in this level and A ∉ X.
        let mut keys: Vec<Vec<usize>> = level.keys().cloned().collect();
        keys.sort();
        for x in &keys {
            let pi_x = &level[x];
            for a in 0..arity {
                if x.contains(&a) {
                    continue;
                }
                // Minimality pruning: some subset of X already determines A.
                if minimal_lhs
                    .get(&a)
                    .is_some_and(|ls| ls.iter().any(|l| is_subset(l, x)))
                {
                    continue;
                }
                let codes = snap.column(a).contiguous();
                let exact = fd_holds_codes(&codes, pi_x);
                let g3 = if exact {
                    0.0
                } else {
                    g3_error_codes(&codes, pi_x, snap.n_rows())
                };
                if exact || g3 <= cfg.g3_threshold {
                    minimal_lhs.entry(a).or_default().push(x.clone());
                    found.push(DiscoveredFd {
                        fd: Fd {
                            lhs: x.iter().map(|&c| names[c].clone()).collect(),
                            rhs: names[a].clone(),
                        },
                        g3,
                    });
                }
            }
        }
        // Build the next level: join sets sharing a prefix.
        if level_no == cfg.max_lhs {
            break;
        }
        let mut next: HashMap<Vec<usize>, Partition> = HashMap::new();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                let (a, b) = (&keys[i], &keys[j]);
                if a[..a.len() - 1] != b[..b.len() - 1] {
                    continue;
                }
                let mut merged = a.clone();
                merged.push(*b.last().expect("non-empty key"));
                merged.sort_unstable();
                merged.dedup();
                if merged.len() != a.len() + 1 || next.contains_key(&merged) {
                    continue;
                }
                // Keys (e(X)=0) determine everything; their supersets are
                // never minimal — prune.
                if level[a].is_empty() || level[b].is_empty() {
                    continue;
                }
                let p = refine(&level[a], &level[b]);
                next.insert(merged, p);
            }
        }
        level = next;
        level_no += 1;
    }
    found.sort_by(|a, b| {
        (a.fd.lhs.len(), &a.fd.lhs, &a.fd.rhs).cmp(&(b.fd.lhs.len(), &b.fd.lhs, &b.fd.rhs))
    });
    found
}

fn is_subset(small: &[usize], big: &[usize]) -> bool {
    small.iter().all(|s| big.contains(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_customers, generate_planted, CustomerConfig, GenericConfig};
    use minidb::{Schema, Value};

    #[test]
    fn recovers_planted_fds() {
        let p = generate_planted(&GenericConfig {
            rows: 800,
            attrs: 5,
            domain: 12,
            seed: 3,
        });
        let found = discover_fds(&p.table, &TaneConfig::default());
        for fd in &p.fds {
            assert!(
                found.iter().any(|d| {
                    d.g3 == 0.0
                        && d.fd.rhs.eq_ignore_ascii_case(&fd.rhs)
                        && d.fd.lhs.len() == fd.lhs.len()
                        && d.fd
                            .lhs
                            .iter()
                            .all(|a| fd.lhs.iter().any(|b| b.eq_ignore_ascii_case(a)))
                }),
                "planted {fd} not discovered; found: {found:?}"
            );
        }
    }

    #[test]
    fn discovers_cnt_zip_city_on_customers() {
        let t = generate_customers(&CustomerConfig {
            rows: 600,
            ..CustomerConfig::default()
        });
        let found = discover_fds(&t, &TaneConfig::default());
        // ZIP alone determines CITY in the generator (zips embed the city),
        // so the *minimal* discovered FD is [ZIP] -> CITY.
        assert!(
            found
                .iter()
                .any(|d| d.fd.rhs == "CITY" && d.fd.lhs == vec!["ZIP".to_string()]),
            "{found:?}"
        );
        // CC -> CNT must be found (φ3).
        assert!(found
            .iter()
            .any(|d| d.fd.rhs == "CNT" && d.fd.lhs == vec!["CC".to_string()]));
    }

    #[test]
    fn minimality_suppresses_supersets() {
        let t = generate_customers(&CustomerConfig {
            rows: 400,
            ..CustomerConfig::default()
        });
        let found = discover_fds(&t, &TaneConfig::default());
        // [CC] -> CNT found, so [CC, CITY] -> CNT must not be reported.
        assert!(!found.iter().any(|d| d.fd.rhs == "CNT"
            && d.fd.lhs.contains(&"CC".to_string())
            && d.fd.lhs.len() > 1));
    }

    #[test]
    fn approximate_fds_under_threshold() {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
        // A -> B holds on 19 of 20 rows.
        for i in 0..19 {
            t.insert(vec![
                Value::str(format!("k{}", i % 4)),
                Value::str(format!("v{}", i % 4)),
            ])
            .unwrap();
        }
        t.insert(vec![Value::str("k0"), Value::str("odd")]).unwrap();
        let exact = discover_fds(&t, &TaneConfig::default());
        assert!(!exact
            .iter()
            .any(|d| d.fd.rhs == "B" && d.fd.lhs == vec!["A".to_string()]));
        let approx = discover_fds(
            &t,
            &TaneConfig {
                g3_threshold: 0.1,
                ..TaneConfig::default()
            },
        );
        let hit = approx
            .iter()
            .find(|d| d.fd.rhs == "B" && d.fd.lhs == vec!["A".to_string()])
            .expect("approximate FD discovered");
        assert!(hit.g3 > 0.0 && hit.g3 <= 0.1);
    }

    #[test]
    fn tiny_tables_yield_nothing() {
        let t = Table::new("r", Schema::of_strings(&["A", "B"]));
        assert!(discover_fds(&t, &TaneConfig::default()).is_empty());
    }
}
