//! Post-discovery validation: the Constraint Engine checks discovered rule
//! sets for consistency before adopting them (paper §2: users are told
//! whether the specified CFDs "make sense").

use cfd::satisfiability::check_consistency;
use cfd::{Cfd, CfdResult, Consistency, DomainSpec};

/// Result of validating a discovered rule set.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationOutcome {
    /// Whether the set is jointly satisfiable.
    pub consistent: bool,
    /// Number of rules checked.
    pub rules: usize,
}

/// Check a discovered rule set for joint consistency.
pub fn validate_rules(cfds: &[Cfd], domains: &DomainSpec) -> CfdResult<ValidationOutcome> {
    let verdict = check_consistency(cfds, domains)?;
    Ok(ValidationOutcome {
        consistent: matches!(verdict, Consistency::Consistent(_)),
        rules: cfds.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfdminer::{mine_constant_cfds, MinerConfig};
    use datagen::{generate_customers, CustomerConfig};

    #[test]
    fn rules_mined_from_real_data_are_consistent() {
        // Anything mined with confidence 1 from an actual instance is
        // satisfiable — that instance is a witness.
        let t = generate_customers(&CustomerConfig {
            rows: 300,
            ..CustomerConfig::default()
        });
        let found = mine_constant_cfds(
            &t,
            &MinerConfig {
                min_support: 15,
                max_lhs: 1,
                relation: "customer".into(),
            },
        );
        let rules: Vec<_> = found.into_iter().map(|d| d.cfd).collect();
        assert!(!rules.is_empty());
        let v = validate_rules(&rules, &DomainSpec::all_infinite()).unwrap();
        assert!(v.consistent);
        assert_eq!(v.rules, rules.len());
    }

    #[test]
    fn conflicting_manual_rules_are_flagged() {
        let rules = cfd::parse::parse_cfds(
            "r: [A=_] -> [B='1']\n\
             r: [A=_] -> [B='2']",
        )
        .unwrap();
        let v = validate_rules(&rules, &DomainSpec::all_infinite()).unwrap();
        assert!(!v.consistent);
    }
}
