//! The Data Monitor (Fig. 1): watches updates and keeps quality from
//! degrading. Per the paper it "(1) invokes incremental detection … if the
//! database has not been cleansed; or (2) invokes incremental repair …
//! otherwise".
//!
//! Alongside the [`IncrementalDetector`] the monitor maintains a columnar
//! snapshot of the relation in lock-step with the update stream (append on
//! insert, swap-remove on delete, single-cell re-encode on set-cell), so
//! [`DataMonitor::snapshot`] and [`DataMonitor::detect`] are always
//! current without ever re-encoding the table in steady state.

use std::sync::Arc;

use api::{Capabilities, Mutation, QualityBackend};
use audit::{quality_report, QualityReport};
use cfd::parse::parse_cfds;
use cfd::{Cfd, CfdError, CfdResult};
use colstore::{detect_cached, seed_incremental, Snapshot, SnapshotCache};
use detect::{IncrementalDetector, ViolationReport};
use minidb::{Database, DbError, RowId, Value};
use repair::{incremental_repair, RepairConfig};

fn db_err(e: DbError) -> CfdError {
    CfdError::Malformed(e.to_string())
}

/// The monitor's historical name for the shared mutation type: an update
/// against the monitored relation is exactly an [`api::Mutation`].
pub type Update = Mutation;

/// Monitoring mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorMode {
    /// Database not cleansed yet: track violations incrementally.
    DetectOnly,
    /// Database was cleansed: repair incoming deltas on arrival.
    RepairOnArrival,
}

/// Outcome of applying one update.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateOutcome {
    /// Row the update affected (the new id for inserts).
    pub row: Option<RowId>,
    /// Total violations after the update (and any repair).
    pub violations: u64,
    /// Cells changed by incremental repair (empty in detect-only mode).
    pub repairs: usize,
}

/// The data monitor: owns the database and incremental state.
pub struct DataMonitor {
    db: Database,
    relation: String,
    cfds: Vec<Cfd>,
    detector: IncrementalDetector,
    /// Columnar snapshot of the relation, patched in lock-step with the
    /// update stream (and with repair-on-arrival's edits).
    snapshots: SnapshotCache,
    mode: MonitorMode,
    repair_cfg: RepairConfig,
}

impl DataMonitor {
    /// Start monitoring `relation` in `db` under `cfds`.
    pub fn new(
        db: Database,
        relation: &str,
        cfds: Vec<Cfd>,
        mode: MonitorMode,
    ) -> CfdResult<DataMonitor> {
        // One columnar encode seeds both the snapshot cache and the
        // incremental detector's group state (bulk, not row-at-a-time) —
        // from here on both are maintained under the update stream.
        let mut snapshots = SnapshotCache::new();
        let snap = snapshots.snapshot(db.table(relation).map_err(db_err)?);
        let detector = seed_incremental(&snap, &cfds)?;
        Ok(DataMonitor {
            db,
            relation: relation.to_string(),
            cfds,
            detector,
            snapshots,
            mode,
            repair_cfg: RepairConfig::default(),
        })
    }

    /// Current total number of violations.
    pub fn violations(&self) -> u64 {
        self.detector.total_violations()
    }

    /// Current `vio(t)` of a row.
    pub fn vio_of(&self, row: RowId) -> u64 {
        self.detector.vio_of(row)
    }

    /// Materialize the current violation report.
    pub fn report(&self) -> ViolationReport {
        self.detector.report()
    }

    /// The current columnar snapshot of the monitored relation, maintained
    /// in lock-step with the update stream — in steady state this is a
    /// refcount bump, not an encode (it also serves as the shard-transfer
    /// format). Falls back to one full encode if the database was mutated
    /// behind the monitor's back.
    pub fn snapshot(&mut self) -> CfdResult<Arc<Snapshot>> {
        Ok(self
            .snapshots
            .snapshot(self.db.table(&self.relation).map_err(db_err)?))
    }

    /// Batch detection over the maintained snapshot (zero encode work in
    /// steady state, and per-CFD fragments are replayed from the memo for
    /// rules whose columns the update stream left untouched). Equal, after
    /// `normalized()`, to [`Self::report`] — the monitor's two views can
    /// be cross-checked at any time.
    pub fn detect(&mut self) -> CfdResult<ViolationReport> {
        let table = self.db.table(&self.relation).map_err(db_err)?;
        detect_cached(&mut self.snapshots, table, &self.cfds)
    }

    /// Number of full snapshot encodes since monitoring began (1 after
    /// construction; steady-state streams keep it there).
    pub fn snapshot_encodes(&self) -> u64 {
        self.snapshots.encodes()
    }

    /// The monitored database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Switch mode (e.g. after an explicit cleansing pass).
    pub fn set_mode(&mut self, mode: MonitorMode) {
        self.mode = mode;
    }

    /// The monitored CFD set.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Replace the monitored CFD set, re-seeding the incremental detector
    /// from the maintained snapshot (one bulk pass, no re-encode in
    /// steady state).
    pub fn set_cfds(&mut self, cfds: Vec<Cfd>) -> CfdResult<()> {
        let snap = self
            .snapshots
            .snapshot(self.db.table(&self.relation).map_err(db_err)?);
        self.detector = seed_incremental(&snap, &cfds)?;
        self.cfds = cfds;
        Ok(())
    }

    /// Apply one update; returns the effect on data quality. Both derived
    /// structures — the incremental detector and the columnar snapshot —
    /// are maintained in lock-step with the mutation.
    pub fn apply(&mut self, update: Mutation) -> CfdResult<UpdateOutcome> {
        let affected = match update {
            Update::Insert(values) => {
                let id = self.db.insert_row(&self.relation, values).map_err(db_err)?;
                let table = self.db.table(&self.relation).map_err(db_err)?;
                let row: Vec<Value> = table.get(id).map_err(db_err)?.to_vec();
                self.snapshots.note_insert(table, id);
                self.detector.insert(id, &row);
                Some(id)
            }
            Update::Delete(id) => {
                let old = self.db.delete_row(&self.relation, id).map_err(db_err)?;
                let table = self.db.table(&self.relation).map_err(db_err)?;
                self.snapshots.note_delete(table, id);
                self.detector.delete(id, &old);
                None
            }
            Update::SetCell { row, col, value } => {
                let before = self.row_values(row)?;
                self.db
                    .update_cell(&self.relation, row, col, value)
                    .map_err(db_err)?;
                let table = self.db.table(&self.relation).map_err(db_err)?;
                let after: Vec<Value> = table.get(row).map_err(db_err)?.to_vec();
                self.snapshots.note_set_cell(table, row, col);
                self.detector.update(row, &before, &after);
                Some(row)
            }
        };

        let mut repairs = 0usize;
        if self.mode == MonitorMode::RepairOnArrival {
            if let Some(id) = affected {
                if self.detector.vio_of(id) > 0 {
                    let result = incremental_repair(
                        &mut self.db,
                        &self.relation,
                        &self.cfds,
                        &[id],
                        &self.repair_cfg,
                    )?;
                    repairs = result.changes.len();
                    // Replay the repair into the snapshot: one cell patch
                    // per applied change (the table advanced exactly one
                    // epoch per change).
                    let cells: Vec<(RowId, usize)> =
                        result.changes.iter().map(|c| (c.row, c.col)).collect();
                    let table = self.db.table(&self.relation).map_err(db_err)?;
                    self.snapshots.note_set_cells(table, &cells);
                    // Replay the repair into the detector: reconstruct each
                    // touched row's pre-repair state (earliest `old` per
                    // cell wins) and apply a single update per row.
                    let mut touched: Vec<RowId> = result.changes.iter().map(|c| c.row).collect();
                    touched.sort();
                    touched.dedup();
                    for row in touched {
                        let after = self.row_values(row)?;
                        let mut before = after.clone();
                        for c in result.changes.iter().rev().filter(|c| c.row == row) {
                            before[c.col] = c.old.clone();
                        }
                        self.detector.update(row, &before, &after);
                    }
                }
            }
        }
        Ok(UpdateOutcome {
            row: affected,
            violations: self.detector.total_violations(),
            repairs,
        })
    }

    fn row_values(&self, id: RowId) -> CfdResult<Vec<Value>> {
        Ok(self
            .db
            .table(&self.relation)
            .map_err(db_err)?
            .get(id)
            .map_err(db_err)?
            .to_vec())
    }
}

/// The unified-API view of the streaming monitor: every trait mutation is
/// one [`DataMonitor::apply`], so incremental detection (and, in
/// [`MonitorMode::RepairOnArrival`], on-arrival repair) runs per update —
/// the batch entry point deliberately keeps the per-update semantics and
/// uses the trait's one-by-one loop.
impl QualityBackend for DataMonitor {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            backend: "data-monitor".into(),
            repair: false,
            streaming: true,
            shards: 1,
            metrics: true,
            trace: true,
        }
    }

    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        self.set_cfds(parse_cfds(text)?)?;
        Ok(self.cfds.len())
    }

    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        let out = self.apply(Mutation::Insert(row))?;
        out.row
            .ok_or_else(|| CfdError::Malformed("insert did not yield a row".into()))
    }

    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        let old = self.row_values(row)?;
        self.apply(Mutation::Delete(row))?;
        Ok(old)
    }

    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let old = self
            .db
            .table(&self.relation)
            .map_err(db_err)?
            .cell(row, col)
            .map_err(db_err)?
            .clone();
        self.apply(Mutation::SetCell { row, col, value })?;
        Ok(old)
    }

    fn detect(&mut self) -> CfdResult<ViolationReport> {
        DataMonitor::detect(self)
    }

    fn audit(&mut self) -> CfdResult<QualityReport> {
        let report = self.detector.report();
        quality_report(
            self.db.table(&self.relation).map_err(db_err)?,
            &self.cfds,
            &report,
        )
    }

    fn last_report(&self) -> Option<ViolationReport> {
        // The incremental state is always current: the monitor's report
        // *is* its live view.
        Some(self.detector.report())
    }

    fn len(&self) -> usize {
        self.db.table(&self.relation).map(|t| t.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_customers, CustomerConfig};
    use detect::detect_native;

    fn clean_db(rows: usize) -> (Database, Vec<Cfd>) {
        let t = generate_customers(&CustomerConfig {
            rows,
            ..CustomerConfig::default()
        });
        let mut db = Database::new();
        db.register_table(t);
        (db, datagen::canonical_cfds())
    }

    fn dirty_insert(db: &Database) -> Vec<Value> {
        let donor: Vec<Value> = db
            .table("customer")
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .1
            .to_vec();
        let mut row = donor;
        row[2] = Value::str("WRONGCITY");
        row
    }

    #[test]
    fn detect_only_mode_tracks_violations() {
        let (db, cfds) = clean_db(100);
        let mut m = DataMonitor::new(db, "customer", cfds, MonitorMode::DetectOnly).unwrap();
        assert_eq!(m.violations(), 0);
        let row = dirty_insert(m.database());
        let out = m.apply(Update::Insert(row)).unwrap();
        assert!(out.violations > 0);
        assert_eq!(out.repairs, 0);
        // Deleting the offending row restores cleanliness.
        let id = out.row.unwrap();
        let out = m.apply(Update::Delete(id)).unwrap();
        assert_eq!(out.violations, 0);
    }

    #[test]
    fn repair_mode_fixes_dirty_arrivals() {
        let (db, cfds) = clean_db(100);
        let mut m =
            DataMonitor::new(db, "customer", cfds.clone(), MonitorMode::RepairOnArrival).unwrap();
        let row = dirty_insert(m.database());
        let out = m.apply(Update::Insert(row)).unwrap();
        assert_eq!(out.violations, 0, "arrival must be repaired");
        assert!(out.repairs > 0);
        // Cross-check against batch detection.
        let batch = detect_native(m.database().table("customer").unwrap(), &cfds).unwrap();
        assert!(batch.is_empty());
    }

    #[test]
    fn cell_updates_flow_through_the_monitor() {
        let (db, cfds) = clean_db(80);
        let ids = db.table("customer").unwrap().row_ids();
        let mut m = DataMonitor::new(db, "customer", cfds, MonitorMode::DetectOnly).unwrap();
        // Corrupt CNT of an existing row.
        let out = m
            .apply(Update::SetCell {
                row: ids[0],
                col: 1,
                value: Value::str("XX"),
            })
            .unwrap();
        assert!(out.violations > 0);
        assert!(m.vio_of(ids[0]) > 0);
    }

    #[test]
    fn snapshot_stays_in_lock_step_with_update_stream() {
        let (db, cfds) = clean_db(60);
        let ids = db.table("customer").unwrap().row_ids();
        let mut m =
            DataMonitor::new(db, "customer", cfds.clone(), MonitorMode::DetectOnly).unwrap();
        assert_eq!(m.snapshot_encodes(), 1, "construction encodes once");
        // A mixed stream: dirty insert, corrupting update, delete.
        let row = dirty_insert(m.database());
        let out = m.apply(Update::Insert(row)).unwrap();
        m.apply(Update::SetCell {
            row: ids[3],
            col: 2,
            value: Value::str("ELSEWHERE"),
        })
        .unwrap();
        m.apply(Update::Delete(out.row.unwrap())).unwrap();
        // Snapshot-backed detection agrees with the incremental state and
        // with batch detection, with zero further encodes.
        let snap_report = m.detect().unwrap().normalized();
        assert_eq!(snap_report, m.report().normalized());
        let batch = detect_native(m.database().table("customer").unwrap(), &cfds)
            .unwrap()
            .normalized();
        assert_eq!(snap_report, batch);
        assert_eq!(
            m.snapshot_encodes(),
            1,
            "stream was patched, not re-encoded"
        );
    }

    #[test]
    fn repair_on_arrival_keeps_snapshot_synced() {
        let (db, cfds) = clean_db(80);
        let mut m =
            DataMonitor::new(db, "customer", cfds.clone(), MonitorMode::RepairOnArrival).unwrap();
        for _ in 0..3 {
            let row = dirty_insert(m.database());
            let out = m.apply(Update::Insert(row)).unwrap();
            assert_eq!(out.violations, 0);
            assert!(out.repairs > 0, "repair-on-arrival fixed the insert");
        }
        // The repair edits were replayed into the snapshot: detection over
        // it is clean and never re-encoded.
        assert!(m.detect().unwrap().is_empty());
        assert_eq!(m.snapshot_encodes(), 1);
    }

    #[test]
    fn monitor_report_matches_batch() {
        let (db, cfds) = clean_db(60);
        let mut m =
            DataMonitor::new(db, "customer", cfds.clone(), MonitorMode::DetectOnly).unwrap();
        for _ in 0..3 {
            let row = dirty_insert(m.database());
            m.apply(Update::Insert(row)).unwrap();
        }
        let inc = m.report().normalized();
        let batch = detect_native(m.database().table("customer").unwrap(), &cfds)
            .unwrap()
            .normalized();
        assert_eq!(inc, batch);
    }
}
