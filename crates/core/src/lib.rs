//! # semandaq-core — the assembled Semandaq system
//!
//! Wires the six components of the paper's architecture (Fig. 1) into one
//! facade over the [`minidb`] substrate:
//!
//! * [`engine::ConstraintEngine`] — CFD registration with a consistency
//!   gate, relational tableau storage, minimal-cover reduction;
//! * [`server::QualityServer`] — error detection (SQL / native /
//!   parallel), auditing (report + quality map), exploration hooks,
//!   cleansing, constraint discovery;
//! * [`monitor::DataMonitor`] — incremental detection or
//!   repair-on-arrival under an update stream.
//!
//! ```
//! use datagen::dirty_customers;
//! use semandaq_core::{QualityServer, ServerConfig};
//!
//! let d = dirty_customers(100, 0.05, 1);
//! let mut server = QualityServer::new(d.db, "customer").unwrap();
//! server.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
//! let report = server.detect().unwrap();
//! assert!(!report.is_empty());
//! let repair = server.repair().unwrap();
//! assert!(repair.residual.is_empty());
//! assert!(server.detect().unwrap().is_empty());
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod monitor;
pub mod server;

pub use engine::ConstraintEngine;
pub use monitor::{DataMonitor, MonitorMode, Update, UpdateOutcome};
pub use server::{DetectorKind, QualityServer, ServerConfig};
