//! The Constraint Engine (Fig. 1): manages the CFD set, stores tableaux
//! relationally inside the database, and runs the static analyses —
//! consistency on registration ("users are informed whether the specified
//! set of CFDs makes sense") and optional minimal-cover reduction.

use cfd::cover::minimal_cover;
use cfd::dependency::group_into_tableaux;
use cfd::encode::encode_tableau;
use cfd::parse::parse_cfds;
use cfd::satisfiability::check_consistency;
use cfd::{Cfd, CfdError, CfdResult, Consistency, DomainSpec};
use minidb::Database;

/// Prefix for the relational tableau storage tables.
pub const TABLEAU_PREFIX: &str = "__cfd_tableau_";

/// The constraint engine: the registered CFD set plus analysis state.
#[derive(Debug, Clone, Default)]
pub struct ConstraintEngine {
    cfds: Vec<Cfd>,
    domains: DomainSpec,
    /// Verdict from the last consistency check.
    last_verdict: Option<bool>,
}

impl ConstraintEngine {
    /// Empty engine with all-infinite domains.
    pub fn new() -> ConstraintEngine {
        ConstraintEngine::default()
    }

    /// Declare attribute domains used by the static analyses.
    pub fn with_domains(mut self, domains: DomainSpec) -> ConstraintEngine {
        self.domains = domains;
        self
    }

    /// The registered constraints.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Register CFDs from the textual notation; the whole set (old + new)
    /// is consistency-checked and registration is **rejected** if the
    /// result is unsatisfiable.
    pub fn register_text(&mut self, text: &str) -> CfdResult<Consistency> {
        let new = parse_cfds(text)?;
        self.register(new)
    }

    /// Register parsed CFDs with the same consistency gate.
    pub fn register(&mut self, new: Vec<Cfd>) -> CfdResult<Consistency> {
        let mut candidate = self.cfds.clone();
        candidate.extend(new);
        let verdict = check_consistency(&candidate, &self.domains)?;
        if verdict.is_consistent() {
            self.cfds = candidate;
            self.last_verdict = Some(true);
        } else {
            self.last_verdict = Some(false);
        }
        Ok(verdict)
    }

    /// Replace the constraint set with its minimal cover.
    pub fn reduce_to_cover(&mut self) -> CfdResult<usize> {
        let before = self.cfds.len();
        self.cfds = minimal_cover(&self.cfds, &self.domains)?;
        Ok(before - self.cfds.len())
    }

    /// Re-run the consistency check on demand.
    pub fn check(&mut self) -> CfdResult<Consistency> {
        let v = check_consistency(&self.cfds, &self.domains)?;
        self.last_verdict = Some(v.is_consistent());
        Ok(v)
    }

    /// Store the pattern tableaux relationally in `db` (tables named
    /// `__cfd_tableau_{i}`), mirroring [3]'s relational representation.
    /// Returns the created table names.
    pub fn store_tableaux(&self, db: &mut Database, relation: &str) -> CfdResult<Vec<String>> {
        let schema = db
            .table(relation)
            .map_err(|e| CfdError::Malformed(e.to_string()))?
            .schema()
            .clone();
        let mut names = Vec::new();
        for (i, t) in group_into_tableaux(&self.cfds).iter().enumerate() {
            let name = format!("{TABLEAU_PREFIX}{i}");
            db.register_table(encode_tableau(&name, t, &schema)?);
            names.push(name);
        }
        Ok(names)
    }

    /// Number of registered CFDs.
    pub fn len(&self) -> usize {
        self.cfds.len()
    }

    /// True if no CFDs are registered.
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_gates_on_consistency() {
        let mut e = ConstraintEngine::new();
        let v = e
            .register_text("customer: [CC='44'] -> [CNT='UK']")
            .unwrap();
        assert!(v.is_consistent());
        assert_eq!(e.len(), 1);
        // An addition that makes the set unsatisfiable is rejected.
        let v = e
            .register_text("customer: [A=_] -> [B='1']\ncustomer: [A=_] -> [B='2']")
            .unwrap();
        assert!(!v.is_consistent());
        assert_eq!(e.len(), 1, "inconsistent batch must not be adopted");
    }

    #[test]
    fn cover_reduction_removes_redundancy() {
        let mut e = ConstraintEngine::new();
        e.register_text(
            "r: [A] -> [B]\n\
             r: [B] -> [C]\n\
             r: [A] -> [C]",
        )
        .unwrap();
        let removed = e.reduce_to_cover().unwrap();
        assert_eq!(removed, 1);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn tableaux_are_stored_relationally() {
        let mut e = ConstraintEngine::new();
        e.register_text(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CC='44'] -> [CNT='UK']\n\
             customer: [CC=_] -> [CNT=_]",
        )
        .unwrap();
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        let names = e.store_tableaux(&mut db, "customer").unwrap();
        assert_eq!(names.len(), 2); // (CNT,ZIP)->CITY and CC->CNT
                                    // The CC → CNT tableau holds both pattern rows, queryable via SQL.
        let rows = db
            .query(&format!("SELECT COUNT(*) AS n FROM {}", &names[1]))
            .unwrap();
        let n = rows.get(0, "n").unwrap().as_int().unwrap();
        assert!(n == 2 || n == 1);
        let total: i64 = names
            .iter()
            .map(|t| {
                db.query(&format!("SELECT COUNT(*) AS n FROM {t}"))
                    .unwrap()
                    .get(0, "n")
                    .unwrap()
                    .as_int()
                    .unwrap()
            })
            .sum();
        assert_eq!(total, 3);
    }
}
