//! The data quality server: one facade wiring the six components of Fig. 1
//! over a [`minidb::Database`].

use std::sync::Arc;

use api::{BatchOutcome, Capabilities, Mutation, MutationBatch, QualityBackend, RepairSummary};
use audit::{quality_map, quality_report, QualityMap, QualityReport};
use cfd::{CfdError, CfdResult, Consistency};
use colstore::{detect_cached_threads, ChunkStore, MemChunkStore, SnapshotCache, TableDelta};
use detect::{detect_native, detect_parallel, detect_sql, ViolationReport};
use discovery::{mine_constant_cfds, mine_variable_cfds, CtaneConfig, MinerConfig};
use explore::{inspect_tuple, CfdRelevance, NavigationSession, ReviewSession};
use minidb::{Database, DbError, RowId, Schema, Table, Value};
use repair::{batch_repair_with_cache, RepairConfig, RepairResult};

use crate::engine::ConstraintEngine;

fn db_err(e: DbError) -> CfdError {
    CfdError::Malformed(e.to_string())
}

/// Which detection engine the server uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// SQL-generated queries executed on the embedded engine (the paper's
    /// code path).
    Sql,
    /// Direct hash-based detection.
    Native,
    /// Native detection parallelized across CFDs.
    Parallel {
        /// Worker threads.
        threads: usize,
    },
    /// Columnar detection over a cached, epoch-versioned snapshot: the
    /// first detect encodes, repeat detects on an unchanged table do zero
    /// encode work, and a repair pass patches the snapshot in lock-step
    /// (the fastest engine at scale; see `colstore::lifecycle`).
    Columnar,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Detection engine.
    pub detector: DetectorKind,
    /// Repair configuration.
    pub repair: RepairConfig,
    /// Worker threads for the columnar detector's morsel pool. `None`
    /// resolves through `SDQ_DETECT_THREADS`, then the machine's available
    /// parallelism; `Some(1)` pins the exact serial path.
    pub detect_threads: Option<usize>,
    /// Snapshot-cache delta threshold (fraction of rows patched before a
    /// full rebuild); `None` keeps the cache default.
    pub delta_threshold: Option<f64>,
    /// Enable request-scoped tracing (`obs::trace`) process-wide. The
    /// flag is sticky — `true` turns the (global) tracing layer on,
    /// `false` leaves whatever `SDQ_TRACE` / a sibling component chose.
    pub tracing: bool,
    /// Resident-byte budget for the columnar snapshot cache. When set,
    /// sealed snapshot chunks beyond the budget spill to `spill_store`
    /// (oldest chunks first) and detect faults them back page-at-a-time —
    /// a detect over a table ~10× the budget completes in budget-bounded
    /// residency. `None` keeps every chunk resident.
    pub mem_budget: Option<usize>,
    /// Where spilled chunks go. `None` with a budget set falls back to an
    /// in-memory store ([`MemChunkStore`] — residency accounting without
    /// disk I/O); the service tier passes a `durable::PagedStore` here.
    pub spill_store: Option<Arc<dyn ChunkStore>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            // Columnar is the fastest engine at every measured scale
            // (BENCH_detection.json); the paper's SQL path stays one
            // `with_config` away.
            detector: DetectorKind::Columnar,
            repair: RepairConfig::default(),
            detect_threads: None,
            delta_threshold: None,
            tracing: false,
            mem_budget: None,
            spill_store: None,
        }
    }
}

impl ServerConfig {
    /// The default configuration with the environment knobs applied:
    /// `SDQ_MEM_BUDGET` (a byte size like `64m`) bounds snapshot
    /// residency, `SDQ_TRACE` turns request tracing on. Detection threads
    /// resolve through `SDQ_DETECT_THREADS` lazily, as always.
    pub fn from_env() -> ServerConfig {
        ServerConfig {
            mem_budget: obs::env::bytes("SDQ_MEM_BUDGET"),
            tracing: obs::env::flag("SDQ_TRACE").unwrap_or(false),
            ..ServerConfig::default()
        }
    }
}

/// The assembled Semandaq system for one relation.
pub struct QualityServer {
    /// The underlying database (public for power users; the server's
    /// methods keep detector state coherent).
    db: Database,
    relation: String,
    engine: ConstraintEngine,
    config: ServerConfig,
    last_report: Option<ViolationReport>,
    /// Epoch-versioned columnar snapshot of the audited relation, shared by
    /// `detect()` (under `DetectorKind::Columnar`) and `repair()`.
    snapshots: SnapshotCache,
}

impl QualityServer {
    /// Create a server over an existing database and target relation.
    pub fn new(db: Database, relation: &str) -> CfdResult<QualityServer> {
        db.table(relation).map_err(db_err)?;
        Ok(QualityServer {
            db,
            relation: relation.to_string(),
            engine: ConstraintEngine::new(),
            config: ServerConfig::default(),
            last_report: None,
            snapshots: SnapshotCache::new(),
        })
    }

    /// Create a server by importing CSV text ("connecting" a data source).
    pub fn from_csv(name: &str, schema: Schema, csv_text: &str) -> CfdResult<QualityServer> {
        let table = minidb::csv::table_from_csv(name, schema, csv_text).map_err(db_err)?;
        let mut db = Database::new();
        db.register_table(table);
        QualityServer::new(db, name)
    }

    /// Adjust the configuration.
    pub fn with_config(mut self, config: ServerConfig) -> QualityServer {
        if let Some(t) = config.delta_threshold {
            self.snapshots = std::mem::take(&mut self.snapshots).with_delta_threshold(t);
        }
        if let Some(budget) = config.mem_budget {
            let store = config
                .spill_store
                .clone()
                .unwrap_or_else(MemChunkStore::shared);
            self.snapshots = std::mem::take(&mut self.snapshots).with_spill(store, budget);
        }
        if config.tracing {
            obs::trace::set_enabled(true);
        }
        self.config = config;
        self
    }

    /// Sealed snapshot chunks this server's cache has evicted to the
    /// spill store (0 without a `mem_budget`).
    pub fn spilled_chunks(&self) -> u64 {
        self.snapshots.spilled_chunks()
    }

    /// The constraint engine.
    pub fn engine(&self) -> &ConstraintEngine {
        &self.engine
    }

    /// Mutable access to the constraint engine.
    pub fn engine_mut(&mut self) -> &mut ConstraintEngine {
        &mut self.engine
    }

    /// The database (read access).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The audited relation.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The audited table.
    pub fn table(&self) -> CfdResult<&Table> {
        self.db.table(&self.relation).map_err(db_err)
    }

    /// Register CFDs (textual notation); rejected if inconsistent.
    pub fn register_cfds(&mut self, text: &str) -> CfdResult<Consistency> {
        self.last_report = None;
        self.engine.register_text(text)
    }

    // --------------------------------------------------------- mutations
    //
    // The server's first-class mutation surface. Every write patches the
    // snapshot cache in lock-step with the table — mutating through these
    // methods (rather than behind the server's back via a database handle)
    // is what keeps the columnar detect path encode-free in steady state.

    /// Insert a row into the audited relation; returns its id. The cached
    /// snapshot is patched, not invalidated.
    pub fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        let id = self.db.insert_row(&self.relation, row).map_err(db_err)?;
        let table = self.db.table(&self.relation).map_err(db_err)?;
        self.snapshots.note_insert(table, id);
        self.last_report = None;
        Ok(id)
    }

    /// Delete a row from the audited relation; returns its former values.
    pub fn delete(&mut self, id: RowId) -> CfdResult<Vec<Value>> {
        let old = self.db.delete_row(&self.relation, id).map_err(db_err)?;
        let table = self.db.table(&self.relation).map_err(db_err)?;
        self.snapshots.note_delete(table, id);
        self.last_report = None;
        Ok(old)
    }

    /// Overwrite one cell of the audited relation; returns the previous
    /// value.
    pub fn update_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let old = self
            .db
            .update_cell(&self.relation, id, col, value)
            .map_err(db_err)?;
        let table = self.db.table(&self.relation).map_err(db_err)?;
        self.snapshots.note_set_cell(table, id, col);
        self.last_report = None;
        Ok(old)
    }

    /// Apply a whole mutation batch in one pass: the table mutations are
    /// applied in order, then the snapshot cache replays them as a single
    /// batch ([`SnapshotCache::note_batch`]) — one epoch-gap check and one
    /// copy-on-write pass per touched column instead of per-row
    /// bookkeeping. On a failed mutation the applied prefix stays applied
    /// (and stays patched); the error is returned.
    pub fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        let mut outcome = BatchOutcome::default();
        let mut deltas: Vec<TableDelta> = Vec::with_capacity(batch.len());
        let mut failed: Option<CfdError> = None;
        for m in batch.mutations {
            let applied = match m {
                Mutation::Insert(row) => self.db.insert_row(&self.relation, row).map(|id| {
                    outcome.inserted.push(id);
                    deltas.push(TableDelta::Inserted(id));
                }),
                Mutation::Delete(id) => self.db.delete_row(&self.relation, id).map(|_| {
                    deltas.push(TableDelta::Deleted(id));
                }),
                Mutation::SetCell { row, col, value } => self
                    .db
                    .update_cell(&self.relation, row, col, value)
                    .map(|_| {
                        deltas.push(TableDelta::CellSet(row, col));
                    }),
            };
            match applied {
                Ok(()) => outcome.applied += 1,
                Err(e) => {
                    failed = Some(db_err(e));
                    break;
                }
            }
        }
        let table = self.db.table(&self.relation).map_err(db_err)?;
        self.snapshots.note_batch(table, &deltas);
        self.last_report = None;
        match failed {
            None => Ok(outcome),
            Some(e) => Err(e),
        }
    }

    /// Discover constraints from the current data (treated as reference
    /// data) and register the consistent result: constant rules first,
    /// then variable rules.
    pub fn discover_constraints(
        &mut self,
        miner: &MinerConfig,
        ctane: &CtaneConfig,
    ) -> CfdResult<usize> {
        let table = self.table()?;
        let mut rules: Vec<cfd::Cfd> = mine_constant_cfds(table, miner)
            .into_iter()
            .map(|d| d.cfd)
            .collect();
        rules.extend(mine_variable_cfds(table, ctane).into_iter().map(|d| d.cfd));
        let n = rules.len();
        self.engine.register(rules)?;
        self.last_report = None;
        Ok(n)
    }

    /// Run the error detector; caches and returns the report.
    ///
    /// Under [`DetectorKind::Columnar`] the snapshot is cached across
    /// calls, keyed by the table's mutation epoch: repeat detects on an
    /// unchanged table perform zero snapshot encodes, and a `repair()`
    /// in between patches the snapshot instead of invalidating it.
    pub fn detect(&mut self) -> CfdResult<ViolationReport> {
        let cfds = self.engine.cfds().to_vec();
        let report = match self.config.detector {
            DetectorKind::Sql => detect_sql(&mut self.db, &self.relation, &cfds)?,
            DetectorKind::Native => detect_native(self.table()?, &cfds)?,
            DetectorKind::Parallel { threads } => detect_parallel(self.table()?, &cfds, threads)?,
            DetectorKind::Columnar => {
                // Disjoint field borrows: the cache is written while the
                // database is only read.
                let table = self.db.table(&self.relation).map_err(db_err)?;
                let threads = colstore::morsel::resolve_threads(self.config.detect_threads);
                detect_cached_threads(&mut self.snapshots, table, &cfds, threads)?
            }
        };
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// Number of full snapshot encodes the columnar path has performed —
    /// the steady-state probe (repeat detects on an unchanged table must
    /// not increase it).
    pub fn snapshot_encodes(&self) -> u64 {
        self.snapshots.encodes()
    }

    /// The cached detection report, if any.
    pub fn last_report(&self) -> Option<&ViolationReport> {
        self.last_report.as_ref()
    }

    fn require_report(&mut self) -> CfdResult<ViolationReport> {
        match &self.last_report {
            Some(r) => Ok(r.clone()),
            None => self.detect(),
        }
    }

    /// Data auditor: the Fig. 4 quality report.
    pub fn audit(&mut self) -> CfdResult<QualityReport> {
        let report = self.require_report()?;
        quality_report(self.table()?, self.engine.cfds(), &report)
    }

    /// Data auditor: the Fig. 3 quality map.
    pub fn map(&mut self) -> CfdResult<QualityMap> {
        let report = self.require_report()?;
        Ok(quality_map(self.table()?, &report))
    }

    /// Data explorer: open the Fig. 2 navigation over the cached report.
    /// (Runs detection first if needed.)
    pub fn navigate(&mut self) -> CfdResult<(ViolationReport, Vec<cfd::Cfd>)> {
        let report = self.require_report()?;
        Ok((report, self.engine.cfds().to_vec()))
    }

    /// Convenience for examples/tests: build a navigation session over
    /// caller-held report and constraints (borrow rules make the server
    /// unable to hand out a self-borrowing session).
    pub fn navigation<'a>(
        table: &'a Table,
        cfds: &'a [cfd::Cfd],
        report: &'a ViolationReport,
    ) -> CfdResult<NavigationSession<'a>> {
        NavigationSession::new(table, cfds, report)
    }

    /// Data explorer: reverse inspection of one tuple.
    pub fn inspect(&mut self, row: RowId) -> CfdResult<Vec<CfdRelevance>> {
        let report = self.require_report()?;
        inspect_tuple(self.table()?, self.engine.cfds(), &report, row)
    }

    /// Data cleanser: run batch repair; invalidates the cached report.
    ///
    /// The repair loop shares the server's snapshot cache: its per-round
    /// detection rides the patched snapshot, and on return the cache is
    /// synced to the repaired table — a following columnar `detect()`
    /// pays zero encode work.
    pub fn repair(&mut self) -> CfdResult<RepairResult> {
        let cfds = self.engine.cfds().to_vec();
        let mut cfg = self.config.repair.clone();
        // One worker knob drives detection and repair alike unless the
        // repair config pins its own count.
        if cfg.threads.is_none() {
            cfg.threads = self.config.detect_threads;
        }
        let result = batch_repair_with_cache(
            &mut self.db,
            &self.relation,
            &cfds,
            &cfg,
            &mut self.snapshots,
        )?;
        self.last_report = None;
        Ok(result)
    }

    /// Open a cleansing review session (Fig. 5) over a repair result.
    pub fn review<'a>(
        &'a mut self,
        changes: &[repair::CellChange],
    ) -> CfdResult<ReviewSession<'a>> {
        let cfds = self.engine.cfds().to_vec();
        self.last_report = None; // review edits the data
        ReviewSession::new(&mut self.db, &self.relation, &cfds, changes)
    }

    /// Store the engine's pattern tableaux relationally in the server's
    /// own database (see [`ConstraintEngine::store_tableaux`]).
    pub fn store_tableaux(&mut self) -> CfdResult<Vec<String>> {
        // Disjoint field borrows: the engine is read while the database is
        // written, no clone needed.
        self.engine.store_tableaux(&mut self.db, &self.relation)
    }

    /// Hand the server's parts to a [`crate::monitor::DataMonitor`].
    pub fn into_parts(self) -> (Database, String, Vec<cfd::Cfd>) {
        (self.db, self.relation, self.engine.cfds().to_vec())
    }
}

/// The unified-API view of the single-node server. Inherent methods with
/// richer return types (the [`Consistency`] verdict of `register_cfds`,
/// the borrowed `last_report`, the full [`RepairResult`] of `repair`)
/// stay available on the concrete type; `dyn QualityBackend` callers get
/// the wire-friendly forms.
impl QualityBackend for QualityServer {
    fn capabilities(&self) -> Capabilities {
        Capabilities {
            backend: "quality-server".into(),
            repair: true,
            streaming: false,
            shards: 1,
            metrics: true,
            trace: true,
        }
    }

    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        let verdict = QualityServer::register_cfds(self, text)?;
        if !verdict.is_consistent() {
            return Err(CfdError::Malformed(
                "CFD set rejected: unsatisfiable together with the registered rules".into(),
            ));
        }
        Ok(self.engine.len())
    }

    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        QualityServer::insert(self, row)
    }

    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        QualityServer::delete(self, row)
    }

    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        QualityServer::update_cell(self, row, col, value)
    }

    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        QualityServer::apply_batch(self, batch)
    }

    fn detect(&mut self) -> CfdResult<ViolationReport> {
        QualityServer::detect(self)
    }

    fn audit(&mut self) -> CfdResult<QualityReport> {
        QualityServer::audit(self)
    }

    fn last_report(&self) -> Option<ViolationReport> {
        self.last_report.clone()
    }

    fn len(&self) -> usize {
        self.table().map(Table::len).unwrap_or(0)
    }

    fn repair(&mut self) -> CfdResult<RepairSummary> {
        let r = QualityServer::repair(self)?;
        Ok(RepairSummary {
            changes: r.changes.len(),
            iterations: r.iterations,
            total_cost: r.total_cost,
            residual: r.residual.len(),
        })
    }

    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        Ok(self
            .table()?
            .iter()
            .map(|(id, row)| (id, row.to_vec()))
            .collect())
    }

    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        self.db
            .table_mut(&self.relation)
            .map_err(db_err)?
            .insert_at(id, row)
            .map_err(db_err)?;
        let table = self.db.table(&self.relation).map_err(db_err)?;
        self.snapshots.note_insert(table, id);
        self.last_report = None;
        Ok(())
    }

    fn next_row_id(&self) -> CfdResult<u64> {
        Ok(self.table()?.arena_size() as u64)
    }

    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        self.db
            .table_mut(&self.relation)
            .map_err(db_err)?
            .reserve(next);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dirty_customers;

    fn server(rows: usize, noise: f64, seed: u64) -> QualityServer {
        let d = dirty_customers(rows, noise, seed);
        let mut s = QualityServer::new(d.db, "customer").unwrap();
        s.register_cfds(datagen::customer::CANONICAL_CFDS).unwrap();
        s
    }

    #[test]
    fn end_to_end_detect_audit_repair() {
        let mut s = server(200, 0.05, 71);
        let report = s.detect().unwrap();
        assert!(!report.is_empty());
        let audit = s.audit().unwrap();
        assert!(audit.dirty_fraction() > 0.0);
        let repair = s.repair().unwrap();
        assert!(repair.residual.is_empty());
        let after = s.detect().unwrap();
        assert!(after.is_empty());
        let audit2 = s.audit().unwrap();
        assert_eq!(audit2.dirty_fraction(), 0.0);
    }

    #[test]
    fn sql_and_native_detectors_agree_via_config() {
        let mut s1 = server(150, 0.06, 72).with_config(ServerConfig {
            detector: DetectorKind::Sql,
            ..ServerConfig::default()
        });
        let mut s2 = server(150, 0.06, 72).with_config(ServerConfig {
            detector: DetectorKind::Native,
            ..ServerConfig::default()
        });
        let a = s1.detect().unwrap().normalized();
        let b = s2.detect().unwrap().normalized();
        assert_eq!(a, b);
    }

    #[test]
    fn columnar_detector_agrees_via_config() {
        let mut s1 = server(200, 0.06, 75).with_config(ServerConfig {
            detector: DetectorKind::Native,
            ..ServerConfig::default()
        });
        let mut s2 = server(200, 0.06, 75).with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
        let a = s1.detect().unwrap().normalized();
        let b = s2.detect().unwrap().normalized();
        assert_eq!(a, b);
    }

    #[test]
    fn repeat_detects_on_unchanged_table_encode_one_snapshot() {
        let mut s = server(200, 0.06, 78).with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
        let a = s.detect().unwrap().normalized();
        assert_eq!(s.snapshot_encodes(), 1, "first detect pays the encode");
        let b = s.detect().unwrap().normalized();
        assert_eq!(
            s.snapshot_encodes(),
            1,
            "second detect on an unchanged table must do zero encode work"
        );
        assert_eq!(a, b);
        // Audit/map/inspect ride the cached report and stay encode-free too.
        s.audit().unwrap();
        s.map().unwrap();
        assert_eq!(s.snapshot_encodes(), 1);
    }

    #[test]
    fn repair_patches_the_server_snapshot_instead_of_invalidating() {
        let mut s = server(200, 0.05, 79).with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
        assert!(!s.detect().unwrap().is_empty());
        let encodes_before_repair = s.snapshot_encodes();
        let repair = s.repair().unwrap();
        assert!(repair.residual.is_empty());
        assert_eq!(
            s.snapshot_encodes(),
            encodes_before_repair,
            "repair rounds ride the patched snapshot"
        );
        assert!(s.detect().unwrap().is_empty());
        assert_eq!(
            s.snapshot_encodes(),
            encodes_before_repair,
            "post-repair detect reuses the repair-synced snapshot"
        );
    }

    #[test]
    fn columnar_pipeline_detect_audit_repair() {
        let mut s = server(150, 0.05, 76).with_config(ServerConfig {
            detector: DetectorKind::Columnar,
            ..ServerConfig::default()
        });
        assert!(!s.detect().unwrap().is_empty());
        let repair = s.repair().unwrap();
        assert!(repair.residual.is_empty());
        assert!(s.detect().unwrap().is_empty());
    }

    #[test]
    fn first_class_mutations_patch_the_snapshot() {
        // Default config is Columnar now: mutations through the server's
        // own surface must keep the cached snapshot in lock-step.
        let mut s = server(200, 0.0, 80);
        assert!(s.detect().unwrap().is_empty());
        assert_eq!(s.snapshot_encodes(), 1);
        let donor: Vec<Value> = s.table().unwrap().iter().next().unwrap().1.to_vec();
        let mut bad = donor.clone();
        bad[2] = Value::str("WRONGCITY");
        let id = s.insert(bad).unwrap();
        assert!(!s.detect().unwrap().is_empty(), "insert surfaced");
        let old = s.update_cell(id, 2, donor[2].clone()).unwrap();
        assert_eq!(old, Value::str("WRONGCITY"));
        assert!(s.detect().unwrap().is_empty(), "update surfaced");
        s.delete(id).unwrap();
        assert!(s.detect().unwrap().is_empty());
        assert_eq!(
            s.snapshot_encodes(),
            1,
            "server mutations patch the snapshot, never re-encode"
        );
    }

    #[test]
    fn batched_and_per_row_mutations_agree() {
        let mut batched = server(150, 0.05, 81);
        let mut stepped = server(150, 0.05, 81);
        let donor: Vec<Value> = batched.table().unwrap().iter().next().unwrap().1.to_vec();
        let ids = batched.table().unwrap().row_ids();
        let muts = vec![
            Mutation::Insert(donor.clone()),
            Mutation::SetCell {
                row: ids[3],
                col: 2,
                value: Value::str("ELSEWHERE"),
            },
            Mutation::Delete(ids[7]),
        ];
        for m in muts.clone() {
            api::apply_mutation(&mut stepped, m).unwrap();
        }
        let out = batched.apply_batch(muts.into()).unwrap();
        assert_eq!(out.applied, 3);
        assert_eq!(
            batched.detect().unwrap().normalized(),
            stepped.detect().unwrap().normalized()
        );
    }

    #[test]
    fn store_tableaux_without_engine_clone() {
        let mut s = server(50, 0.0, 77);
        let names = s.store_tableaux().unwrap();
        assert!(!names.is_empty());
        for n in &names {
            assert!(s.database().table(n).is_ok(), "tableau table {n} exists");
        }
    }

    #[test]
    fn discovery_from_clean_reference_data() {
        let d = dirty_customers(400, 0.0, 73);
        let mut s = QualityServer::new(d.db, "customer").unwrap();
        let n = s
            .discover_constraints(
                &MinerConfig {
                    min_support: 30,
                    max_lhs: 1,
                    relation: "customer".into(),
                },
                &CtaneConfig {
                    max_lhs: 1,
                    max_constants: 0,
                    min_support: 50,
                    relation: "customer".into(),
                },
            )
            .unwrap();
        assert!(n > 0);
        assert!(!s.engine().is_empty());
        // Clean reference data satisfies its own discovered rules.
        let r = s.detect().unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn inspect_explains_a_dirty_tuple() {
        let mut s = server(150, 0.08, 74);
        let report = s.detect().unwrap();
        let dirty_row = report.vio.rows().next().expect("some dirty tuple");
        let rel = s.inspect(dirty_row).unwrap();
        assert!(rel.iter().any(|r| r.violated));
    }
}
