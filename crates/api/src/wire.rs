//! The serializable command protocol: [`Request`] / [`Response`] plus
//! [`dispatch`], the front door any transport can sit behind.
//!
//! A quality service decodes one request per message, dispatches it
//! against whatever [`QualityBackend`] it hosts, and encodes the response
//! — `examples/quality_service.rs` runs exactly that loop. The encoding
//! is a line of JSON; the codec lives here because the workspace's
//! offline `serde` subset is marker-traits only (the derives on these
//! types keep them drop-in compatible with real serde, the canonical
//! encoding below is what actually crosses the wire).
//!
//! Scalars are encoded so that decoding is exact, not best-effort:
//! strings and booleans map to their JSON forms, while typed numbers are
//! tagged — `Value::Int(42)` is `["i","42"]` and `Value::Float` rides
//! Rust's shortest-round-trip float rendering (`["f","0.1"]`, NaN and
//! infinities included) — so a decoded mutation is `==` to the one
//! encoded, which is what lets the round-trip tests assert equality on
//! every variant.

use cfd::{CfdError, CfdResult};
use detect::ViolationReport;
use minidb::{RowId, Value};
use serde::{Deserialize, Serialize};

use crate::backend::{Capabilities, Mutation, MutationBatch, QualityBackend, RepairSummary};

// ---------------------------------------------------------------- messages

/// One command against a quality backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Register CFDs (textual notation, newline-separated).
    RegisterCfds {
        /// The rules.
        text: String,
    },
    /// Insert one row.
    Insert {
        /// The row values, in schema order.
        row: Vec<Value>,
    },
    /// Delete one row.
    Delete {
        /// Target row.
        row: RowId,
    },
    /// Overwrite one cell.
    UpdateCell {
        /// Target row.
        row: RowId,
        /// Target column.
        col: usize,
        /// New value.
        value: Value,
    },
    /// Apply a mutation batch in one pass (the bulk-ingest path).
    ApplyBatch {
        /// The batch.
        batch: MutationBatch,
    },
    /// Run error detection.
    Detect,
    /// Produce the audit summary.
    Audit,
    /// Run batch repair (capability-gated).
    Repair,
    /// The cached detection report, if current.
    LastReport,
    /// Number of live rows.
    Len,
    /// What the backend supports.
    Capabilities,
    /// Snapshot the telemetry registry (capability-gated).
    Metrics,
    /// The span tree of the last completed traced request
    /// (capability-gated; traces are captured while `SDQ_TRACE=1`).
    Trace,
}

impl Request {
    /// The request's wire op name — also the `kind` label the dispatcher
    /// (and the network tier's per-connection counters) record per-request
    /// counters and latency histograms under.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Request::RegisterCfds { .. } => "register_cfds",
            Request::Insert { .. } => "insert",
            Request::Delete { .. } => "delete",
            Request::UpdateCell { .. } => "update_cell",
            Request::ApplyBatch { .. } => "apply_batch",
            Request::Detect => "detect",
            Request::Audit => "audit",
            Request::Repair => "repair",
            Request::LastReport => "last_report",
            Request::Len => "len",
            Request::Capabilities => "capabilities",
            Request::Metrics => "metrics",
            Request::Trace => "trace",
        }
    }

    /// True when serving the request cannot change the relation, the rule
    /// set, or any derived state a later request could observe — the
    /// MVCC-lite split the network tier's `ConcurrentEngine` is built on:
    /// read-only requests are served lock-free from the latest published
    /// epoch snapshot while mutating ones funnel through the single
    /// writer. `Detect` and `Audit` are read-only in this sense even
    /// though the serial trait takes `&mut self` for them (they only
    /// refresh caches, never data).
    pub fn is_read_only(&self) -> bool {
        match self {
            Request::Detect
            | Request::Audit
            | Request::LastReport
            | Request::Len
            | Request::Capabilities
            | Request::Metrics
            | Request::Trace => true,
            Request::RegisterCfds { .. }
            | Request::Insert { .. }
            | Request::Delete { .. }
            | Request::UpdateCell { .. }
            | Request::ApplyBatch { .. }
            | Request::Repair => false,
        }
    }

    /// The request's root span name (`api.<kind>`) — static so disabled
    /// tracing allocates nothing.
    fn trace_name(&self) -> &'static str {
        match self {
            Request::RegisterCfds { .. } => "api.register_cfds",
            Request::Insert { .. } => "api.insert",
            Request::Delete { .. } => "api.delete",
            Request::UpdateCell { .. } => "api.update_cell",
            Request::ApplyBatch { .. } => "api.apply_batch",
            Request::Detect => "api.detect",
            Request::Audit => "api.audit",
            Request::Repair => "api.repair",
            Request::LastReport => "api.last_report",
            Request::Len => "api.len",
            Request::Capabilities => "api.capabilities",
            Request::Metrics => "api.metrics",
            Request::Trace => "api.trace",
        }
    }
}

/// Wire summary of a [`ViolationReport`] (violation records and headline
/// tallies; full reports are pulled through the explorer APIs, not the
/// command protocol).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Violation records detected.
    pub violations: usize,
    /// Rows with `vio(t) > 0`.
    pub dirty_rows: usize,
    /// Sum of all `vio(t)` tallies.
    pub total_vio: u64,
    /// `(cfd index, violations)` pairs, ascending by index.
    pub per_cfd: Vec<(usize, usize)>,
}

impl ReportSummary {
    /// Summarize a detection report.
    pub fn of(report: &ViolationReport) -> ReportSummary {
        let mut per_cfd: Vec<(usize, usize)> =
            report.per_cfd.iter().map(|(&i, &n)| (i, n)).collect();
        per_cfd.sort_unstable();
        ReportSummary {
            violations: report.len(),
            dirty_rows: report.vio.len(),
            total_vio: report.vio.values().sum(),
            per_cfd,
        }
    }
}

/// Wire summary of an audit (`audit::QualityReport` headline numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Live tuples audited.
    pub tuples: usize,
    /// Tuple counts `[verified, probably, arguably, dirty]`.
    pub classes: [usize; 4],
    /// Fraction of tuples that are dirty.
    pub dirty_fraction: f64,
}

impl AuditSummary {
    /// Summarize an audit report.
    pub fn of(report: &audit::QualityReport) -> AuditSummary {
        AuditSummary {
            tuples: report.tuples,
            classes: report.tuple_classes,
            dirty_fraction: report.dirty_fraction(),
        }
    }
}

/// The answer to one [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// CFDs registered; the backend now enforces this many rules.
    Registered {
        /// Active rule count.
        rules: usize,
    },
    /// Row inserted.
    Inserted {
        /// Assigned id.
        row: RowId,
    },
    /// Row deleted.
    Deleted {
        /// Deleted id.
        row: RowId,
        /// Its former values.
        values: Vec<Value>,
    },
    /// Cell overwritten.
    CellUpdated {
        /// Target row.
        row: RowId,
        /// Target column.
        col: usize,
        /// The previous value.
        old: Value,
    },
    /// Batch applied.
    BatchApplied {
        /// Mutations applied.
        applied: usize,
        /// Ids assigned to the batch's inserts, in batch order.
        inserted: Vec<RowId>,
    },
    /// Detection ran (or a cached report was current).
    Report(ReportSummary),
    /// No report is cached (`LastReport` after a mutation).
    NoReport,
    /// Audit summary.
    Audited(AuditSummary),
    /// Repair ran.
    Repaired(RepairSummary),
    /// Row count.
    Len {
        /// Live rows.
        rows: usize,
    },
    /// Capability descriptor.
    Caps(Capabilities),
    /// Telemetry snapshot.
    Metrics(obs::MetricsReport),
    /// Span tree of the last completed traced request.
    Trace(obs::TraceReport),
    /// The request failed; the backend state reflects any prefix that did
    /// apply (see [`QualityBackend::apply_batch`]).
    Error {
        /// Human-readable cause.
        message: String,
    },
}

// --------------------------------------------------------------- dispatch

/// Serve one request against a backend. Never panics and never returns
/// `Err` — failures become [`Response::Error`], which is what a request
/// loop wants to send back rather than tear down the connection.
///
/// Every dispatch bumps `api_requests_total{kind=...}` and records its
/// wall time into `api_request_ns{kind=...}` in the `obs` global
/// registry, so a `Request::Metrics` over the same connection reads back
/// the service's own traffic profile.
pub fn dispatch(backend: &mut dyn QualityBackend, request: Request) -> Response {
    fn err(e: CfdError) -> Response {
        Response::Error {
            message: e.to_string(),
        }
    }
    let kind = request.kind_str();
    obs::counter(&format!("api_requests_total{{kind=\"{kind}\"}}")).inc();
    let _span = obs::span(&format!("api_request_ns{{kind=\"{kind}\"}}"));
    // Root span of the request's trace (inert unless tracing is on). The
    // trace completes — and lands in the flight recorder — when this
    // guard drops, after the response is built; a `Request::Trace`
    // therefore reads back the *previous* request, never itself.
    let _trace = obs::trace::root(request.trace_name());
    match request {
        Request::RegisterCfds { text } => match backend.register_cfds(&text) {
            Ok(rules) => Response::Registered { rules },
            Err(e) => err(e),
        },
        Request::Insert { row } => match backend.insert(row) {
            Ok(row) => Response::Inserted { row },
            Err(e) => err(e),
        },
        Request::Delete { row } => match backend.delete(row) {
            Ok(values) => Response::Deleted { row, values },
            Err(e) => err(e),
        },
        Request::UpdateCell { row, col, value } => match backend.update_cell(row, col, value) {
            Ok(old) => Response::CellUpdated { row, col, old },
            Err(e) => err(e),
        },
        Request::ApplyBatch { batch } => match backend.apply_batch(batch) {
            Ok(out) => Response::BatchApplied {
                applied: out.applied,
                inserted: out.inserted,
            },
            Err(e) => err(e),
        },
        Request::Detect => match backend.detect() {
            Ok(report) => Response::Report(ReportSummary::of(&report)),
            Err(e) => err(e),
        },
        Request::Audit => match backend.audit() {
            Ok(report) => Response::Audited(AuditSummary::of(&report)),
            Err(e) => err(e),
        },
        Request::Repair => match backend.repair() {
            Ok(summary) => Response::Repaired(summary),
            Err(e) => err(e),
        },
        Request::LastReport => match backend.last_report() {
            Some(report) => Response::Report(ReportSummary::of(&report)),
            None => Response::NoReport,
        },
        Request::Len => Response::Len {
            rows: backend.len(),
        },
        Request::Capabilities => Response::Caps(backend.capabilities()),
        Request::Metrics => match backend.metrics() {
            Ok(report) => Response::Metrics(report),
            Err(e) => err(e),
        },
        Request::Trace => match backend.trace() {
            Ok(report) => Response::Trace(report),
            Err(e) => err(e),
        },
    }
}

/// Longest frame [`dispatch_line`] (and the network transport sitting in
/// front of it) accepts, in bytes. A frame beyond the cap is refused with
/// an encoded protocol error *without parsing it* — the cap is what keeps
/// one client from making the service buffer an unbounded line.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Decode one encoded request, dispatch it, and encode the response — the
/// inner step of a text-transport service loop. Malformed, empty, and
/// oversized (> [`MAX_FRAME_BYTES`]) frames all become an encoded
/// [`Response::Error`]; this function never panics and never swallows a
/// frame silently.
pub fn dispatch_line(backend: &mut dyn QualityBackend, line: &str) -> String {
    if line.len() > MAX_FRAME_BYTES {
        return Response::Error {
            message: format!(
                "frame too large: {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                line.len()
            ),
        }
        .encode();
    }
    match Request::decode(line) {
        Ok(req) => dispatch(backend, req).encode(),
        Err(e) => Response::Error {
            message: e.to_string(),
        }
        .encode(),
    }
}

// ----------------------------------------------------------------- codec

impl Request {
    /// Encode to one line of JSON.
    pub fn encode(&self) -> String {
        let j = match self {
            Request::RegisterCfds { text } => obj(&[
                ("op", Json::str("register_cfds")),
                ("text", Json::str(text)),
            ]),
            Request::Insert { row } => obj(&[("op", Json::str("insert")), ("row", values(row))]),
            Request::Delete { row } => {
                obj(&[("op", Json::str("delete")), ("row", Json::num(row.0))])
            }
            Request::UpdateCell { row, col, value } => obj(&[
                ("op", Json::str("update_cell")),
                ("row", Json::num(row.0)),
                ("col", Json::num(*col as u64)),
                ("value", value_json(value)),
            ]),
            Request::ApplyBatch { batch } => obj(&[
                ("op", Json::str("apply_batch")),
                (
                    "mutations",
                    Json::Arr(batch.mutations.iter().map(mutation_json).collect()),
                ),
            ]),
            Request::Detect => obj(&[("op", Json::str("detect"))]),
            Request::Audit => obj(&[("op", Json::str("audit"))]),
            Request::Repair => obj(&[("op", Json::str("repair"))]),
            Request::LastReport => obj(&[("op", Json::str("last_report"))]),
            Request::Len => obj(&[("op", Json::str("len"))]),
            Request::Capabilities => obj(&[("op", Json::str("capabilities"))]),
            Request::Metrics => obj(&[("op", Json::str("metrics"))]),
            Request::Trace => obj(&[("op", Json::str("trace"))]),
        };
        j.render()
    }

    /// Decode from the JSON form produced by [`Request::encode`].
    pub fn decode(text: &str) -> CfdResult<Request> {
        let j = Json::parse(text)?;
        let op = j.field_str("op")?;
        Ok(match op {
            "register_cfds" => Request::RegisterCfds {
                text: j.field_str("text")?.to_string(),
            },
            "insert" => Request::Insert {
                row: decode_values(j.field("row")?)?,
            },
            "delete" => Request::Delete {
                row: RowId(j.field_u64("row")?),
            },
            "update_cell" => Request::UpdateCell {
                row: RowId(j.field_u64("row")?),
                col: j.field_usize("col")?,
                value: decode_value(j.field("value")?)?,
            },
            "apply_batch" => Request::ApplyBatch {
                batch: MutationBatch {
                    mutations: j
                        .field("mutations")?
                        .as_arr()?
                        .iter()
                        .map(decode_mutation)
                        .collect::<CfdResult<_>>()?,
                },
            },
            "detect" => Request::Detect,
            "audit" => Request::Audit,
            "repair" => Request::Repair,
            "last_report" => Request::LastReport,
            "len" => Request::Len,
            "capabilities" => Request::Capabilities,
            "metrics" => Request::Metrics,
            "trace" => Request::Trace,
            other => return Err(parse_err(format!("unknown op '{other}'"))),
        })
    }
}

impl Response {
    /// Encode to one line of JSON.
    pub fn encode(&self) -> String {
        let j = match self {
            Response::Registered { rules } => obj(&[
                ("ok", Json::str("registered")),
                ("rules", Json::num(*rules as u64)),
            ]),
            Response::Inserted { row } => {
                obj(&[("ok", Json::str("inserted")), ("row", Json::num(row.0))])
            }
            Response::Deleted { row, values: v } => obj(&[
                ("ok", Json::str("deleted")),
                ("row", Json::num(row.0)),
                ("values", values(v)),
            ]),
            Response::CellUpdated { row, col, old } => obj(&[
                ("ok", Json::str("cell_updated")),
                ("row", Json::num(row.0)),
                ("col", Json::num(*col as u64)),
                ("old", value_json(old)),
            ]),
            Response::BatchApplied { applied, inserted } => obj(&[
                ("ok", Json::str("batch_applied")),
                ("applied", Json::num(*applied as u64)),
                (
                    "inserted",
                    Json::Arr(inserted.iter().map(|r| Json::num(r.0)).collect()),
                ),
            ]),
            Response::Report(s) => obj(&[
                ("ok", Json::str("report")),
                ("violations", Json::num(s.violations as u64)),
                ("dirty_rows", Json::num(s.dirty_rows as u64)),
                ("total_vio", Json::num(s.total_vio)),
                (
                    "per_cfd",
                    Json::Arr(
                        s.per_cfd
                            .iter()
                            .map(|&(i, n)| {
                                Json::Arr(vec![Json::num(i as u64), Json::num(n as u64)])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::NoReport => obj(&[("ok", Json::str("no_report"))]),
            Response::Audited(s) => obj(&[
                ("ok", Json::str("audited")),
                ("tuples", Json::num(s.tuples as u64)),
                (
                    "classes",
                    Json::Arr(s.classes.iter().map(|&c| Json::num(c as u64)).collect()),
                ),
                ("dirty_fraction", Json::float(s.dirty_fraction)),
            ]),
            Response::Repaired(s) => obj(&[
                ("ok", Json::str("repaired")),
                ("changes", Json::num(s.changes as u64)),
                ("iterations", Json::num(s.iterations as u64)),
                ("total_cost", Json::float(s.total_cost)),
                ("residual", Json::num(s.residual as u64)),
            ]),
            Response::Len { rows } => {
                obj(&[("ok", Json::str("len")), ("rows", Json::num(*rows as u64))])
            }
            Response::Caps(c) => obj(&[
                ("ok", Json::str("capabilities")),
                ("backend", Json::str(&c.backend)),
                ("repair", Json::Bool(c.repair)),
                ("streaming", Json::Bool(c.streaming)),
                ("shards", Json::num(c.shards as u64)),
                ("metrics", Json::Bool(c.metrics)),
                ("trace", Json::Bool(c.trace)),
            ]),
            Response::Metrics(m) => obj(&[
                ("ok", Json::str("metrics")),
                (
                    "counters",
                    Json::Arr(
                        m.counters
                            .iter()
                            .map(|(n, v)| Json::Arr(vec![Json::str(n), Json::num(*v)]))
                            .collect(),
                    ),
                ),
                (
                    // Gauges are signed; the integer token stays unsigned,
                    // so the value rides a decimal string.
                    "gauges",
                    Json::Arr(
                        m.gauges
                            .iter()
                            .map(|(n, v)| Json::Arr(vec![Json::str(n), Json::str(&v.to_string())]))
                            .collect(),
                    ),
                ),
                (
                    "histograms",
                    Json::Arr(
                        m.histograms
                            .iter()
                            .map(|h| {
                                obj(&[
                                    ("name", Json::str(&h.name)),
                                    ("count", Json::num(h.count)),
                                    ("sum", Json::num(h.sum)),
                                    ("p50", Json::num(h.p50)),
                                    ("p95", Json::num(h.p95)),
                                    ("p99", Json::num(h.p99)),
                                    ("max", Json::num(h.max)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Trace(t) => obj(&[
                ("ok", Json::str("trace")),
                ("name", Json::str(&t.name)),
                ("duration_us", Json::num(t.duration_us)),
                (
                    "spans",
                    Json::Arr(t.spans.iter().map(span_record_json).collect()),
                ),
            ]),
            Response::Error { message } => obj(&[("err", Json::str(message))]),
        };
        j.render()
    }

    /// Decode from the JSON form produced by [`Response::encode`].
    pub fn decode(text: &str) -> CfdResult<Response> {
        let j = Json::parse(text)?;
        if let Ok(message) = j.field_str("err") {
            return Ok(Response::Error {
                message: message.to_string(),
            });
        }
        let ok = j.field_str("ok")?;
        Ok(match ok {
            "registered" => Response::Registered {
                rules: j.field_usize("rules")?,
            },
            "inserted" => Response::Inserted {
                row: RowId(j.field_u64("row")?),
            },
            "deleted" => Response::Deleted {
                row: RowId(j.field_u64("row")?),
                values: decode_values(j.field("values")?)?,
            },
            "cell_updated" => Response::CellUpdated {
                row: RowId(j.field_u64("row")?),
                col: j.field_usize("col")?,
                old: decode_value(j.field("old")?)?,
            },
            "batch_applied" => Response::BatchApplied {
                applied: j.field_usize("applied")?,
                inserted: j
                    .field("inserted")?
                    .as_arr()?
                    .iter()
                    .map(|v| Ok(RowId(v.as_u64()?)))
                    .collect::<CfdResult<_>>()?,
            },
            "report" => Response::Report(ReportSummary {
                violations: j.field_usize("violations")?,
                dirty_rows: j.field_usize("dirty_rows")?,
                total_vio: j.field_u64("total_vio")?,
                per_cfd: j
                    .field("per_cfd")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        let p = p.as_arr()?;
                        if p.len() != 2 {
                            return Err(parse_err("per_cfd entry must be a pair".into()));
                        }
                        Ok((p[0].as_usize()?, p[1].as_usize()?))
                    })
                    .collect::<CfdResult<_>>()?,
            }),
            "no_report" => Response::NoReport,
            "audited" => {
                let cls = j.field("classes")?.as_arr()?;
                if cls.len() != 4 {
                    return Err(parse_err("classes must hold 4 counts".into()));
                }
                let mut classes = [0usize; 4];
                for (slot, v) in classes.iter_mut().zip(cls) {
                    *slot = v.as_usize()?;
                }
                Response::Audited(AuditSummary {
                    tuples: j.field_usize("tuples")?,
                    classes,
                    dirty_fraction: j.field("dirty_fraction")?.as_float()?,
                })
            }
            "repaired" => Response::Repaired(RepairSummary {
                changes: j.field_usize("changes")?,
                iterations: j.field_usize("iterations")?,
                total_cost: j.field("total_cost")?.as_float()?,
                residual: j.field_usize("residual")?,
            }),
            "len" => Response::Len {
                rows: j.field_usize("rows")?,
            },
            "capabilities" => Response::Caps(Capabilities {
                backend: j.field_str("backend")?.to_string(),
                repair: j.field("repair")?.as_bool()?,
                streaming: j.field("streaming")?.as_bool()?,
                shards: j.field_usize("shards")?,
                metrics: j.field("metrics")?.as_bool()?,
                trace: j.field("trace")?.as_bool()?,
            }),
            "metrics" => Response::Metrics(obs::MetricsReport {
                counters: j
                    .field("counters")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        let [name, v] = p.as_arr()? else {
                            return Err(parse_err("counter entry must be a pair".into()));
                        };
                        Ok((name.as_str()?.to_string(), v.as_u64()?))
                    })
                    .collect::<CfdResult<_>>()?,
                gauges: j
                    .field("gauges")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        let [name, v] = p.as_arr()? else {
                            return Err(parse_err("gauge entry must be a pair".into()));
                        };
                        let v = v.as_str()?;
                        let v: i64 = v
                            .parse()
                            .map_err(|e| parse_err(format!("bad gauge value '{v}': {e}")))?;
                        Ok((name.as_str()?.to_string(), v))
                    })
                    .collect::<CfdResult<_>>()?,
                histograms: j
                    .field("histograms")?
                    .as_arr()?
                    .iter()
                    .map(|h| {
                        Ok(obs::HistogramSnapshot {
                            name: h.field_str("name")?.to_string(),
                            count: h.field_u64("count")?,
                            sum: h.field_u64("sum")?,
                            p50: h.field_u64("p50")?,
                            p95: h.field_u64("p95")?,
                            p99: h.field_u64("p99")?,
                            max: h.field_u64("max")?,
                        })
                    })
                    .collect::<CfdResult<_>>()?,
            }),
            "trace" => Response::Trace(obs::TraceReport {
                name: j.field_str("name")?.to_string(),
                duration_us: j.field_u64("duration_us")?,
                spans: j
                    .field("spans")?
                    .as_arr()?
                    .iter()
                    .map(decode_span_record)
                    .collect::<CfdResult<_>>()?,
            }),
            other => return Err(parse_err(format!("unknown response tag '{other}'"))),
        })
    }
}

fn span_record_json(s: &obs::SpanRecord) -> Json {
    obj(&[
        ("id", Json::num(s.id)),
        ("parent", Json::num(s.parent)),
        ("name", Json::str(&s.name)),
        ("start_us", Json::num(s.start_us)),
        ("end_us", Json::num(s.end_us)),
        ("thread", Json::num(s.thread)),
        (
            "attrs",
            Json::Arr(
                s.attrs
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
                    .collect(),
            ),
        ),
    ])
}

fn decode_span_record(j: &Json) -> CfdResult<obs::SpanRecord> {
    Ok(obs::SpanRecord {
        id: j.field_u64("id")?,
        parent: j.field_u64("parent")?,
        name: j.field_str("name")?.to_string(),
        start_us: j.field_u64("start_us")?,
        end_us: j.field_u64("end_us")?,
        thread: j.field_u64("thread")?,
        attrs: j
            .field("attrs")?
            .as_arr()?
            .iter()
            .map(|p| {
                let [k, v] = p.as_arr()? else {
                    return Err(parse_err("attr entry must be a pair".into()));
                };
                Ok((k.as_str()?.to_string(), v.as_str()?.to_string()))
            })
            .collect::<CfdResult<_>>()?,
    })
}

fn mutation_json(m: &Mutation) -> Json {
    match m {
        Mutation::Insert(row) => obj(&[("m", Json::str("insert")), ("row", values(row))]),
        Mutation::Delete(id) => obj(&[("m", Json::str("delete")), ("row", Json::num(id.0))]),
        Mutation::SetCell { row, col, value } => obj(&[
            ("m", Json::str("set")),
            ("row", Json::num(row.0)),
            ("col", Json::num(*col as u64)),
            ("value", value_json(value)),
        ]),
    }
}

fn decode_mutation(j: &Json) -> CfdResult<Mutation> {
    Ok(match j.field_str("m")? {
        "insert" => Mutation::Insert(decode_values(j.field("row")?)?),
        "delete" => Mutation::Delete(RowId(j.field_u64("row")?)),
        "set" => Mutation::SetCell {
            row: RowId(j.field_u64("row")?),
            col: j.field_usize("col")?,
            value: decode_value(j.field("value")?)?,
        },
        other => return Err(parse_err(format!("unknown mutation '{other}'"))),
    })
}

/// Encode a [`Value`] with exact-round-trip scalar tagging (see module
/// docs): `null`, `true`/`false`, `"text"`, `["i","42"]`, `["f","0.1"]`.
fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Arr(vec![Json::str("i"), Json::str(&i.to_string())]),
        Value::Float(f) => Json::Arr(vec![Json::str("f"), Json::str(&format!("{f:?}"))]),
        Value::Str(s) => Json::str(s),
    }
}

fn decode_value(j: &Json) -> CfdResult<Value> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::str(s)),
        Json::Arr(parts) => {
            let [tag, body] = parts.as_slice() else {
                return Err(parse_err("tagged scalar must be a [tag, body] pair".into()));
            };
            let body = body.as_str()?;
            match tag.as_str()? {
                "i" => body
                    .parse()
                    .map(Value::Int)
                    .map_err(|e| parse_err(format!("bad int '{body}': {e}"))),
                "f" => body
                    .parse()
                    .map(Value::Float)
                    .map_err(|e| parse_err(format!("bad float '{body}': {e}"))),
                t => Err(parse_err(format!("unknown scalar tag '{t}'"))),
            }
        }
        Json::Num(_) | Json::Obj(_) => Err(parse_err("not a value encoding".into())),
    }
}

fn values(vs: &[Value]) -> Json {
    Json::Arr(vs.iter().map(value_json).collect())
}

fn decode_values(j: &Json) -> CfdResult<Vec<Value>> {
    j.as_arr()?.iter().map(decode_value).collect()
}

fn obj(fields: &[(&str, Json)]) -> Json {
    Json::Obj(
        fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    )
}

fn parse_err(m: String) -> CfdError {
    CfdError::Parse(m)
}

// ------------------------------------------------------------- mini JSON
//
// The protocol's own JSON value: render + recursive-descent parse. Covers
// exactly what the messages above use (objects, arrays, strings, unsigned
// integer tokens, booleans, null); floats never appear as JSON numbers —
// they ride tagged strings for exact round-trips.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    /// An integer token, kept as its digit string (ids and counts; always
    /// written from a `u64`, so no sign or fraction).
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    fn num(n: u64) -> Json {
        Json::Num(n.to_string())
    }

    /// Floats cross the wire as tagged strings (module docs).
    fn float(f: f64) -> Json {
        Json::Arr(vec![Json::str("f"), Json::str(&format!("{f:?}"))])
    }

    fn field(&self, key: &str) -> CfdResult<&Json> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| parse_err(format!("missing field '{key}'"))),
            _ => Err(parse_err(format!("field '{key}' on a non-object"))),
        }
    }

    fn field_str(&self, key: &str) -> CfdResult<&str> {
        self.field(key)?.as_str()
    }

    fn field_u64(&self, key: &str) -> CfdResult<u64> {
        self.field(key)?.as_u64()
    }

    /// A `u64` field narrowed to `usize` — an encoded protocol error on a
    /// 32-bit build when the count doesn't fit, never a silent wrap.
    fn field_usize(&self, key: &str) -> CfdResult<usize> {
        let v = self.field_u64(key)?;
        usize::try_from(v).map_err(|_| {
            parse_err(format!(
                "field '{key}': {v} does not fit this platform's usize"
            ))
        })
    }

    fn as_str(&self) -> CfdResult<&str> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(parse_err("expected a string".into())),
        }
    }

    fn as_bool(&self) -> CfdResult<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(parse_err("expected a boolean".into())),
        }
    }

    fn as_u64(&self) -> CfdResult<u64> {
        match self {
            Json::Num(s) => s
                .parse()
                .map_err(|e| parse_err(format!("bad integer '{s}': {e}"))),
            _ => Err(parse_err("expected an integer".into())),
        }
    }

    /// [`Json::as_u64`] narrowed to `usize` with the same no-wrap rule as
    /// [`Json::field_usize`].
    fn as_usize(&self) -> CfdResult<usize> {
        let v = self.as_u64()?;
        usize::try_from(v).map_err(|_| parse_err(format!("{v} does not fit this platform's usize")))
    }

    /// A float field: the tagged `["f","..."]` form (or a bare integer
    /// token, accepted leniently).
    fn as_float(&self) -> CfdResult<f64> {
        match self {
            Json::Num(s) => s
                .parse()
                .map_err(|e| parse_err(format!("bad number '{s}': {e}"))),
            Json::Arr(_) => match decode_value(self)? {
                Value::Float(f) => Ok(f),
                _ => Err(parse_err("expected a float".into())),
            },
            _ => Err(parse_err("expected a number".into())),
        }
    }

    fn as_arr(&self) -> CfdResult<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(parse_err("expected an array".into())),
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn parse(text: &str) -> CfdResult<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(parse_err(format!(
                "trailing input at byte {} of message",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> CfdResult<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| parse_err("unexpected end of message".into()))
    }

    fn expect(&mut self, b: u8) -> CfdResult<()> {
        if self.peek()? != b {
            return Err(parse_err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> CfdResult<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(parse_err(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> CfdResult<Json> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(parse_err(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.peek()?; // position on the key
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(parse_err(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                Ok(Json::Num(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("digits are UTF-8")
                        .to_string(),
                ))
            }
            b => Err(parse_err(format!(
                "unexpected '{}' at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> CfdResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(parse_err("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .ok_or_else(|| parse_err("dangling escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| parse_err("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| parse_err(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| parse_err(format!("bad code point {code}")))?,
                            );
                        }
                        e => return Err(parse_err(format!("unknown escape '\\{}'", *e as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through untouched).
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| parse_err("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().expect("nonempty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(r: Request) {
        let line = r.encode();
        let back = Request::decode(&line).unwrap_or_else(|e| panic!("decode {line}: {e}"));
        assert_eq!(back, r, "wire form: {line}");
    }

    fn roundtrip_response(r: Response) {
        let line = r.encode();
        let back = Response::decode(&line).unwrap_or_else(|e| panic!("decode {line}: {e}"));
        assert_eq!(back, r, "wire form: {line}");
    }

    fn awkward_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(0.1),
            Value::Float(f64::NEG_INFINITY),
            Value::str("plain"),
            Value::str("quotes \" and \\ and \n newline, unicode: Ω→é"),
            Value::str(""),
        ]
    }

    #[test]
    fn every_request_variant_round_trips() {
        for r in [
            Request::RegisterCfds {
                text: "customer: [CC='44'] -> [CNT='UK']\nr: [A] -> [B]".into(),
            },
            Request::Insert {
                row: awkward_values(),
            },
            Request::Delete { row: RowId(7) },
            Request::UpdateCell {
                row: RowId(3),
                col: 2,
                value: Value::str("it's quoted"),
            },
            Request::ApplyBatch {
                batch: vec![
                    Mutation::Insert(awkward_values()),
                    Mutation::Delete(RowId(0)),
                    Mutation::SetCell {
                        row: RowId(1),
                        col: 4,
                        value: Value::Null,
                    },
                ]
                .into(),
            },
            Request::Detect,
            Request::Audit,
            Request::Repair,
            Request::LastReport,
            Request::Len,
            Request::Capabilities,
            Request::Metrics,
            Request::Trace,
        ] {
            roundtrip_request(r);
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        for r in [
            Response::Registered { rules: 5 },
            Response::Inserted { row: RowId(9) },
            Response::Deleted {
                row: RowId(2),
                values: awkward_values(),
            },
            Response::CellUpdated {
                row: RowId(1),
                col: 0,
                old: Value::Float(2.5),
            },
            Response::BatchApplied {
                applied: 3,
                inserted: vec![RowId(10), RowId(11)],
            },
            Response::Report(ReportSummary {
                violations: 4,
                dirty_rows: 6,
                total_vio: 11,
                per_cfd: vec![(0, 3), (2, 1)],
            }),
            Response::NoReport,
            Response::Audited(AuditSummary {
                tuples: 100,
                classes: [90, 4, 3, 3],
                dirty_fraction: 0.03,
            }),
            Response::Repaired(RepairSummary {
                changes: 12,
                iterations: 3,
                total_cost: 7.25,
                residual: 0,
            }),
            Response::Len { rows: 1234 },
            Response::Caps(Capabilities {
                backend: "sharded-cluster".into(),
                repair: false,
                streaming: false,
                shards: 4,
                metrics: true,
                trace: true,
            }),
            Response::Metrics(obs::MetricsReport {
                counters: vec![
                    ("api_requests_total{kind=\"detect\"}".into(), 3),
                    ("colstore_snapshot_encodes_total".into(), u64::MAX),
                ],
                gauges: vec![("cluster_shards".into(), -1), ("depth".into(), i64::MIN)],
                histograms: vec![obs::HistogramSnapshot {
                    name: "api_request_ns{kind=\"detect\"}".into(),
                    count: 3,
                    sum: 12_000,
                    p50: 4_095,
                    p95: 8_191,
                    p99: 8_191,
                    max: 7_800,
                }],
            }),
            Response::Metrics(obs::MetricsReport::default()),
            Response::Trace(obs::TraceReport {
                name: "api.detect".into(),
                duration_us: 4_200,
                spans: vec![
                    obs::SpanRecord {
                        id: 1,
                        parent: 0,
                        name: "api.detect".into(),
                        start_us: 0,
                        end_us: 4_200,
                        thread: 0,
                        attrs: Vec::new(),
                    },
                    obs::SpanRecord {
                        id: 2,
                        parent: 1,
                        name: "shard.export".into(),
                        start_us: 10,
                        end_us: 900,
                        thread: 2,
                        attrs: vec![
                            ("shard".into(), "0".into()),
                            ("quoted".into(), "a \"b\" c".into()),
                        ],
                    },
                ],
            }),
            Response::Trace(obs::TraceReport::default()),
            Response::Error {
                message: "bad \"row\"".into(),
            },
        ] {
            roundtrip_response(r);
        }
    }

    #[test]
    fn nan_floats_round_trip() {
        let line = Request::Insert {
            row: vec![Value::Float(f64::NAN)],
        }
        .encode();
        let Request::Insert { row } = Request::decode(&line).unwrap() else {
            panic!("wrong variant");
        };
        let Value::Float(f) = row[0] else {
            panic!("wrong value");
        };
        assert!(f.is_nan());
    }

    /// The values most likely to break a newline-delimited log: raw
    /// newlines and control characters in text, non-finite floats, empty
    /// strings. The durability WAL stores mutations *in this encoding*,
    /// so these pins are load-bearing for crash recovery, not just for
    /// the TCP transport.
    fn wal_critical_rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::str("line one\nline two\r\nline three")],
            vec![Value::str("\n"), Value::str("\r"), Value::str("\t")],
            vec![Value::str("\u{0}\u{1}\u{8}\u{b}\u{c}\u{1f}\u{7f}")],
            vec![
                Value::Float(f64::NAN),
                Value::Float(f64::INFINITY),
                Value::Float(f64::NEG_INFINITY),
                Value::Float(-0.0),
            ],
            vec![Value::str(""), Value::Null, Value::str("")],
            vec![
                Value::str("mixed \n \u{0} \"quoted\" Ω"),
                Value::Int(i64::MIN),
            ],
        ]
    }

    /// Every WAL-critical mutation encodes to exactly one physical line
    /// (no raw newline anywhere — the log's framing depends on it) and
    /// decodes back `==`, NaN compared by bit pattern.
    #[test]
    fn wal_critical_mutations_encode_single_line_and_round_trip() {
        for row in wal_critical_rows() {
            for req in [
                Request::Insert { row: row.clone() },
                Request::ApplyBatch {
                    batch: vec![
                        Mutation::Insert(row.clone()),
                        Mutation::SetCell {
                            row: RowId(0),
                            col: 0,
                            value: row[0].clone(),
                        },
                    ]
                    .into(),
                },
            ] {
                let line = req.encode();
                assert!(
                    !line.contains('\n') && !line.contains('\r'),
                    "encoding leaked a raw line break: {line:?}"
                );
                let back = Request::decode(&line).unwrap_or_else(|e| panic!("decode {line}: {e}"));
                // NaN != NaN, so compare via the canonical re-encoding
                // (bit-exact float rendering) as well as structurally
                // where possible.
                assert_eq!(back.encode(), line, "re-encode is canonical");
            }
        }
    }

    /// The same payloads through the full server-side step (`decode` →
    /// dispatch → `encode`): a mutation carrying WAL-hostile values must
    /// be *served*, not refused, and the answer must be a single line.
    #[test]
    fn wal_critical_mutations_dispatch_cleanly() {
        let mut b = Inert;
        for row in wal_critical_rows() {
            let line = Request::Insert { row }.encode();
            let out = dispatch_line(&mut b, &line);
            assert!(!out.contains('\n'), "response leaked a newline: {out:?}");
            let resp = Response::decode(&out).unwrap();
            assert_eq!(resp, Response::Inserted { row: RowId(0) }, "served: {line}");
        }
    }

    /// One of every [`Request`] variant — the exhaustiveness backstop for
    /// the classification tests below (the `match` inside `is_read_only`
    /// already breaks the build on a new variant; this pins the *values*).
    fn every_request() -> Vec<Request> {
        vec![
            Request::RegisterCfds {
                text: "r: [A] -> [B]".into(),
            },
            Request::Insert {
                row: vec![Value::Null],
            },
            Request::Delete { row: RowId(0) },
            Request::UpdateCell {
                row: RowId(0),
                col: 0,
                value: Value::Null,
            },
            Request::ApplyBatch {
                batch: MutationBatch::new(),
            },
            Request::Detect,
            Request::Audit,
            Request::Repair,
            Request::LastReport,
            Request::Len,
            Request::Capabilities,
            Request::Metrics,
            Request::Trace,
        ]
    }

    #[test]
    fn every_variant_is_classified_read_or_write() {
        let reads = [
            "detect",
            "audit",
            "last_report",
            "len",
            "capabilities",
            "metrics",
            "trace",
        ];
        let writes = [
            "register_cfds",
            "insert",
            "delete",
            "update_cell",
            "apply_batch",
            "repair",
        ];
        let all = every_request();
        assert_eq!(all.len(), reads.len() + writes.len(), "variant inventory");
        for r in &all {
            let kind = r.kind_str();
            if r.is_read_only() {
                assert!(reads.contains(&kind), "{kind} classified read-only");
                assert!(!writes.contains(&kind), "{kind} in exactly one class");
            } else {
                assert!(writes.contains(&kind), "{kind} classified mutating");
                assert!(!reads.contains(&kind), "{kind} in exactly one class");
            }
        }
        // Every kind label is distinct (the obs/net counters key on it).
        let mut kinds: Vec<&str> = all.iter().map(|r| r.kind_str()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len(), "kind_str labels are unique");
    }

    /// A no-op backend for exercising the `dispatch_line` framing edges.
    struct Inert;

    impl QualityBackend for Inert {
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                backend: "inert".into(),
                repair: false,
                streaming: false,
                shards: 1,
                metrics: false,
                trace: false,
            }
        }
        fn register_cfds(&mut self, _text: &str) -> CfdResult<usize> {
            Ok(0)
        }
        fn insert(&mut self, _row: Vec<Value>) -> CfdResult<RowId> {
            Ok(RowId(0))
        }
        fn delete(&mut self, _row: RowId) -> CfdResult<Vec<Value>> {
            Ok(Vec::new())
        }
        fn update_cell(&mut self, _row: RowId, _col: usize, _value: Value) -> CfdResult<Value> {
            Ok(Value::Null)
        }
        fn detect(&mut self) -> CfdResult<ViolationReport> {
            Ok(ViolationReport::default())
        }
        fn audit(&mut self) -> CfdResult<audit::QualityReport> {
            Err(CfdError::Unsupported("inert".into()))
        }
        fn last_report(&self) -> Option<ViolationReport> {
            None
        }
        fn len(&self) -> usize {
            0
        }
    }

    #[test]
    fn dispatch_line_turns_bad_frames_into_encoded_protocol_errors() {
        let mut b = Inert;
        // Empty, malformed, truncated, and unknown-op frames: always an
        // encoded Response::Error that decodes cleanly — never a panic,
        // never a silent drop.
        for bad in ["", "   ", "{", "not json", "{\"op\":\"nope\"}", "[1,2"] {
            let out = dispatch_line(&mut b, bad);
            let resp = Response::decode(&out).unwrap_or_else(|e| panic!("{bad:?}: {e}"));
            assert!(
                matches!(resp, Response::Error { .. }),
                "{bad:?} answered {out}"
            );
        }
        // A well-formed frame still works after the errors.
        let out = dispatch_line(&mut b, &Request::Len.encode());
        assert_eq!(Response::decode(&out).unwrap(), Response::Len { rows: 0 });
    }

    #[test]
    fn dispatch_line_caps_frame_length_without_parsing() {
        let mut b = Inert;
        // An oversized frame of valid JSON shape: refused by length alone.
        let huge = format!(
            "{{\"op\":\"register_cfds\",\"text\":\"{}\"}}",
            "x".repeat(MAX_FRAME_BYTES + 1)
        );
        let out = dispatch_line(&mut b, &huge);
        let Response::Error { message } = Response::decode(&out).unwrap() else {
            panic!("oversized frame must be refused: {out}");
        };
        assert!(message.contains("frame too large"), "{message}");
        // At the cap exactly: parsed normally (and refused as malformed
        // only if it actually is).
        let at_cap = "x".repeat(MAX_FRAME_BYTES);
        let out = dispatch_line(&mut b, &at_cap);
        let Response::Error { message } = Response::decode(&out).unwrap() else {
            panic!("garbage frame must still error");
        };
        assert!(!message.contains("frame too large"), "{message}");
    }

    #[test]
    fn malformed_input_is_an_error_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"op\":\"detect\"} trailing",
            "{\"op\":\"nope\"}",
            "{\"op\":\"insert\",\"row\":[{\"weird\":1}]}",
            "{\"op\":\"delete\",\"row\":\"seven\"}",
            "[1,2",
            "{\"op\":\"insert\",\"row\":[[\"i\",\"notanint\"]]}",
        ] {
            assert!(Request::decode(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn whitespace_tolerant_decode() {
        let r = Request::decode(
            " { \"op\" : \"update_cell\" , \"row\" : 4 ,\n\t\"col\": 1, \"value\": null } ",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::UpdateCell {
                row: RowId(4),
                col: 1,
                value: Value::Null
            }
        );
    }
}
