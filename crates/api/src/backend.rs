//! The [`QualityBackend`] trait and the shared mutation vocabulary.
//!
//! Every engine facade in the workspace — the single-node
//! `QualityServer`, the sharded cluster, the streaming `DataMonitor` —
//! speaks this one surface. Callers program against
//! `&mut dyn QualityBackend` and pick the engine by construction, exactly
//! as the paper's Fig. 1 presents one system over interchangeable
//! execution strategies.

use audit::QualityReport;
use cfd::{CfdError, CfdResult};
use detect::ViolationReport;
use minidb::{RowId, Value};
use serde::{Deserialize, Serialize};

/// One mutation against the audited relation — the vocabulary shared by
/// every backend's ingest path (the monitor's update stream, the sharded
/// router, the wire protocol's batches).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mutation {
    /// Insert a new tuple; the backend assigns the next global row id.
    Insert(Vec<Value>),
    /// Delete a tuple by id.
    Delete(RowId),
    /// Overwrite one cell.
    SetCell {
        /// Target row.
        row: RowId,
        /// Target column (schema position).
        col: usize,
        /// New value.
        value: Value,
    },
}

/// An ordered batch of mutations, applied atomically with respect to
/// derived state: backends route and apply the whole batch in one pass and
/// patch each touched snapshot once, instead of paying per-row epoch and
/// copy-on-write bookkeeping (see `SnapshotCache::note_batch`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MutationBatch {
    /// The mutations, in application order. Later entries may reference
    /// rows inserted by earlier entries in the same batch.
    pub mutations: Vec<Mutation>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> MutationBatch {
        MutationBatch::default()
    }

    /// Append one mutation.
    pub fn push(&mut self, m: Mutation) {
        self.mutations.push(m);
    }

    /// Number of mutations.
    pub fn len(&self) -> usize {
        self.mutations.len()
    }

    /// True when the batch holds no mutations.
    pub fn is_empty(&self) -> bool {
        self.mutations.is_empty()
    }
}

impl From<Vec<Mutation>> for MutationBatch {
    fn from(mutations: Vec<Mutation>) -> MutationBatch {
        MutationBatch { mutations }
    }
}

impl FromIterator<Mutation> for MutationBatch {
    fn from_iter<I: IntoIterator<Item = Mutation>>(iter: I) -> MutationBatch {
        MutationBatch {
            mutations: iter.into_iter().collect(),
        }
    }
}

/// What applying a [`MutationBatch`] did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// Mutations applied (equals the batch length on success).
    pub applied: usize,
    /// Row ids assigned to the batch's inserts, in batch order.
    pub inserted: Vec<RowId>,
}

/// What a backend can do, beyond the mandatory surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Capabilities {
    /// Human-readable backend name (e.g. `"quality-server"`).
    pub backend: String,
    /// Does [`QualityBackend::repair`] work?
    pub repair: bool,
    /// Does the backend maintain violations incrementally per mutation
    /// (a streaming monitor), as opposed to on-demand batch detection?
    pub streaming: bool,
    /// Number of partitions the relation is spread over (1 = single node).
    pub shards: usize,
    /// Does [`QualityBackend::metrics`] answer with telemetry? True for
    /// every in-process backend (they share the `obs` global registry).
    pub metrics: bool,
    /// Does [`QualityBackend::trace`] answer with request traces? True
    /// for every in-process backend (they share the `obs::trace` flight
    /// recorder); traces are only captured while tracing is enabled
    /// (`SDQ_TRACE=1` / `obs::trace::set_enabled`).
    pub trace: bool,
}

/// Wire-friendly summary of a repair pass (the full
/// `repair::RepairResult`, with per-cell changes, stays available on the
/// concrete server type).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairSummary {
    /// Cell changes applied.
    pub changes: usize,
    /// Detect→resolve iterations used.
    pub iterations: usize,
    /// Total cost charged by the repair cost model.
    pub total_cost: f64,
    /// Violations left unresolved (0 on convergence).
    pub residual: usize,
}

/// The unified quality API: one relation under a CFD set, with mutation,
/// detection, audit and (capability-gated) repair.
///
/// Implementations must keep every derived structure — cached snapshots,
/// incremental detectors, memoized reports — coherent across these calls:
/// mutating through the trait is always safe, and a `detect` after any
/// mutation sequence reflects exactly the mutated data.
pub trait QualityBackend {
    /// What this backend supports.
    fn capabilities(&self) -> Capabilities;

    /// Register CFDs in the textual notation
    /// (`rel: [A='x', B=_] -> [C=_]`, one rule per line). Returns the
    /// number of rules the backend now enforces. Backends with a static
    /// analysis gate reject sets they can prove unsatisfiable.
    fn register_cfds(&mut self, text: &str) -> CfdResult<usize>;

    /// Insert a row; returns its assigned id.
    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId>;

    /// Delete a row by id; returns its former values.
    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>>;

    /// Overwrite one cell; returns the previous value.
    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value>;

    /// Apply a whole batch in one pass — the high-throughput ingest path.
    ///
    /// On success this is equivalent to applying the mutations one by one
    /// (the property tests pin this), but backends amortize routing and
    /// snapshot patching across the batch. On a failed mutation the
    /// already-applied mutations stay applied, derived state stays
    /// coherent, and the error is returned — single-node backends apply a
    /// batch-order prefix, while a partitioned backend applies a
    /// *per-partition* prefix (mutations after the failed one may have
    /// landed on sibling partitions; see the implementation's docs). A
    /// failed batch is not safely retryable by suffix on every backend.
    ///
    /// The default implementation is the one-by-one loop.
    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        let mut outcome = BatchOutcome::default();
        for m in batch.mutations {
            if let Some(id) = apply_mutation(self, m)? {
                outcome.inserted.push(id);
            }
            outcome.applied += 1;
        }
        Ok(outcome)
    }

    /// Run error detection; caches and returns the report.
    fn detect(&mut self) -> CfdResult<ViolationReport>;

    /// The data auditor's quality report (runs detection first if no
    /// report is cached).
    fn audit(&mut self) -> CfdResult<QualityReport>;

    /// The most recent detection report, if one is current (mutations
    /// invalidate it; streaming backends always have one).
    fn last_report(&self) -> Option<ViolationReport>;

    /// Number of live rows in the audited relation.
    fn len(&self) -> usize;

    /// True when the relation holds no live rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run batch repair, if [`Capabilities::repair`] says so; the default
    /// refuses.
    fn repair(&mut self) -> CfdResult<RepairSummary> {
        Err(CfdError::Unsupported(format!(
            "backend '{}' does not support repair",
            self.capabilities().backend
        )))
    }

    /// Snapshot the telemetry registry, if [`Capabilities::metrics`] says
    /// so. In-process backends all record into the `obs` global registry,
    /// so the default returns its snapshot; a remote proxy would override
    /// this to forward the request.
    fn metrics(&self) -> CfdResult<obs::MetricsReport> {
        if !self.capabilities().metrics {
            return Err(CfdError::Unsupported(format!(
                "backend '{}' does not expose metrics",
                self.capabilities().backend
            )));
        }
        Ok(obs::snapshot())
    }

    /// Export every live row with its stable id, in id order — the raw
    /// material of a durability checkpoint. The default refuses; backends
    /// that can enumerate their relation (and honor [`restore_row`] below)
    /// override it.
    ///
    /// [`restore_row`]: QualityBackend::restore_row
    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        Err(CfdError::Unsupported(format!(
            "backend '{}' does not support checkpoint export",
            self.capabilities().backend
        )))
    }

    /// Re-insert a checkpointed row under its original id. Only valid on
    /// a backend whose relation is empty or being restored in ascending
    /// id order (the id allocator is advanced past `id`); the default
    /// refuses.
    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        let _ = (id, row);
        Err(CfdError::Unsupported(format!(
            "backend '{}' does not support checkpoint restore",
            self.capabilities().backend
        )))
    }

    /// The id the next insert will be assigned — the id allocator's
    /// position. This can sit past the last live row (ids of deleted rows
    /// are never reused), which is why a checkpoint must record it
    /// explicitly: restoring the rows alone would resume allocation too
    /// early and break replay id-determinism. The default refuses.
    fn next_row_id(&self) -> CfdResult<u64> {
        Err(CfdError::Unsupported(format!(
            "backend '{}' does not expose its row-id allocator",
            self.capabilities().backend
        )))
    }

    /// Advance the id allocator so the next insert is assigned
    /// `RowId(next)` (no-op if it is already at or past `next`) — the
    /// restore-side twin of [`next_row_id`]. The default refuses.
    ///
    /// [`next_row_id`]: QualityBackend::next_row_id
    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        let _ = next;
        Err(CfdError::Unsupported(format!(
            "backend '{}' does not support checkpoint restore",
            self.capabilities().backend
        )))
    }

    /// The span tree of the most recently completed traced request, if
    /// [`Capabilities::trace`] says so. In-process backends share the
    /// `obs::trace` flight recorder, so the default reads it; a remote
    /// proxy would override this to forward the request. Errors when no
    /// trace has been captured (tracing off, or no request completed).
    fn trace(&self) -> CfdResult<obs::TraceReport> {
        if !self.capabilities().trace {
            return Err(CfdError::Unsupported(format!(
                "backend '{}' does not expose request traces",
                self.capabilities().backend
            )));
        }
        obs::trace::last_trace().ok_or_else(|| {
            CfdError::Unsupported(
                "no completed request trace captured (enable SDQ_TRACE=1 or \
                 obs::trace::set_enabled, then run a request)"
                    .into(),
            )
        })
    }
}

/// Boxed backends are backends: forwards *every* method — including the
/// defaulted ones — so a `Box<dyn QualityBackend + Send>` handed to the
/// network tier's generic `ConcurrentEngine<B>` keeps each concrete
/// backend's overridden `apply_batch`/`repair`/`metrics`/`trace`
/// behavior instead of falling back to the trait defaults.
impl<T: QualityBackend + ?Sized> QualityBackend for Box<T> {
    fn capabilities(&self) -> Capabilities {
        (**self).capabilities()
    }
    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        (**self).register_cfds(text)
    }
    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        (**self).insert(row)
    }
    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        (**self).delete(row)
    }
    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        (**self).update_cell(row, col, value)
    }
    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<BatchOutcome> {
        (**self).apply_batch(batch)
    }
    fn detect(&mut self) -> CfdResult<ViolationReport> {
        (**self).detect()
    }
    fn audit(&mut self) -> CfdResult<QualityReport> {
        (**self).audit()
    }
    fn last_report(&self) -> Option<ViolationReport> {
        (**self).last_report()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }
    fn repair(&mut self) -> CfdResult<RepairSummary> {
        (**self).repair()
    }
    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        (**self).export_rows()
    }
    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        (**self).restore_row(id, row)
    }
    fn next_row_id(&self) -> CfdResult<u64> {
        (**self).next_row_id()
    }
    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        (**self).restore_arena(next)
    }
    fn metrics(&self) -> CfdResult<obs::MetricsReport> {
        (**self).metrics()
    }
    fn trace(&self) -> CfdResult<obs::TraceReport> {
        (**self).trace()
    }
}

/// Apply one [`Mutation`] through the trait's single-mutation surface;
/// returns the assigned id for an insert. The canonical mutation →
/// method mapping — the trait's default [`QualityBackend::apply_batch`],
/// the equivalence tests and the benchmarks all share it instead of
/// re-spelling the match.
pub fn apply_mutation(
    b: &mut (impl QualityBackend + ?Sized),
    m: Mutation,
) -> CfdResult<Option<RowId>> {
    match m {
        Mutation::Insert(row) => b.insert(row).map(Some),
        Mutation::Delete(id) => b.delete(id).map(|_| None),
        Mutation::SetCell { row, col, value } => b.update_cell(row, col, value).map(|_| None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy backend exercising the trait's default methods.
    #[derive(Default)]
    struct Rows(Vec<Option<Vec<Value>>>);

    impl QualityBackend for Rows {
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                backend: "toy".into(),
                repair: false,
                streaming: false,
                shards: 1,
                metrics: true,
                trace: true,
            }
        }
        fn register_cfds(&mut self, _text: &str) -> CfdResult<usize> {
            Ok(0)
        }
        fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
            self.0.push(Some(row));
            Ok(RowId(self.0.len() as u64 - 1))
        }
        fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
            self.0
                .get_mut(row.index())
                .and_then(Option::take)
                .ok_or_else(|| CfdError::Malformed("bad row".into()))
        }
        fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
            let r = self
                .0
                .get_mut(row.index())
                .and_then(Option::as_mut)
                .ok_or_else(|| CfdError::Malformed("bad row".into()))?;
            Ok(std::mem::replace(&mut r[col], value))
        }
        fn detect(&mut self) -> CfdResult<ViolationReport> {
            Ok(ViolationReport::default())
        }
        fn audit(&mut self) -> CfdResult<QualityReport> {
            Err(CfdError::Unsupported("toy".into()))
        }
        fn last_report(&self) -> Option<ViolationReport> {
            None
        }
        fn len(&self) -> usize {
            self.0.iter().flatten().count()
        }
    }

    #[test]
    fn default_apply_batch_loops_and_collects_inserts() {
        let mut b = Rows::default();
        let batch: MutationBatch = vec![
            Mutation::Insert(vec![Value::str("a")]),
            Mutation::Insert(vec![Value::str("b")]),
            Mutation::SetCell {
                row: RowId(0),
                col: 0,
                value: Value::str("z"),
            },
            Mutation::Delete(RowId(1)),
        ]
        .into();
        let out = b.apply_batch(batch).unwrap();
        assert_eq!(out.applied, 4);
        assert_eq!(out.inserted, vec![RowId(0), RowId(1)]);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn failed_batch_keeps_prefix_and_reports_error() {
        let mut b = Rows::default();
        let batch: MutationBatch = vec![
            Mutation::Insert(vec![Value::str("a")]),
            Mutation::Delete(RowId(77)),
            Mutation::Insert(vec![Value::str("never")]),
        ]
        .into();
        assert!(b.apply_batch(batch).is_err());
        assert_eq!(b.len(), 1, "prefix before the failure stays applied");
    }

    #[test]
    fn default_repair_refuses() {
        let mut b = Rows::default();
        assert!(matches!(b.repair(), Err(CfdError::Unsupported(_))));
    }
}
