//! # Unified quality API
//!
//! One request surface over every engine in the workspace. The paper's
//! Fig. 1 presents Semandaq as a *single* facade wiring six components
//! over a relation; as the reproduction grew engines — the single-node
//! [`QualityServer`], the sharded cluster, the streaming monitor — each
//! sprouted its own incompatible surface. This crate folds them back into
//! one:
//!
//! * [`QualityBackend`] — the trait every engine implements: CFD
//!   registration, a full mutation surface ([`Mutation`] /
//!   [`MutationBatch`] with amortized [`QualityBackend::apply_batch`]),
//!   detection, audit, and capability-gated repair. Every implementation
//!   keeps its derived state (cached snapshots, incremental detectors)
//!   coherent under mutations through the trait.
//! * [`wire`] — the serializable [`wire::Request`] / [`wire::Response`]
//!   command protocol and [`wire::dispatch`]: decode a request stream,
//!   serve it from any backend. The front door for every transport.
//!   Dispatch is instrumented (per-kind request counters and latency
//!   histograms in the `obs` global registry), and the capability-gated
//!   [`wire::Request::Metrics`] op ships the registry snapshot — a
//!   [`MetricsReport`] — back over the same codec.
//!
//! The conformance suite (`tests/api_conformance.rs` at the workspace
//! root) runs one shared script against every backend and pins
//! `normalized()`-equal reports across all of them.
//!
//! [`QualityServer`]: https://docs.rs/semandaq-core

#![warn(missing_docs)]

pub mod backend;
pub mod wire;

pub use backend::{
    apply_mutation, BatchOutcome, Capabilities, Mutation, MutationBatch, QualityBackend,
    RepairSummary,
};
pub use obs::{HistogramSnapshot, MetricsReport};
pub use wire::{dispatch, dispatch_line, Request, Response, MAX_FRAME_BYTES};
