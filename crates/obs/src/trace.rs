//! `obs::trace` — request-scoped tracing: span trees, a flight recorder,
//! and explainable detection.
//!
//! The metrics core ([`crate`]) answers *how much / how slow on
//! aggregate*; this module answers *where did this request spend its
//! time*. One traced request produces one [`TraceReport`]: a tree of
//! [`SpanRecord`]s with hierarchical parent ids, microsecond timestamps
//! on a single clock, per-span key/value attributes ("grouping path:
//! dense", "cache: patch", "memo: hit"), and the thread each span ran
//! on — even when the request fanned out over the morsel pool or the
//! cluster's scatter threads.
//!
//! ## Design
//!
//! - **Gating.** Tracing is disabled by default; the cost of a disabled
//!   span site is one relaxed atomic load. Enable with `SDQ_TRACE=1`
//!   (read once), programmatically via [`set_enabled`], or implicitly by
//!   setting `SDQ_SLOW_MS` (outlier capture needs tracing on).
//! - **Span collection is thread-local and lock-free.** [`span()`] pushes
//!   an open frame onto the current thread's stack; dropping the guard
//!   moves the completed record into the same thread's buffer — no
//!   atomics, no locks, no allocation beyond the record itself. Each
//!   participating thread drains its buffer into the trace's shared sink
//!   exactly once, when its install guard drops (one mutex touch per
//!   thread per request, not per span).
//! - **Explicit propagation.** Crossing a thread boundary is two calls:
//!   [`current()`] captures a cheap [`TraceHandle`] (trace Arc + the
//!   spawner's open span id) on the parent thread, [`install`] adopts it
//!   on the worker. `colstore::morsel::run_morsels` does this for every
//!   pool worker, which covers threaded detection, the cluster scatter,
//!   and the repair candidate scans in one seam.
//! - **Flight recorder.** A completed root span assembles the trace and
//!   pushes it into a bounded global ring ([`ring_capacity`] entries,
//!   oldest evicted), readable via [`last_trace`] / [`recent_traces`]
//!   and served over the wire by the `Request::Trace` op. Requests
//!   slower than `SDQ_SLOW_MS` are additionally logged to stderr with
//!   their rendered tree — the slow-request log.
//!
//! Spans created while no trace is installed on the thread are no-ops,
//! so backends driven directly (not through `api::dispatch`, which opens
//! the root span) stay untraced and unbuffered even when tracing is on.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Display;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Flight-recorder depth: completed request traces retained.
const RING: usize = 16;

// ------------------------------------------------------------------ gating

fn env_truthy(name: &'static str) -> bool {
    crate::env::flag(name).unwrap_or(false)
}

fn env_slow_us() -> Option<u64> {
    crate::env::parse::<u64>("SDQ_SLOW_MS").map(|ms| ms.saturating_mul(1_000))
}

fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    // SDQ_SLOW_MS implies tracing: outlier capture cannot work without
    // spans being recorded.
    FLAG.get_or_init(|| AtomicBool::new(env_truthy("SDQ_TRACE") || env_slow_us().is_some()))
}

/// Is tracing on? One relaxed load — this is the whole cost of a span
/// site while tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Turn tracing on or off process-wide (overrides `SDQ_TRACE`).
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

fn slow_us() -> &'static AtomicU64 {
    static T: OnceLock<AtomicU64> = OnceLock::new();
    T.get_or_init(|| AtomicU64::new(env_slow_us().unwrap_or(u64::MAX)))
}

/// Set (or clear) the slow-request threshold, overriding `SDQ_SLOW_MS`.
pub fn set_slow_ms(ms: Option<u64>) {
    slow_us().store(
        ms.map(|m| m.saturating_mul(1_000)).unwrap_or(u64::MAX),
        Ordering::Relaxed,
    );
    if ms.is_some() {
        set_enabled(true);
    }
}

// ------------------------------------------------------------- span records

/// One completed span. Timestamps are microseconds since the root span's
/// start, measured on the trace's single `Instant` clock — comparable
/// across threads.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Trace-unique id (1-based; the root is the span whose `parent` is 0).
    pub id: u64,
    /// Parent span id; 0 for the root.
    pub parent: u64,
    /// Span name, e.g. `api.detect`, `shard.export`, `detect.cfd`.
    pub name: String,
    /// Start offset in microseconds from the trace start.
    pub start_us: u64,
    /// End offset in microseconds from the trace start.
    pub end_us: u64,
    /// Ordinal of the thread that ran the span (0 = the request thread).
    pub thread: u64,
    /// Key/value attributes attached while the span was open.
    pub attrs: Vec<(String, String)>,
}

impl SpanRecord {
    /// Wall time of the span in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One completed request trace: the span tree of a single dispatched
/// request, root first, remaining spans sorted by start time.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Root span name (`api.<kind>`).
    pub name: String,
    /// Root span wall time in microseconds.
    pub duration_us: u64,
    /// All spans of the request, across every participating thread.
    pub spans: Vec<SpanRecord>,
}

impl TraceReport {
    /// The root span (parent id 0).
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent == 0)
    }

    /// Direct children of span `id`, in start order.
    pub fn children(&self, id: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == id).collect()
    }

    /// Render the span tree as an indented text block:
    ///
    /// ```text
    /// api.detect                      4123µs
    ///   cluster.scatter               3800µs
    ///     shard.export                 950µs  shard=0
    ///       detect.cfd                 310µs  cfd=2 memo=recompute path=dense
    /// ```
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if let Some(root) = self.root() {
            self.render_span(root, 0, &mut out);
        }
        out
    }

    fn render_span(&self, s: &SpanRecord, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let name_col = format!("{:indent$}{}", "", s.name, indent = depth * 2);
        let _ = write!(out, "{name_col:<34} {:>9}µs", s.duration_us());
        if s.thread != 0 {
            let _ = write!(out, "  t{}", s.thread);
        }
        for (k, v) in &s.attrs {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        for c in self.children(s.id) {
            self.render_span(c, depth + 1, out);
        }
    }

    /// Export as Chrome trace-event JSON (an array of complete `"ph":"X"`
    /// events), loadable in `chrome://tracing` or Perfetto. Timestamps
    /// and durations are microseconds; `tid` is the span's thread
    /// ordinal, attributes land in `args`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"sdq\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
                json_escape(&s.name),
                s.start_us,
                s.duration_us(),
                s.thread
            ));
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str("}}");
        }
        out.push(']');
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// -------------------------------------------------------- trace machinery

/// State shared by every thread participating in one trace. Ids come off
/// one atomic; completed per-thread buffers drain into `sink`.
struct TraceShared {
    t0: Instant,
    next_id: AtomicU64,
    next_thread: AtomicU64,
    sink: Mutex<Vec<SpanRecord>>,
}

/// An open (not yet completed) span on some thread's stack.
struct OpenSpan {
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    attrs: Vec<(String, String)>,
}

/// Per-thread trace state: the installed trace (if any), the open-span
/// stack, and the lock-free buffer of completed spans.
#[derive(Default)]
struct Tls {
    trace: Option<Arc<TraceShared>>,
    thread: u64,
    parent: u64,
    open: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls::default());
}

/// RAII span guard. Inactive (`id == 0`) when tracing is off or no trace
/// is installed on this thread; then every method is a no-op.
#[must_use = "a span measures until dropped"]
pub struct Span {
    id: u64,
}

/// Open a span under the current thread's innermost open span. Names
/// should be `'static` dotted paths (`detect.cfd`); dynamic detail goes
/// into attributes, not the name.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { id: 0 };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> Span {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let Some(tr) = &t.trace else {
            return Span { id: 0 };
        };
        let id = tr.next_id.fetch_add(1, Ordering::Relaxed);
        let start_us = tr.t0.elapsed().as_micros() as u64;
        let parent = t.parent;
        t.open.push(OpenSpan {
            id,
            parent,
            name,
            start_us,
            attrs: Vec::new(),
        });
        t.parent = id;
        Span { id }
    })
}

impl Span {
    /// Is this guard recording?
    pub fn active(&self) -> bool {
        self.id != 0
    }

    /// Attach a key/value attribute to this span.
    pub fn attr(&self, key: &str, value: impl Display) {
        if self.id == 0 {
            return;
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(o) = t.open.iter_mut().rev().find(|o| o.id == self.id) {
                o.attrs.push((key.to_string(), value.to_string()));
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            let Some(tr) = t.trace.as_ref().map(Arc::clone) else {
                return;
            };
            let Some(pos) = t.open.iter().rposition(|o| o.id == self.id) else {
                return;
            };
            let end_us = tr.t0.elapsed().as_micros() as u64;
            // Spans are guard-scoped, so closes are LIFO; any deeper
            // frames still open (a leaked guard) close with this one.
            let thread = t.thread;
            let closed: Vec<OpenSpan> = t.open.drain(pos..).collect();
            t.parent = closed[0].parent;
            for o in closed {
                t.done.push(SpanRecord {
                    id: o.id,
                    parent: o.parent,
                    name: o.name.to_string(),
                    start_us: o.start_us,
                    end_us,
                    thread,
                    attrs: o.attrs,
                });
            }
        });
    }
}

/// Attach an attribute to the current thread's innermost open span — the
/// deep-code escape hatch for sites that don't hold the guard (e.g. the
/// grouping-path dispatch tagging its caller's per-CFD span).
#[inline]
pub fn note(key: &str, value: impl Display) {
    if !enabled() {
        return;
    }
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if let Some(o) = t.open.last_mut() {
            o.attrs.push((key.to_string(), value.to_string()));
        }
    });
}

// ----------------------------------------------------------- propagation

/// A capture of the current trace position, cheap to clone and `Send` —
/// hand it to a worker thread and [`install`] it there.
#[derive(Clone)]
pub struct TraceHandle {
    shared: Arc<TraceShared>,
    parent: u64,
}

/// Capture the current thread's trace position for propagation, or `None`
/// when tracing is off / no trace is installed.
pub fn current() -> Option<TraceHandle> {
    if !enabled() {
        return None;
    }
    TLS.with(|t| {
        let t = t.borrow();
        t.trace.as_ref().map(|tr| TraceHandle {
            shared: Arc::clone(tr),
            parent: t.parent,
        })
    })
}

/// Guard returned by [`install`]: on drop, drains the worker's span
/// buffer into the trace's shared sink and clears the thread's state.
#[must_use = "dropping the guard publishes the worker's spans"]
pub struct InstallGuard {
    active: bool,
}

/// Adopt a captured trace position on this thread: spans opened here
/// parent under the capturing thread's open span. A `None` handle — or a
/// thread that already has a trace installed (the inline serial path) —
/// yields an inert guard.
pub fn install(handle: Option<&TraceHandle>) -> InstallGuard {
    let Some(h) = handle else {
        return InstallGuard { active: false };
    };
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        if t.trace.is_some() {
            return InstallGuard { active: false };
        }
        t.thread = h.shared.next_thread.fetch_add(1, Ordering::Relaxed);
        t.parent = h.parent;
        t.trace = Some(Arc::clone(&h.shared));
        InstallGuard { active: true }
    })
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(tr) = t.trace.take() {
                let done = std::mem::take(&mut t.done);
                if !done.is_empty() {
                    tr.sink
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(done);
                }
            }
            t.open.clear();
            t.parent = 0;
            t.thread = 0;
        });
    }
}

// ------------------------------------------------------------- root spans

/// Guard for one traced request: opens the trace and its root span; on
/// drop, assembles the [`TraceReport`] and records it in the flight
/// recorder (and the slow-request log if over threshold).
#[must_use = "the request trace completes when dropped"]
pub struct RequestTrace {
    shared: Option<Arc<TraceShared>>,
    root: Option<Span>,
}

/// Begin a traced request on this thread (the root span of a new trace).
/// Inert when tracing is off; on a thread that already carries a trace
/// (nested dispatch), degrades to a plain child span.
pub fn root(name: &'static str) -> RequestTrace {
    if !enabled() {
        return RequestTrace {
            shared: None,
            root: None,
        };
    }
    let nested = TLS.with(|t| t.borrow().trace.is_some());
    if nested {
        return RequestTrace {
            shared: None,
            root: Some(span(name)),
        };
    }
    let shared = Arc::new(TraceShared {
        t0: Instant::now(),
        next_id: AtomicU64::new(1),
        next_thread: AtomicU64::new(1),
        sink: Mutex::new(Vec::new()),
    });
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.trace = Some(Arc::clone(&shared));
        t.thread = 0;
        t.parent = 0;
    });
    RequestTrace {
        shared: Some(shared),
        root: Some(span(name)),
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        // Close the root span first so it lands in this thread's buffer.
        drop(self.root.take());
        let Some(shared) = self.shared.take() else {
            return;
        };
        let mut spans = TLS.with(|t| {
            let mut t = t.borrow_mut();
            t.trace = None;
            t.open.clear();
            t.parent = 0;
            std::mem::take(&mut t.done)
        });
        spans.extend(
            shared
                .sink
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .drain(..),
        );
        // Root first, then start order; ids break ties deterministically.
        spans.sort_by_key(|s| (s.parent != 0, s.start_us, s.id));
        let (name, duration_us) = spans
            .first()
            .map(|r| (r.name.clone(), r.duration_us()))
            .unwrap_or_default();
        let report = TraceReport {
            name,
            duration_us,
            spans,
        };
        if duration_us >= slow_us().load(Ordering::Relaxed) {
            eprintln!(
                "[sdq-trace] slow request: {} took {:.3} ms ({} spans)\n{}",
                report.name,
                duration_us as f64 / 1e3,
                report.spans.len(),
                report.render_tree()
            );
        }
        record(report);
    }
}

// -------------------------------------------------------- flight recorder

fn recorder() -> &'static Mutex<VecDeque<TraceReport>> {
    static R: OnceLock<Mutex<VecDeque<TraceReport>>> = OnceLock::new();
    R.get_or_init(|| Mutex::new(VecDeque::with_capacity(RING)))
}

fn record(report: TraceReport) {
    let mut ring = recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if ring.len() == RING {
        ring.pop_front();
    }
    ring.push_back(report);
}

/// The flight recorder's depth (completed traces retained).
pub fn ring_capacity() -> usize {
    RING
}

/// The most recently completed request trace, if any.
pub fn last_trace() -> Option<TraceReport> {
    recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .back()
        .cloned()
}

/// All retained traces, oldest first (at most [`ring_capacity`]).
pub fn recent_traces() -> Vec<TraceReport> {
    recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect()
}

/// Drop every retained trace (tests and demos that want a clean ring).
pub fn clear() {
    recorder()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The enabled flag and the recorder are process-global; tests
    // serialize on one lock and leave tracing enabled for the module.
    fn lock() -> MutexGuard<'static, ()> {
        static M: OnceLock<Mutex<()>> = OnceLock::new();
        M.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _g = lock();
        set_enabled(false);
        clear();
        {
            let _r = root("api.noop");
            let _s = span("child");
        }
        assert!(last_trace().is_none());
        set_enabled(true);
    }

    #[test]
    fn root_and_children_form_one_tree() {
        let _g = lock();
        set_enabled(true);
        {
            let _r = root("api.demo");
            let s = span("step.one");
            s.attr("k", "v");
            drop(s);
            let _s2 = span("step.two");
            note("deep", 7);
        }
        let t = last_trace().expect("trace recorded");
        assert_eq!(t.name, "api.demo");
        let root_span = t.root().expect("root present");
        assert_eq!(root_span.name, "api.demo");
        let kids = t.children(root_span.id);
        assert_eq!(kids.len(), 2);
        assert_eq!(kids[0].name, "step.one");
        assert_eq!(kids[0].attr("k"), Some("v"));
        assert_eq!(kids[1].attr("deep"), Some("7"));
        for s in &t.spans {
            assert!(s.end_us >= s.start_us, "span is balanced");
        }
    }

    #[test]
    fn propagation_parents_worker_spans_under_the_capture_point() {
        let _g = lock();
        set_enabled(true);
        {
            let _r = root("api.fanout");
            let outer = span("pool.run");
            let handle = current().expect("capturable");
            let threads: Vec<_> = (0..3)
                .map(|i| {
                    let h = handle.clone();
                    std::thread::spawn(move || {
                        let _t = install(Some(&h));
                        let s = span("worker.step");
                        s.attr("w", i);
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            drop(outer);
        }
        let t = last_trace().unwrap();
        let pool = t.spans.iter().find(|s| s.name == "pool.run").unwrap();
        let workers: Vec<_> = t.spans.iter().filter(|s| s.name == "worker.step").collect();
        assert_eq!(workers.len(), 3);
        for w in workers {
            assert_eq!(w.parent, pool.id, "worker spans parent at the capture");
            assert_ne!(w.thread, 0, "worker thread ordinals are distinct from root");
            assert!(w.start_us >= pool.start_us && w.end_us <= pool.end_us);
        }
    }

    #[test]
    fn ring_is_bounded() {
        let _g = lock();
        set_enabled(true);
        clear();
        for _ in 0..(RING + 5) {
            let _r = root("api.tick");
        }
        let all = recent_traces();
        assert_eq!(all.len(), RING, "ring holds exactly its capacity");
        assert!(last_trace().is_some());
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let t = TraceReport {
            name: "api.x".into(),
            duration_us: 10,
            spans: vec![SpanRecord {
                id: 1,
                parent: 0,
                name: "api.x".into(),
                start_us: 0,
                end_us: 10,
                thread: 0,
                attrs: vec![("note".into(), "a\"b\\c".into())],
            }],
        };
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\\\"b\\\\c"));
        assert!(j.contains("\"dur\":10"));
    }

    #[test]
    fn render_tree_indents_children() {
        let t = TraceReport {
            name: "api.r".into(),
            duration_us: 9,
            spans: vec![
                SpanRecord {
                    id: 1,
                    name: "api.r".into(),
                    end_us: 9,
                    ..SpanRecord::default()
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    name: "inner".into(),
                    start_us: 1,
                    end_us: 5,
                    attrs: vec![("k".into(), "v".into())],
                    ..SpanRecord::default()
                },
            ],
        };
        let txt = t.render_tree();
        assert!(txt.contains("api.r"));
        assert!(txt.contains("  inner"));
        assert!(txt.contains("k=v"));
    }
}
