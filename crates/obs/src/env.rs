//! Unified `SDQ_*` environment-knob parsing.
//!
//! Every configuration knob in the workspace used to parse its own
//! environment variable with a private `and_then(parse).ok()` chain that
//! *silently* fell back to the default on a malformed value — a typo like
//! `SDQ_DETECT_THREADS=fuor` quietly ran the serial path. This module is
//! the one funnel all of them go through now:
//!
//! * an **unset** variable is simply absent (`None`) — defaults apply
//!   quietly, as before;
//! * a **malformed** value (unparsable, or failing the knob's validity
//!   predicate, e.g. `0` where a positive count is required) also yields
//!   `None`, but logs a loud warning to stderr — **once per variable per
//!   process**, so a knob read in a hot loop cannot spam.
//!
//! Call sites keep their own `OnceLock` read-once caching where they had
//! it; this module only standardizes the parse-and-warn step.

use std::collections::HashSet;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

/// Variables already warned about (one loud line per variable per process).
fn warned() -> &'static Mutex<HashSet<&'static str>> {
    static WARNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Log the malformed-value warning for `name`, once per process.
fn warn_once(name: &'static str, value: &str, expected: &str) {
    let mut seen = warned().lock().unwrap_or_else(|e| e.into_inner());
    if seen.insert(name) {
        eprintln!(
            "WARNING: ignoring malformed environment variable {name}={value:?} \
             (expected {expected}); using the default instead"
        );
    }
}

/// Test hook: forget which variables have warned, so a test can observe
/// the once-per-process behavior deterministically.
#[cfg(test)]
fn reset_warned() {
    warned().lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// The raw string value of `name`, if set (never warns — any string is a
/// valid string).
pub fn string(name: &'static str) -> Option<String> {
    std::env::var(name).ok()
}

/// Parse `name` as a `T`. Unset → `None`; set but unparsable → loud
/// one-time warning and `None`.
pub fn parse<T: FromStr>(name: &'static str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            warn_once(name, &raw, std::any::type_name::<T>());
            None
        }
    }
}

/// Parse `name` as a **positive** count (`usize >= 1`). A `0` is as
/// malformed as `fuor` — thread pools, queue depths and chunk sizes have
/// no zero-sized meaning — and warns the same way.
pub fn positive(name: &'static str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse::<usize>() {
        Ok(v) if v >= 1 => Some(v),
        _ => {
            warn_once(name, &raw, "a positive integer");
            None
        }
    }
}

/// Parse `name` as an on/off flag: `1`/`true`/`yes`/`on` are true,
/// `0`/`false`/`no`/`off` are false (case-insensitive), anything else
/// warns and reads as unset.
pub fn flag(name: &'static str) -> Option<bool> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Some(true),
        "0" | "false" | "no" | "off" => Some(false),
        _ => {
            warn_once(
                name,
                &raw,
                "a boolean flag (1/true/yes/on or 0/false/no/off)",
            );
            None
        }
    }
}

/// Parse `name` as a byte size: a plain integer, optionally suffixed with
/// `k`/`m`/`g` (case-insensitive, powers of 1024) — `SDQ_MEM_BUDGET=64m`.
/// Zero is valid (it means "spill everything sealed").
pub fn bytes(name: &'static str) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    let t = raw.trim();
    let (digits, shift) = match t.as_bytes().last().map(u8::to_ascii_lowercase) {
        Some(b'k') => (&t[..t.len() - 1], 10),
        Some(b'm') => (&t[..t.len() - 1], 20),
        Some(b'g') => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    match digits.trim().parse::<usize>() {
        Ok(v) => Some(v << shift),
        Err(_) => {
            warn_once(name, &raw, "a byte size like 8388608, 8192k, 64m or 1g");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Env mutation is process-global: serialize these tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: OnceLock<StdMutex<()>> = OnceLock::new();
        L.get_or_init(|| StdMutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unset_is_none_without_warning() {
        let _l = lock();
        reset_warned();
        assert_eq!(parse::<usize>("SDQ_TEST_UNSET"), None);
        assert!(!warned().lock().unwrap().contains("SDQ_TEST_UNSET"));
    }

    #[test]
    fn malformed_warns_once_and_falls_back() {
        let _l = lock();
        reset_warned();
        std::env::set_var("SDQ_TEST_BAD", "fuor");
        assert_eq!(parse::<usize>("SDQ_TEST_BAD"), None);
        assert!(warned().lock().unwrap().contains("SDQ_TEST_BAD"));
        // Second read: still None, and the warned set shows one entry —
        // warn_once only prints on first insertion.
        assert_eq!(parse::<usize>("SDQ_TEST_BAD"), None);
        std::env::remove_var("SDQ_TEST_BAD");
    }

    #[test]
    fn positive_rejects_zero() {
        let _l = lock();
        reset_warned();
        std::env::set_var("SDQ_TEST_ZERO", "0");
        assert_eq!(positive("SDQ_TEST_ZERO"), None, "0 is not a valid count");
        assert!(warned().lock().unwrap().contains("SDQ_TEST_ZERO"));
        std::env::set_var("SDQ_TEST_ZERO", "3");
        assert_eq!(positive("SDQ_TEST_ZERO"), Some(3));
        std::env::remove_var("SDQ_TEST_ZERO");
    }

    #[test]
    fn flags_cover_both_polarities() {
        let _l = lock();
        reset_warned();
        for (v, want) in [
            ("1", Some(true)),
            ("on", Some(true)),
            ("YES", Some(true)),
            ("0", Some(false)),
            ("off", Some(false)),
            ("maybe", None),
        ] {
            std::env::set_var("SDQ_TEST_FLAG", v);
            assert_eq!(flag("SDQ_TEST_FLAG"), want, "value {v:?}");
        }
        std::env::remove_var("SDQ_TEST_FLAG");
    }

    #[test]
    fn byte_sizes_take_suffixes() {
        let _l = lock();
        reset_warned();
        for (v, want) in [
            ("4096", Some(4096usize)),
            ("8k", Some(8 << 10)),
            ("64M", Some(64 << 20)),
            ("1g", Some(1 << 30)),
            ("10 m", Some(10 << 20)),
            ("lots", None),
        ] {
            std::env::set_var("SDQ_TEST_BYTES", v);
            assert_eq!(bytes("SDQ_TEST_BYTES"), want, "value {v:?}");
        }
        std::env::remove_var("SDQ_TEST_BYTES");
    }
}
