//! `obs` — the telemetry core of semandaq.
//!
//! A self-contained, zero-external-dependency metrics layer (the build
//! environment has no registry access, matching the `crates/compat`
//! discipline) built from three primitives:
//!
//! - [`Counter`] — a monotonically increasing `AtomicU64`,
//! - [`Gauge`] — a settable `AtomicI64` for point-in-time levels,
//! - [`Histogram`] — a log₂-bucketed distribution with atomic count,
//!   sum, and max, read out as p50/p95/p99/max,
//!
//! all hanging off a sharded global [`Registry`]. Call sites hold cheap
//! `Arc` handles (typically cached in a `OnceLock` so the name hash and
//! shard lock are paid once per process, not per increment); the hot-path
//! cost of an increment is one relaxed atomic add.
//!
//! Latency is captured with [`SpanTimer`], an RAII guard that records
//! elapsed nanoseconds into its histogram on drop:
//!
//! ```
//! let _span = obs::span("demo_section_ns");
//! // ... timed work ...
//! drop(_span); // or fall out of scope
//! assert_eq!(obs::histogram("demo_section_ns").count(), 1);
//! ```
//!
//! [`snapshot()`] freezes the whole registry into a serializable
//! [`MetricsReport`] (plain `String`/`u64`/`i64` fields, sorted by name),
//! and [`render_text()`] prints it in Prometheus text-exposition style.
//! Metric names may embed a literal label set (`requests_total{kind="x"}`);
//! histogram readouts splice their `quantile` label into it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod env;
pub mod trace;

pub use trace::{SpanRecord, TraceReport};

/// A monotonically increasing counter. All operations are relaxed
/// atomics: increments from racing threads never lose counts, and
/// readers see some recent value — exactly the guarantee metrics need.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time level: signed, settable, steppable.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the gauge to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Step the gauge by a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Bucket count for the log₂ histogram: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]` — 65 buckets
/// cover the full `u64` range with ≤ 2x relative error per readout.
const N_BUCKETS: usize = 65;

/// A log₂-bucketed distribution. Recording is two relaxed adds plus a
/// relaxed `fetch_max`; readout walks the 65 buckets to estimate
/// quantiles (reported as the bucket's inclusive upper bound, clamped to
/// the observed max, so estimates are exact for the top of the range and
/// never overshoot).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Fold one observation in.
    #[inline]
    pub fn record(&self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize; // v = 0 lands in bucket 0
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation, 0 if empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Freeze this histogram into a named snapshot with quantile readout.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = self.max();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Inclusive upper bound of bucket i, clamped to max.
                    let upper = if i == 0 {
                        0
                    } else if i >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    };
                    return upper.min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum(),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
            max,
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// RAII span timer: records elapsed nanoseconds into its histogram when
/// dropped. Construct via [`span()`] (registry lookup) or
/// [`SpanTimer::new`] with a cached histogram handle.
#[must_use = "a span records its duration on drop; binding it to _ drops it immediately"]
pub struct SpanTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl SpanTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        SpanTimer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos();
        self.hist.record(ns.min(u64::MAX as u128) as u64);
    }
}

/// One named metric slot in a registry shard.
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Shard count: a small power of two so concurrent registrations of
/// different names rarely contend on the same lock.
const SHARDS: usize = 8;

/// A sharded name → metric map. Registration (`counter`/`gauge`/
/// `histogram`) is get-or-create and returns a shared handle; the
/// per-call cost is one FNV hash plus one shard mutex, which call sites
/// amortize away by caching the handle.
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

/// FNV-1a: tiny, allocation-free, good enough to spread names over 8
/// shards.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }
}

impl Registry {
    fn shard(&self, name: &str) -> std::sync::MutexGuard<'_, HashMap<String, Metric>> {
        let idx = (fnv1a(name) % SHARDS as u64) as usize;
        // A poisoned shard only means some thread panicked while holding
        // the lock; the map itself is always in a consistent state.
        self.shards[idx]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut shard = self.shard(name);
        match shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' is already registered with a different kind"),
        }
    }

    /// Freeze every metric into a [`MetricsReport`], sorted by name
    /// within each kind so output (and wire encoding) is deterministic.
    pub fn snapshot(&self) -> MetricsReport {
        let mut report = MetricsReport::default();
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for (name, metric) in shard.iter() {
                match metric {
                    Metric::Counter(c) => report.counters.push((name.clone(), c.get())),
                    Metric::Gauge(g) => report.gauges.push((name.clone(), g.get())),
                    Metric::Histogram(h) => report.histograms.push(h.snapshot(name)),
                }
            }
        }
        report.counters.sort();
        report.gauges.sort();
        report.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        report
    }

    /// Prometheus-style text exposition of the current state.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// Zero every registered metric **in place**.
    ///
    /// Instrumented modules cache their `Arc<Counter>`/`Arc<Histogram>`
    /// handles in module-local `OnceLock`s (one name hash + shard lock
    /// per process, not per increment), so a reset MUST NOT remove or
    /// replace registry entries: a cached handle pointing at an orphaned
    /// metric would keep counting into an object [`Registry::snapshot`]
    /// can no longer see, silently zeroing that module's telemetry for
    /// the rest of the process. Resetting therefore zeroes each metric
    /// where it stands — every handle cached before the reset stays
    /// live, and increments through it are visible to the next
    /// snapshot. Pinned by `reset_keeps_cached_module_handles_live` in
    /// `tests/metrics_invariants.rs`.
    pub fn reset(&self) {
        for shard in &self.shards {
            let shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for metric in shard.values() {
                match metric {
                    Metric::Counter(c) => c.reset(),
                    Metric::Gauge(g) => g.reset(),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Get or create a counter in the [`global()`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or create a gauge in the [`global()`] registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get or create a histogram in the [`global()`] registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Start an RAII span recording into the global histogram `name`.
pub fn span(name: &str) -> SpanTimer {
    SpanTimer::new(histogram(name))
}

/// Snapshot the [`global()`] registry.
pub fn snapshot() -> MetricsReport {
    global().snapshot()
}

/// Text exposition of the [`global()`] registry.
pub fn render_text() -> String {
    global().render_text()
}

/// Zero every metric in the [`global()`] registry (test/bench helper).
/// Zeroes in place — cached handles stay live; see [`Registry::reset`].
pub fn reset() {
    global().reset()
}

/// A frozen histogram: count, sum, and quantile readout. All fields are
/// plain integers so the report serializes exactly through any codec.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
    pub max: u64,
}

/// A frozen registry: everything the process has measured, sorted by
/// name, in serialization-friendly form. This is what the wire
/// protocol's `Request::Metrics` returns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

/// Split `requests_total{kind="x"}` into (`requests_total`,
/// `{kind="x"}`); names without labels split into (name, "").
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Splice an extra `key="value"` label into a (possibly empty) label set.
fn with_label(labels: &str, key: &str, value: &str) -> String {
    if labels.is_empty() {
        format!("{{{key}=\"{value}\"}}")
    } else {
        let inner = labels
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .unwrap_or(labels);
        format!("{{{inner},{key}=\"{value}\"}}")
    }
}

impl MetricsReport {
    /// Render in Prometheus text-exposition style: one `name value` line
    /// per counter and gauge; histograms expand to `_count`/`_sum`/`_max`
    /// lines plus `quantile`-labelled p50/p95/p99 lines.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name} {v}\n"));
        }
        for h in &self.histograms {
            let (stem, labels) = split_labels(&h.name);
            out.push_str(&format!("{stem}_count{labels} {}\n", h.count));
            out.push_str(&format!("{stem}_sum{labels} {}\n", h.sum));
            out.push_str(&format!("{stem}_max{labels} {}\n", h.max));
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                out.push_str(&format!(
                    "{stem}{} {v}\n",
                    with_label(labels, "quantile", q)
                ));
            }
        }
        out
    }

    /// Value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-global registry; use distinct names per
    // test so they cannot interfere under the parallel test runner.

    #[test]
    fn counter_counts() {
        let c = counter("t_counter_counts");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Get-or-create returns the same underlying slot.
        assert_eq!(counter("t_counter_counts").get(), 42);
    }

    #[test]
    fn gauge_steps_and_sets() {
        let g = gauge("t_gauge_steps");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot("t");
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.max, 1000);
        // Rank 500 lands in bucket 9 (values 256..=511) → upper bound 511.
        assert_eq!(s.p50, 511);
        // Ranks 950 and 990 land in bucket 10 (512..=1023), clamped to max.
        assert_eq!(s.p95, 1000);
        assert_eq!(s.p99, 1000);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::default();
        let empty = h.snapshot("t");
        assert_eq!((empty.count, empty.p50, empty.max), (0, 0, 0));
        h.record(0);
        let s = h.snapshot("t");
        assert_eq!((s.count, s.p50, s.max), (1, 0, 0));
    }

    #[test]
    fn histogram_full_range_does_not_overflow() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let s = h.snapshot("t");
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, u64::MAX);
    }

    #[test]
    fn span_records_elapsed_ns() {
        let h = histogram("t_span_ns");
        {
            let _span = SpanTimer::new(Arc::clone(&h));
            std::hint::black_box(0);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        counter("t_snap_b").inc();
        counter("t_snap_a").add(2);
        histogram("t_snap_h").record(7);
        let report = snapshot();
        let names: Vec<&str> = report.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(report.counter("t_snap_a"), Some(2));
        assert_eq!(report.histogram("t_snap_h").map(|h| h.count), Some(1));
    }

    #[test]
    fn render_text_exposition() {
        counter("t_render_total{kind=\"x\"}").add(3);
        histogram("t_render_ns{kind=\"x\"}").record(100);
        let text = render_text();
        assert!(text.contains("t_render_total{kind=\"x\"} 3\n"));
        assert!(text.contains("t_render_ns_count{kind=\"x\"} 1\n"));
        assert!(text.contains("t_render_ns{kind=\"x\",quantile=\"0.5\"} "));
        // Unlabelled histograms get a fresh label set; the quantile
        // estimate (bucket upper bound 7) clamps to the observed max.
        histogram("t_render_plain_ns").record(5);
        assert!(render_text().contains("t_render_plain_ns{quantile=\"0.5\"} 5\n"));
    }

    #[test]
    fn kind_collision_panics() {
        // A local registry: the deliberate panic must not poison shards
        // other tests share.
        let r = Registry::default();
        r.counter("t_collision");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.gauge("t_collision")));
        assert!(err.is_err());
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let c = counter("t_reset_c");
        let h = histogram("t_reset_h");
        c.add(5);
        h.record(9);
        // Zero only these two slots' worth: global reset is fine — other
        // tests assert on deltas of their own names after their writes.
        c.reset();
        h.reset();
        assert_eq!(c.get(), 0);
        let s = h.snapshot("t_reset_h");
        assert_eq!((s.count, s.sum, s.max, s.p50), (0, 0, 0, 0));
        // The handle still feeds the same registry slot.
        c.inc();
        assert_eq!(snapshot().counter("t_reset_c"), Some(1));
    }
}
