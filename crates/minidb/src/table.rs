//! Row storage with stable row ids.
//!
//! Rows live in an append-only arena; deletes leave tombstones so a `RowId`
//! handed out once stays valid for the lifetime of the table (it either
//! designates the same logical row or nothing). Stable ids are what lets the
//! error detector attribute violations to tuples and the repair engine edit
//! cells in place — mirroring how Semandaq keys violations by physical row.
//!
//! Every successful mutation bumps the table's **epoch**, a monotone
//! counter that derived structures (columnar snapshots, detector caches)
//! use for O(1) freshness checks: equal epochs mean the table content is
//! bit-identical to when the structure was built. The epoch is a property
//! of one table *lineage* — cloning copies the current value, so two
//! clones mutated independently can reach the same epoch with different
//! content; a cache must observe a single table instance.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// Stable identifier of a row within one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl RowId {
    /// The arena slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A heap table: schema + tombstoned row arena.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Option<Vec<Value>>>,
    live: usize,
    epoch: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            live: 0,
            epoch: 0,
        }
    }

    /// The mutation epoch: bumped by every successful `insert`, `delete`,
    /// `update_cell` and `update_row`. Two reads of the same table instance
    /// returning the same epoch are guaranteed to have seen identical
    /// content (see the module docs for the clone caveat).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff there are no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of arena slots (live + tombstones); row ids are `< capacity`.
    pub fn arena_size(&self) -> usize {
        self.rows.len()
    }

    /// Insert a row (validated against the schema); returns its stable id.
    pub fn insert(&mut self, row: Vec<Value>) -> DbResult<RowId> {
        let row = self.schema.check_row(row)?;
        let id = RowId(self.rows.len() as u64);
        self.rows.push(Some(row));
        self.live += 1;
        self.epoch += 1;
        Ok(id)
    }

    /// Insert a row at a *chosen* arena slot, which must lie at or beyond
    /// the current arena end (slots skipped over become permanent
    /// tombstones). This is how a shard table of a partitioned cluster
    /// stores rows under their **global** row ids: every shard allocates
    /// from one shared, monotonically growing id space, so violation
    /// reports assembled across shards carry the same ids a single-node
    /// table would have assigned — no translation layer.
    pub fn insert_at(&mut self, id: RowId, row: Vec<Value>) -> DbResult<()> {
        let row = self.schema.check_row(row)?;
        if id.index() < self.rows.len() {
            // Reusing an existing slot — live or tombstoned — would break
            // row-id stability; ids move strictly forward.
            return Err(DbError::BadRowId(id.0));
        }
        self.rows.resize(id.index(), None);
        self.rows.push(Some(row));
        self.live += 1;
        self.epoch += 1;
        Ok(())
    }

    /// Advance the id allocator so the next [`Table::insert`] assigns
    /// `RowId(next)`, tombstoning the skipped slots. A `next` at or below
    /// the current arena end is a no-op — the allocator only moves
    /// forward. This is the restore-side twin of [`Table::insert_at`]: a
    /// checkpoint records where the allocator stood (which may be past
    /// the last live row, when the newest rows were deleted), and replay
    /// is only id-deterministic if the restored table resumes from the
    /// same position.
    pub fn reserve(&mut self, next: u64) {
        if next as usize > self.rows.len() {
            self.rows.resize(next as usize, None);
            self.epoch += 1;
        }
    }

    /// Insert a run of rows at chosen arena slots — the bulk form of
    /// [`Table::insert_at`]. Ids must be strictly ascending and lie at or
    /// beyond the current arena end. Every row is validated before any is
    /// written (a bad row fails the whole run with the table untouched);
    /// the arena is extended once; the epoch advances by one per row, so
    /// derived caches can replay the run with the usual per-mutation
    /// epoch arithmetic.
    pub fn insert_at_many(&mut self, rows: Vec<(RowId, Vec<Value>)>) -> DbResult<()> {
        let mut checked = Vec::with_capacity(rows.len());
        let mut next = self.rows.len();
        for (id, row) in rows {
            if id.index() < next {
                return Err(DbError::BadRowId(id.0));
            }
            next = id.index() + 1;
            checked.push((id, self.schema.check_row(row)?));
        }
        let Some(&(last, _)) = checked.last() else {
            return Ok(());
        };
        self.rows.resize(last.index() + 1, None);
        self.live += checked.len();
        self.epoch += checked.len() as u64;
        for (id, row) in checked {
            self.rows[id.index()] = Some(row);
        }
        Ok(())
    }

    /// Fetch a live row.
    pub fn get(&self, id: RowId) -> DbResult<&[Value]> {
        self.rows
            .get(id.index())
            .and_then(|r| r.as_deref())
            .ok_or(DbError::BadRowId(id.0))
    }

    /// Fetch a single cell of a live row.
    pub fn cell(&self, id: RowId, col: usize) -> DbResult<&Value> {
        let row = self.get(id)?;
        row.get(col)
            .ok_or_else(|| DbError::UnknownColumn(format!("column index {col}")))
    }

    /// Delete a live row; returns the removed values.
    pub fn delete(&mut self, id: RowId) -> DbResult<Vec<Value>> {
        let slot = self
            .rows
            .get_mut(id.index())
            .ok_or(DbError::BadRowId(id.0))?;
        let row = slot.take().ok_or(DbError::BadRowId(id.0))?;
        self.live -= 1;
        self.epoch += 1;
        Ok(row)
    }

    /// Overwrite one cell of a live row; returns the previous value.
    pub fn update_cell(&mut self, id: RowId, col: usize, value: Value) -> DbResult<Value> {
        let dtype = self.schema.column(col).dtype;
        let nullable = self.schema.column(col).nullable;
        if value.is_null() && !nullable {
            return Err(DbError::Constraint(format!(
                "NULL in NOT NULL column {}",
                self.schema.column(col).name
            )));
        }
        let value = value.coerce(dtype)?;
        let slot = self
            .rows
            .get_mut(id.index())
            .ok_or(DbError::BadRowId(id.0))?;
        let row = slot.as_mut().ok_or(DbError::BadRowId(id.0))?;
        self.epoch += 1;
        Ok(std::mem::replace(&mut row[col], value))
    }

    /// Replace a whole live row; returns the previous values.
    pub fn update_row(&mut self, id: RowId, row: Vec<Value>) -> DbResult<Vec<Value>> {
        let row = self.schema.check_row(row)?;
        let slot = self
            .rows
            .get_mut(id.index())
            .ok_or(DbError::BadRowId(id.0))?;
        let old = slot.as_mut().ok_or(DbError::BadRowId(id.0))?;
        self.epoch += 1;
        Ok(std::mem::replace(old, row))
    }

    /// Iterate live rows as `(id, row)`.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|row| (RowId(i as u64), row)))
    }

    /// All live row ids, in arena order.
    pub fn row_ids(&self) -> Vec<RowId> {
        self.iter().map(|(id, _)| id).collect()
    }

    /// True iff `id` designates a live row.
    pub fn contains(&self, id: RowId) -> bool {
        self.rows.get(id.index()).is_some_and(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn t() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
        ])
        .unwrap();
        Table::new("t", schema)
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut t = t();
        let id = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        assert_eq!(t.get(id).unwrap()[1], Value::str("a"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn row_ids_stay_stable_across_deletes() {
        let mut t = t();
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        let c = t.insert(vec![Value::Int(3), Value::str("c")]).unwrap();
        t.delete(b).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.get(b).is_err());
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
        assert_eq!(t.get(c).unwrap()[0], Value::Int(3));
        // New inserts never reuse a tombstoned id.
        let d = t.insert(vec![Value::Int(4), Value::str("d")]).unwrap();
        assert_ne!(d, b);
    }

    #[test]
    fn insert_at_skips_slots_and_rejects_reuse() {
        let mut t = t();
        t.insert_at(RowId(3), vec![Value::Int(1), Value::str("a")])
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.arena_size(), 4);
        assert_eq!(t.get(RowId(3)).unwrap()[0], Value::Int(1));
        assert_eq!(t.epoch(), 1);
        // Skipped slots are tombstones, invisible to iteration.
        assert_eq!(t.iter().count(), 1);
        assert!(t.get(RowId(1)).is_err());
        // Occupied and tombstoned slots both reject reuse; a failed
        // insert_at leaves the epoch untouched.
        assert!(t
            .insert_at(RowId(3), vec![Value::Int(2), Value::str("b")])
            .is_err());
        assert!(t
            .insert_at(RowId(1), vec![Value::Int(2), Value::str("b")])
            .is_err());
        assert_eq!(t.epoch(), 1);
        // Plain insert continues from the arena end.
        let id = t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(id, RowId(4));
        // Schema violations are rejected before any slot is claimed.
        assert!(t.insert_at(RowId(9), vec![Value::Int(3)]).is_err());
        assert_eq!(t.arena_size(), 5);
    }

    #[test]
    fn double_delete_fails() {
        let mut t = t();
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        t.delete(a).unwrap();
        assert!(t.delete(a).is_err());
    }

    #[test]
    fn update_cell_enforces_type() {
        let mut t = t();
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        assert!(t.update_cell(a, 0, Value::str("oops")).is_err());
        let old = t.update_cell(a, 1, Value::str("z")).unwrap();
        assert_eq!(old, Value::str("a"));
        assert_eq!(t.get(a).unwrap()[1], Value::str("z"));
    }

    #[test]
    fn epoch_counts_successful_mutations_only() {
        let mut t = t();
        assert_eq!(t.epoch(), 0);
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        assert_eq!(t.epoch(), 1);
        t.update_cell(a, 1, Value::str("b")).unwrap();
        assert_eq!(t.epoch(), 2);
        // Failed mutations leave the epoch untouched.
        assert!(t.update_cell(a, 0, Value::str("oops")).is_err());
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t.delete(RowId(99)).is_err());
        assert_eq!(t.epoch(), 2);
        t.update_row(a, vec![Value::Int(2), Value::str("c")])
            .unwrap();
        assert_eq!(t.epoch(), 3);
        t.delete(a).unwrap();
        assert_eq!(t.epoch(), 4);
        assert!(t.delete(a).is_err(), "double delete fails");
        assert_eq!(t.epoch(), 4);
    }

    #[test]
    fn clones_carry_the_epoch_forward() {
        let mut t = t();
        t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let c = t.clone();
        assert_eq!(c.epoch(), t.epoch());
        t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(c.epoch() + 1, t.epoch());
    }

    #[test]
    fn iter_skips_tombstones_in_order() {
        let mut t = t();
        let ids: Vec<_> = (0..5)
            .map(|i| t.insert(vec![Value::Int(i), Value::str("x")]).unwrap())
            .collect();
        t.delete(ids[1]).unwrap();
        t.delete(ids[3]).unwrap();
        let got: Vec<i64> = t.iter().map(|(_, r)| r[0].as_int().unwrap()).collect();
        assert_eq!(got, vec![0, 2, 4]);
    }
}
