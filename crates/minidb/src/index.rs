//! Secondary hash indexes over table columns.
//!
//! The incremental detector keys violation state by the left-hand-side
//! attributes of each CFD; these indexes provide the `group key → row ids`
//! mapping it needs, maintained under inserts, deletes and cell updates.

use std::collections::HashMap;

use crate::table::RowId;
use crate::value::Value;

/// A multi-map from key tuples (projections of rows onto the indexed
/// columns) to the row ids holding that key.
#[derive(Debug, Clone)]
pub struct HashIndex {
    table: String,
    columns: Vec<usize>,
    map: HashMap<Vec<Value>, Vec<RowId>>,
}

impl HashIndex {
    /// New empty index on `columns` of `table`.
    pub fn new(table: String, columns: Vec<usize>) -> HashIndex {
        HashIndex {
            table,
            columns,
            map: HashMap::new(),
        }
    }

    /// Name of the indexed table.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Indexed column positions.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &[Value]) -> Vec<Value> {
        self.columns.iter().map(|&c| row[c].clone()).collect()
    }

    /// Register `row` (full table row) under `id`.
    pub fn insert(&mut self, row: &[Value], id: RowId) {
        self.map.entry(self.key_of(row)).or_default().push(id);
    }

    /// Remove `id` previously registered with `row`'s key.
    pub fn remove(&mut self, row: &[Value], id: RowId) {
        let key = self.key_of(row);
        if let Some(ids) = self.map.get_mut(&key) {
            if let Some(pos) = ids.iter().position(|&x| x == id) {
                ids.swap_remove(pos);
            }
            if ids.is_empty() {
                self.map.remove(&key);
            }
        }
    }

    /// All row ids with exactly this key (empty slice if none).
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Iterate `(key, ids)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<RowId>)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[&str]) -> Vec<Value> {
        vals.iter().map(|v| Value::str(*v)).collect()
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = HashIndex::new("t".into(), vec![0, 2]);
        ix.insert(&row(&["uk", "x", "eh1"]), RowId(0));
        ix.insert(&row(&["uk", "y", "eh1"]), RowId(1));
        ix.insert(&row(&["us", "y", "ny"]), RowId(2));
        assert_eq!(ix.lookup(&[Value::str("uk"), Value::str("eh1")]).len(), 2);
        ix.remove(&row(&["uk", "x", "eh1"]), RowId(0));
        assert_eq!(
            ix.lookup(&[Value::str("uk"), Value::str("eh1")]),
            &[RowId(1)]
        );
        assert_eq!(ix.distinct_keys(), 2);
    }

    #[test]
    fn removing_last_id_drops_key() {
        let mut ix = HashIndex::new("t".into(), vec![0]);
        ix.insert(&row(&["a"]), RowId(7));
        ix.remove(&row(&["a"]), RowId(7));
        assert_eq!(ix.distinct_keys(), 0);
        assert!(ix.lookup(&[Value::str("a")]).is_empty());
    }

    #[test]
    fn null_keys_are_indexable() {
        let mut ix = HashIndex::new("t".into(), vec![0]);
        ix.insert(&[Value::Null], RowId(1));
        ix.insert(&[Value::Null], RowId(2));
        assert_eq!(ix.lookup(&[Value::Null]).len(), 2);
    }
}
