//! # minidb — the relational substrate for the Semandaq reproduction
//!
//! An in-memory relational engine with a SQL subset sized exactly for the
//! needs of a CFD-based data-quality system:
//!
//! * typed tables with **stable row ids** (tombstoned arena) so violations
//!   and repairs can be attributed to physical tuples;
//! * a SQL front end (lexer → parser → planner → executor) covering
//!   `SELECT` with joins (`INNER`/`LEFT`/cross), `WHERE`, `GROUP BY`,
//!   `HAVING`, `COUNT(DISTINCT …)` and friends, `ORDER BY`, `LIMIT`,
//!   `DISTINCT`, plus `INSERT`/`UPDATE`/`DELETE`/`CREATE`/`DROP`;
//! * NULL-aware three-valued logic and `IS NOT DISTINCT FROM` — NULL plays
//!   the wildcard role in the relational encoding of CFD pattern tableaux;
//! * the hidden `__rowid` pseudo-column on base scans;
//! * secondary hash indexes maintained under mutation;
//! * CSV import/export.
//!
//! ```
//! use minidb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (a TEXT, b INT)").unwrap();
//! db.execute("INSERT INTO t VALUES ('x', 1), ('x', 2), ('y', 3)").unwrap();
//! let r = db.query("SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY a").unwrap();
//! assert_eq!(r.get(0, "n"), Some(&Value::Int(2)));
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod database;
pub mod error;
pub mod exec;
pub mod index;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod table;
pub mod value;

pub use database::{Database, ExecOutcome};
pub use error::{DbError, DbResult};
pub use exec::QueryResult;
pub use plan::ROWID_COLUMN;
pub use schema::{Column, Schema};
pub use table::{RowId, Table};
pub use value::{DataType, Value};
