//! Planner: resolves the AST into executable physical plans.
//!
//! Physical expressions (`PhysExpr`) reference input columns by position, so
//! structural equality on them is canonical — the aggregate rewriter exploits
//! this to match `GROUP BY` expressions against projection subtrees without
//! worrying about case or qualification differences.

use crate::error::{DbError, DbResult};
use crate::sql::ast::{
    AggFn, BinOp, Expr, FromItem, JoinSpec, ScalarFn, SelectItem, SelectStmt, UnOp,
};
use crate::value::Value;

/// Name of the hidden stable-row-id pseudo column exposed on base scans.
pub const ROWID_COLUMN: &str = "__rowid";

/// A resolved, executable expression over a row of input values.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum PhysExpr {
    /// Literal value.
    Literal(Value),
    /// Input column by position.
    Col(usize),
    /// Unary operator.
    Unary { op: UnOp, expr: Box<PhysExpr> },
    /// Binary operator.
    Binary {
        op: BinOp,
        left: Box<PhysExpr>,
        right: Box<PhysExpr>,
    },
    /// `IS [NOT] NULL`.
    IsNull { expr: Box<PhysExpr>, negated: bool },
    /// `[NOT] IN (list)`.
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    /// `[NOT] LIKE`.
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
    /// `[NOT] BETWEEN`.
    Between {
        expr: Box<PhysExpr>,
        lo: Box<PhysExpr>,
        hi: Box<PhysExpr>,
        negated: bool,
    },
    /// `CASE`.
    Case {
        operand: Option<Box<PhysExpr>>,
        branches: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    /// Scalar function.
    Func { func: ScalarFn, args: Vec<PhysExpr> },
}

impl PhysExpr {
    /// Apply `f` to every column index (rebuilding the tree).
    pub fn map_cols(&self, f: &impl Fn(usize) -> usize) -> PhysExpr {
        match self {
            PhysExpr::Literal(v) => PhysExpr::Literal(v.clone()),
            PhysExpr::Col(i) => PhysExpr::Col(f(*i)),
            PhysExpr::Unary { op, expr } => PhysExpr::Unary {
                op: *op,
                expr: Box::new(expr.map_cols(f)),
            },
            PhysExpr::Binary { op, left, right } => PhysExpr::Binary {
                op: *op,
                left: Box::new(left.map_cols(f)),
                right: Box::new(right.map_cols(f)),
            },
            PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
                expr: Box::new(expr.map_cols(f)),
                negated: *negated,
            },
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => PhysExpr::InList {
                expr: Box::new(expr.map_cols(f)),
                list: list.iter().map(|e| e.map_cols(f)).collect(),
                negated: *negated,
            },
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => PhysExpr::Like {
                expr: Box::new(expr.map_cols(f)),
                pattern: Box::new(pattern.map_cols(f)),
                negated: *negated,
            },
            PhysExpr::Between {
                expr,
                lo,
                hi,
                negated,
            } => PhysExpr::Between {
                expr: Box::new(expr.map_cols(f)),
                lo: Box::new(lo.map_cols(f)),
                hi: Box::new(hi.map_cols(f)),
                negated: *negated,
            },
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => PhysExpr::Case {
                operand: operand.as_ref().map(|e| Box::new(e.map_cols(f))),
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.map_cols(f), t.map_cols(f)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.map_cols(f))),
            },
            PhysExpr::Func { func, args } => PhysExpr::Func {
                func: *func,
                args: args.iter().map(|e| e.map_cols(f)).collect(),
            },
        }
    }

    /// Visit every referenced column index.
    pub fn for_each_col(&self, f: &mut impl FnMut(usize)) {
        match self {
            PhysExpr::Literal(_) => {}
            PhysExpr::Col(i) => f(*i),
            PhysExpr::Unary { expr, .. } => expr.for_each_col(f),
            PhysExpr::Binary { left, right, .. } => {
                left.for_each_col(f);
                right.for_each_col(f);
            }
            PhysExpr::IsNull { expr, .. } => expr.for_each_col(f),
            PhysExpr::InList { expr, list, .. } => {
                expr.for_each_col(f);
                for e in list {
                    e.for_each_col(f);
                }
            }
            PhysExpr::Like { expr, pattern, .. } => {
                expr.for_each_col(f);
                pattern.for_each_col(f);
            }
            PhysExpr::Between { expr, lo, hi, .. } => {
                expr.for_each_col(f);
                lo.for_each_col(f);
                hi.for_each_col(f);
            }
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(e) = operand {
                    e.for_each_col(f);
                }
                for (w, t) in branches {
                    w.for_each_col(f);
                    t.for_each_col(f);
                }
                if let Some(e) = else_expr {
                    e.for_each_col(f);
                }
            }
            PhysExpr::Func { args, .. } => {
                for e in args {
                    e.for_each_col(f);
                }
            }
        }
    }

    /// `(min, max)` referenced column index, or `None` if column-free.
    pub fn col_range(&self) -> Option<(usize, usize)> {
        let mut range: Option<(usize, usize)> = None;
        self.for_each_col(&mut |i| {
            range = Some(match range {
                None => (i, i),
                Some((lo, hi)) => (lo.min(i), hi.max(i)),
            });
        });
        range
    }
}

/// An aggregate to compute: function, optional argument, DISTINCT flag.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Which aggregate.
    pub func: AggFn,
    /// Argument over the aggregate input; `None` = `COUNT(*)`.
    pub arg: Option<PhysExpr>,
    /// De-duplicate argument values first.
    pub distinct: bool,
}

/// A sort key: expression over the pre-projection rows, ascending flag.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// Key expression.
    pub expr: PhysExpr,
    /// Ascending?
    pub asc: bool,
}

/// Executable plan tree. All operators materialize their output.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum PhysPlan {
    /// Base-table scan; output = table columns followed by hidden `__rowid`.
    Scan {
        /// Table name (catalog key).
        table: String,
    },
    /// Literal rows (used for `SELECT` without `FROM`).
    Values {
        /// Rows of the node.
        rows: Vec<Vec<Value>>,
    },
    /// σ: keep rows where the predicate is TRUE.
    Filter {
        input: Box<PhysPlan>,
        predicate: PhysExpr,
    },
    /// Nested-loop join (handles arbitrary ON, e.g. the CFD wildcard match).
    NestedLoopJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        /// ON predicate over concatenated rows; `None` = cross join.
        on: Option<PhysExpr>,
        /// Emit unmatched left rows padded with NULLs.
        left_outer: bool,
    },
    /// Hash join on extracted equi-keys.
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        /// Keys over the left input.
        left_keys: Vec<PhysExpr>,
        /// Keys over the right input.
        right_keys: Vec<PhysExpr>,
        /// Per-key: does NULL match NULL (`IS NOT DISTINCT FROM`)?
        null_safe: Vec<bool>,
        /// Residual predicate over concatenated rows.
        residual: Option<PhysExpr>,
        /// Emit unmatched left rows padded with NULLs.
        left_outer: bool,
    },
    /// γ: hash aggregation; output = group values then aggregate results.
    Aggregate {
        input: Box<PhysPlan>,
        group: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
    },
    /// Sort by keys over the input rows.
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<SortKey>,
    },
    /// π: compute output expressions.
    Project {
        input: Box<PhysPlan>,
        exprs: Vec<PhysExpr>,
    },
    /// Remove duplicate rows (keeps first occurrence).
    Distinct { input: Box<PhysPlan> },
    /// LIMIT/OFFSET.
    Limit {
        input: Box<PhysPlan>,
        limit: Option<usize>,
        offset: usize,
    },
}

impl PhysPlan {
    /// One-line operator name plus its children, rendered with indentation —
    /// a minimal `EXPLAIN`.
    pub fn explain(&self) -> String {
        fn go(p: &PhysPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            let line = match p {
                PhysPlan::Scan { table } => format!("Scan {table}"),
                PhysPlan::Values { rows } => format!("Values ({} rows)", rows.len()),
                PhysPlan::Filter { .. } => "Filter".to_string(),
                PhysPlan::NestedLoopJoin { on, left_outer, .. } => format!(
                    "NestedLoopJoin{}{}",
                    if *left_outer { " LEFT" } else { "" },
                    if on.is_some() { " ON" } else { " CROSS" }
                ),
                PhysPlan::HashJoin {
                    left_keys,
                    left_outer,
                    ..
                } => format!(
                    "HashJoin{} ({} keys)",
                    if *left_outer { " LEFT" } else { "" },
                    left_keys.len()
                ),
                PhysPlan::Aggregate { group, aggs, .. } => {
                    format!("Aggregate ({} groups, {} aggs)", group.len(), aggs.len())
                }
                PhysPlan::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
                PhysPlan::Project { exprs, .. } => format!("Project ({} cols)", exprs.len()),
                PhysPlan::Distinct { .. } => "Distinct".to_string(),
                PhysPlan::Limit { limit, offset, .. } => {
                    format!("Limit limit={limit:?} offset={offset}")
                }
            };
            out.push_str(&pad);
            out.push_str(&line);
            out.push('\n');
            match p {
                PhysPlan::Scan { .. } | PhysPlan::Values { .. } => {}
                PhysPlan::Filter { input, .. }
                | PhysPlan::Aggregate { input, .. }
                | PhysPlan::Sort { input, .. }
                | PhysPlan::Project { input, .. }
                | PhysPlan::Distinct { input }
                | PhysPlan::Limit { input, .. } => go(input, depth + 1, out),
                PhysPlan::NestedLoopJoin { left, right, .. }
                | PhysPlan::HashJoin { left, right, .. } => {
                    go(left, depth + 1, out);
                    go(right, depth + 1, out);
                }
            }
        }
        let mut s = String::new();
        go(self, 0, &mut s);
        s
    }
}

/// A fully planned query: plan plus output column names.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Root of the plan.
    pub plan: PhysPlan,
    /// Output column names, parallel to projected values.
    pub columns: Vec<String>,
}

/// One column visible during name resolution.
#[derive(Debug, Clone)]
pub struct ScopeCol {
    /// Qualifier (table alias), lower-cased.
    pub alias: String,
    /// Column name as stored.
    pub name: String,
    /// Hidden columns are excluded from `*` expansion.
    pub hidden: bool,
}

/// Resolution scope: the columns of a plan node's output.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Visible and hidden columns, in output order.
    pub cols: Vec<ScopeCol>,
}

impl Scope {
    /// Resolve `[table.]name` to a column index.
    pub fn resolve(&self, table: Option<&str>, name: &str) -> DbResult<usize> {
        let qual = table.map(str::to_ascii_lowercase);
        let mut found: Option<usize> = None;
        for (i, c) in self.cols.iter().enumerate() {
            if !c.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = &qual {
                if &c.alias != q {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::AmbiguousColumn(name.to_string()));
            }
            found = Some(i);
        }
        found.ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    fn concat(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }
}

/// Catalog view the planner needs: table schemas by name.
pub trait CatalogView {
    /// Column names of `table`, in order, or `None` if no such table.
    fn table_columns(&self, table: &str) -> Option<Vec<String>>;
}

/// Plan a `SELECT` statement against `catalog`.
pub fn plan_select(catalog: &dyn CatalogView, stmt: &SelectStmt) -> DbResult<PlannedQuery> {
    let planner = Planner { catalog };
    planner.select(stmt)
}

/// Resolve a standalone (non-aggregate) expression over a scope. Used for
/// UPDATE/DELETE predicates and constant-folding INSERT values.
pub fn resolve_standalone(expr: &Expr, scope: &Scope) -> DbResult<PhysExpr> {
    struct NoCatalog;
    impl CatalogView for NoCatalog {
        fn table_columns(&self, _: &str) -> Option<Vec<String>> {
            None
        }
    }
    Planner {
        catalog: &NoCatalog,
    }
    .resolve(expr, scope)
}

struct Planner<'a> {
    catalog: &'a dyn CatalogView,
}

impl Planner<'_> {
    fn select(&self, stmt: &SelectStmt) -> DbResult<PlannedQuery> {
        let (mut plan, scope, top_left_width) = self.plan_from(&stmt.from)?;

        // WHERE — merged into a directly-below inner join when possible so
        // `FROM a, b WHERE a.x = b.y` becomes a hash join.
        if let Some(w) = &stmt.where_clause {
            if w.contains_aggregate() {
                return Err(DbError::Plan("aggregate not allowed in WHERE".into()));
            }
            let pred = self.resolve(w, &scope)?;
            plan = merge_where(plan, pred, top_left_width);
        }

        let needs_agg = !stmt.group_by.is_empty()
            || stmt
                .projections
                .iter()
                .any(|p| matches!(p, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || stmt.having.as_ref().is_some_and(Expr::contains_aggregate)
            || stmt.order_by.iter().any(|k| k.expr.contains_aggregate());

        let (proj_exprs, out_names, sort_keys, mut plan) = if needs_agg {
            self.plan_aggregate(stmt, plan, &scope)?
        } else {
            if stmt.having.is_some() {
                return Err(DbError::Plan(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            let (exprs, names) = self.plan_projections(&stmt.projections, &scope)?;
            let keys = self.simple_order_keys(stmt, &exprs, &names, &scope)?;
            (exprs, names, keys, plan)
        };

        if !sort_keys.is_empty() {
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
        }
        plan = PhysPlan::Project {
            input: Box::new(plan),
            exprs: proj_exprs,
        };
        if stmt.distinct {
            plan = PhysPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = PhysPlan::Limit {
                input: Box::new(plan),
                limit: stmt.limit,
                offset: stmt.offset.unwrap_or(0),
            };
        }
        Ok(PlannedQuery {
            plan,
            columns: out_names,
        })
    }

    // ----------------------------------------------------------- FROM

    /// Returns the plan, its scope, and — when the top node is an inner
    /// join — the width of that join's left input (for WHERE merging).
    fn plan_from(&self, items: &[FromItem]) -> DbResult<(PhysPlan, Scope, Option<usize>)> {
        if items.is_empty() {
            return Ok((
                PhysPlan::Values {
                    rows: vec![Vec::new()],
                },
                Scope::default(),
                None,
            ));
        }
        let (mut plan, mut scope) = self.plan_table(&items[0])?;
        let mut top_left_width = None;
        for item in &items[1..] {
            let (right_plan, right_scope) = self.plan_table(item)?;
            let left_width = scope.cols.len();
            let combined = scope.concat(&right_scope);
            match &item.join {
                JoinSpec::Leading => {
                    return Err(DbError::Plan("misplaced leading FROM item".into()))
                }
                JoinSpec::Cross => {
                    plan = PhysPlan::NestedLoopJoin {
                        left: Box::new(plan),
                        right: Box::new(right_plan),
                        on: None,
                        left_outer: false,
                    };
                    top_left_width = Some(left_width);
                }
                JoinSpec::Inner(on) | JoinSpec::Left(on) => {
                    let left_outer = matches!(item.join, JoinSpec::Left(_));
                    let on_phys = self.resolve(on, &combined)?;
                    plan = build_join(plan, right_plan, on_phys, left_width, left_outer);
                    top_left_width = if left_outer { None } else { Some(left_width) };
                }
            }
            scope = combined;
        }
        Ok((plan, scope, top_left_width))
    }

    fn plan_table(&self, item: &FromItem) -> DbResult<(PhysPlan, Scope)> {
        let cols = self
            .catalog
            .table_columns(&item.table)
            .ok_or_else(|| DbError::UnknownTable(item.table.clone()))?;
        let alias = item
            .alias
            .clone()
            .unwrap_or_else(|| item.table.clone())
            .to_ascii_lowercase();
        let mut scope_cols: Vec<ScopeCol> = cols
            .iter()
            .map(|c| ScopeCol {
                alias: alias.clone(),
                name: c.clone(),
                hidden: false,
            })
            .collect();
        scope_cols.push(ScopeCol {
            alias,
            name: ROWID_COLUMN.to_string(),
            hidden: true,
        });
        Ok((
            PhysPlan::Scan {
                table: item.table.clone(),
            },
            Scope { cols: scope_cols },
        ))
    }

    // ---------------------------------------------------- projections

    fn plan_projections(
        &self,
        items: &[SelectItem],
        scope: &Scope,
    ) -> DbResult<(Vec<PhysExpr>, Vec<String>)> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.cols.iter().enumerate() {
                        if !c.hidden {
                            exprs.push(PhysExpr::Col(i));
                            names.push(c.name.clone());
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let q = q.to_ascii_lowercase();
                    let before = exprs.len();
                    for (i, c) in scope.cols.iter().enumerate() {
                        if !c.hidden && c.alias == q {
                            exprs.push(PhysExpr::Col(i));
                            names.push(c.name.clone());
                        }
                    }
                    if exprs.len() == before {
                        return Err(DbError::UnknownTable(q));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let phys = self.resolve(expr, scope)?;
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                    exprs.push(phys);
                }
            }
        }
        Ok((exprs, names))
    }

    fn simple_order_keys(
        &self,
        stmt: &SelectStmt,
        proj_exprs: &[PhysExpr],
        names: &[String],
        scope: &Scope,
    ) -> DbResult<Vec<SortKey>> {
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for k in &stmt.order_by {
            let expr = if let Some(e) = alias_or_position(&k.expr, proj_exprs, names)? {
                e
            } else {
                self.resolve(&k.expr, scope)?
            };
            keys.push(SortKey { expr, asc: k.asc });
        }
        Ok(keys)
    }

    // ----------------------------------------------------- aggregation

    #[allow(clippy::type_complexity)]
    fn plan_aggregate(
        &self,
        stmt: &SelectStmt,
        input: PhysPlan,
        scope: &Scope,
    ) -> DbResult<(Vec<PhysExpr>, Vec<String>, Vec<SortKey>, PhysPlan)> {
        let group_phys: Vec<PhysExpr> = stmt
            .group_by
            .iter()
            .map(|g| self.resolve(g, scope))
            .collect::<DbResult<_>>()?;

        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut proj_exprs = Vec::new();
        let mut names = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(DbError::Plan(
                        "wildcard projection cannot be combined with GROUP BY/aggregates".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let phys = self.rewrite_agg(expr, scope, &group_phys, &mut aggs)?;
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                    proj_exprs.push(phys);
                }
            }
        }
        let having_phys = match &stmt.having {
            Some(h) => Some(self.rewrite_agg(h, scope, &group_phys, &mut aggs)?),
            None => None,
        };
        // ORDER BY keys are rewritten before the aggregate node is built so
        // any extra aggregates they mention get computed too.
        let mut sort_keys = Vec::with_capacity(stmt.order_by.len());
        for k in &stmt.order_by {
            let expr = if let Some(e) = alias_or_position(&k.expr, &proj_exprs, &names)? {
                e
            } else {
                self.rewrite_agg(&k.expr, scope, &group_phys, &mut aggs)?
            };
            sort_keys.push(SortKey { expr, asc: k.asc });
        }

        let mut plan = PhysPlan::Aggregate {
            input: Box::new(input),
            group: group_phys,
            aggs,
        };
        if let Some(h) = having_phys {
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }
        Ok((proj_exprs, names, sort_keys, plan))
    }

    /// Rewrite `expr` over the aggregate output: occurrences of a GROUP BY
    /// expression become `Col(i)`; aggregate calls become `Col(G + j)`.
    fn rewrite_agg(
        &self,
        expr: &Expr,
        scope: &Scope,
        group_phys: &[PhysExpr],
        aggs: &mut Vec<AggSpec>,
    ) -> DbResult<PhysExpr> {
        if !expr.contains_aggregate() {
            if let Ok(phys) = self.resolve(expr, scope) {
                if let Some(i) = group_phys.iter().position(|g| *g == phys) {
                    return Ok(PhysExpr::Col(i));
                }
                if phys.col_range().is_none() {
                    return Ok(phys);
                }
            }
        }
        match expr {
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let arg_phys = match arg {
                    Some(a) => Some(self.resolve(a, scope)?),
                    None => None,
                };
                let spec = AggSpec {
                    func: *func,
                    arg: arg_phys,
                    distinct: *distinct,
                };
                let j = match aggs.iter().position(|a| *a == spec) {
                    Some(j) => j,
                    None => {
                        aggs.push(spec);
                        aggs.len() - 1
                    }
                };
                Ok(PhysExpr::Col(group_phys.len() + j))
            }
            Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
            Expr::Column { name, .. } => Err(DbError::Plan(format!(
                "column {name} must appear in GROUP BY or inside an aggregate"
            ))),
            Expr::Unary { op, expr } => Ok(PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite_agg(expr, scope, group_phys, aggs)?),
            }),
            Expr::Binary { op, left, right } => Ok(PhysExpr::Binary {
                op: *op,
                left: Box::new(self.rewrite_agg(left, scope, group_phys, aggs)?),
                right: Box::new(self.rewrite_agg(right, scope, group_phys, aggs)?),
            }),
            Expr::IsNull { expr, negated } => Ok(PhysExpr::IsNull {
                expr: Box::new(self.rewrite_agg(expr, scope, group_phys, aggs)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(PhysExpr::InList {
                expr: Box::new(self.rewrite_agg(expr, scope, group_phys, aggs)?),
                list: list
                    .iter()
                    .map(|e| self.rewrite_agg(e, scope, group_phys, aggs))
                    .collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(PhysExpr::Like {
                expr: Box::new(self.rewrite_agg(expr, scope, group_phys, aggs)?),
                pattern: Box::new(self.rewrite_agg(pattern, scope, group_phys, aggs)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => Ok(PhysExpr::Between {
                expr: Box::new(self.rewrite_agg(expr, scope, group_phys, aggs)?),
                lo: Box::new(self.rewrite_agg(lo, scope, group_phys, aggs)?),
                hi: Box::new(self.rewrite_agg(hi, scope, group_phys, aggs)?),
                negated: *negated,
            }),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Ok(PhysExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.rewrite_agg(o, scope, group_phys, aggs)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            self.rewrite_agg(w, scope, group_phys, aggs)?,
                            self.rewrite_agg(t, scope, group_phys, aggs)?,
                        ))
                    })
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.rewrite_agg(e, scope, group_phys, aggs)?)),
                    None => None,
                },
            }),
            Expr::Func { func, args } => Ok(PhysExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|e| self.rewrite_agg(e, scope, group_phys, aggs))
                    .collect::<DbResult<_>>()?,
            }),
        }
    }

    // ------------------------------------------------------- resolve

    fn resolve(&self, expr: &Expr, scope: &Scope) -> DbResult<PhysExpr> {
        match expr {
            Expr::Literal(v) => Ok(PhysExpr::Literal(v.clone())),
            Expr::Column { table, name } => {
                let idx = scope.resolve(table.as_deref(), name)?;
                Ok(PhysExpr::Col(idx))
            }
            Expr::Unary { op, expr } => Ok(PhysExpr::Unary {
                op: *op,
                expr: Box::new(self.resolve(expr, scope)?),
            }),
            Expr::Binary { op, left, right } => Ok(PhysExpr::Binary {
                op: *op,
                left: Box::new(self.resolve(left, scope)?),
                right: Box::new(self.resolve(right, scope)?),
            }),
            Expr::IsNull { expr, negated } => Ok(PhysExpr::IsNull {
                expr: Box::new(self.resolve(expr, scope)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(PhysExpr::InList {
                expr: Box::new(self.resolve(expr, scope)?),
                list: list
                    .iter()
                    .map(|e| self.resolve(e, scope))
                    .collect::<DbResult<_>>()?,
                negated: *negated,
            }),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(PhysExpr::Like {
                expr: Box::new(self.resolve(expr, scope)?),
                pattern: Box::new(self.resolve(pattern, scope)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => Ok(PhysExpr::Between {
                expr: Box::new(self.resolve(expr, scope)?),
                lo: Box::new(self.resolve(lo, scope)?),
                hi: Box::new(self.resolve(hi, scope)?),
                negated: *negated,
            }),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Ok(PhysExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.resolve(o, scope)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| Ok((self.resolve(w, scope)?, self.resolve(t, scope)?)))
                    .collect::<DbResult<_>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.resolve(e, scope)?)),
                    None => None,
                },
            }),
            Expr::Func { func, args } => Ok(PhysExpr::Func {
                func: *func,
                args: args
                    .iter()
                    .map(|e| self.resolve(e, scope))
                    .collect::<DbResult<_>>()?,
            }),
            Expr::Aggregate { .. } => Err(DbError::Plan(
                "aggregate used outside of an aggregating query context".into(),
            )),
        }
    }
}

/// Substitute ORDER BY keys that are output positions or aliases with the
/// corresponding projection expression.
fn alias_or_position(
    key: &Expr,
    proj_exprs: &[PhysExpr],
    names: &[String],
) -> DbResult<Option<PhysExpr>> {
    if let Expr::Literal(Value::Int(n)) = key {
        let idx = *n as usize;
        if idx == 0 || idx > proj_exprs.len() {
            return Err(DbError::Plan(format!("ORDER BY position {n} out of range")));
        }
        return Ok(Some(proj_exprs[idx - 1].clone()));
    }
    if let Expr::Column { table: None, name } = key {
        let matches: Vec<usize> = names
            .iter()
            .enumerate()
            .filter(|(_, on)| on.eq_ignore_ascii_case(name))
            .map(|(i, _)| i)
            .collect();
        if matches.len() == 1 {
            return Ok(Some(proj_exprs[matches[0]].clone()));
        }
    }
    Ok(None)
}

fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        Expr::Func { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        Expr::Literal(v) => v.to_string(),
        _ => "expr".to_string(),
    }
}

/// Merge a WHERE predicate with the plan below it. When the top node is an
/// inner join whose left width is known, equi-conjuncts become hash-join
/// keys; everything else stays a filter.
fn merge_where(plan: PhysPlan, predicate: PhysExpr, top_left_width: Option<usize>) -> PhysPlan {
    if let Some(left_width) = top_left_width {
        match plan {
            PhysPlan::NestedLoopJoin {
                left,
                right,
                on,
                left_outer: false,
            } => {
                let mut conjuncts = split_conjuncts(predicate);
                if let Some(on) = on {
                    conjuncts.extend(split_conjuncts(on));
                }
                return build_join_from_conjuncts(*left, *right, conjuncts, left_width, false);
            }
            PhysPlan::HashJoin {
                left,
                right,
                mut left_keys,
                mut right_keys,
                mut null_safe,
                residual,
                left_outer: false,
            } => {
                let mut conjuncts = split_conjuncts(predicate);
                if let Some(r) = residual {
                    conjuncts.extend(split_conjuncts(r));
                }
                let (lk, rk, ns, resid) = extract_keys(conjuncts, left_width);
                left_keys.extend(lk);
                right_keys.extend(rk);
                null_safe.extend(ns);
                return PhysPlan::HashJoin {
                    left,
                    right,
                    left_keys,
                    right_keys,
                    null_safe,
                    residual: conjoin_phys(resid),
                    left_outer: false,
                };
            }
            other => {
                return PhysPlan::Filter {
                    input: Box::new(other),
                    predicate,
                }
            }
        }
    }
    PhysPlan::Filter {
        input: Box::new(plan),
        predicate,
    }
}

fn split_conjuncts(e: PhysExpr) -> Vec<PhysExpr> {
    match e {
        PhysExpr::Binary {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut v = split_conjuncts(*left);
            v.extend(split_conjuncts(*right));
            v
        }
        other => vec![other],
    }
}

fn conjoin_phys(preds: Vec<PhysExpr>) -> Option<PhysExpr> {
    preds.into_iter().reduce(|a, b| PhysExpr::Binary {
        op: BinOp::And,
        left: Box::new(a),
        right: Box::new(b),
    })
}

#[allow(clippy::type_complexity)]
fn extract_keys(
    conjuncts: Vec<PhysExpr>,
    left_width: usize,
) -> (Vec<PhysExpr>, Vec<PhysExpr>, Vec<bool>, Vec<PhysExpr>) {
    let mut left_keys = Vec::new();
    let mut right_keys = Vec::new();
    let mut null_safe = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        let mut matched = false;
        if let PhysExpr::Binary { op, left, right } = &c {
            if matches!(op, BinOp::Eq | BinOp::NullSafeEq) {
                match (left.col_range(), right.col_range()) {
                    (Some((_, lhi)), Some((rlo, _))) if lhi < left_width && rlo >= left_width => {
                        left_keys.push((**left).clone());
                        right_keys.push(right.map_cols(&|i| i - left_width));
                        null_safe.push(*op == BinOp::NullSafeEq);
                        matched = true;
                    }
                    (Some((llo, _)), Some((_, rhi))) if rhi < left_width && llo >= left_width => {
                        left_keys.push((**right).clone());
                        right_keys.push(left.map_cols(&|i| i - left_width));
                        null_safe.push(*op == BinOp::NullSafeEq);
                        matched = true;
                    }
                    _ => {}
                }
            }
        }
        if !matched {
            residual.push(c);
        }
    }
    (left_keys, right_keys, null_safe, residual)
}

/// Build a join from `on`, extracting equi-keys `(left = right)` where one
/// side references only left columns (`< left_width`) and the other only
/// right columns.
pub fn build_join(
    left: PhysPlan,
    right: PhysPlan,
    on: PhysExpr,
    left_width: usize,
    left_outer: bool,
) -> PhysPlan {
    let conjuncts = split_conjuncts(on);
    build_join_from_conjuncts(left, right, conjuncts, left_width, left_outer)
}

fn build_join_from_conjuncts(
    left: PhysPlan,
    right: PhysPlan,
    conjuncts: Vec<PhysExpr>,
    left_width: usize,
    left_outer: bool,
) -> PhysPlan {
    let (left_keys, right_keys, null_safe, residual) = extract_keys(conjuncts, left_width);
    let residual = conjoin_phys(residual);
    if left_keys.is_empty() {
        PhysPlan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            on: residual,
            left_outer,
        }
    } else {
        PhysPlan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_keys,
            right_keys,
            null_safe,
            residual,
            left_outer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Statement;
    use crate::sql::parser::parse_statement;

    struct FakeCatalog;
    impl CatalogView for FakeCatalog {
        fn table_columns(&self, table: &str) -> Option<Vec<String>> {
            match table.to_ascii_lowercase().as_str() {
                "t" => Some(vec!["a".into(), "b".into(), "c".into()]),
                "u" => Some(vec!["x".into(), "y".into()]),
                _ => None,
            }
        }
    }

    fn plan(sql: &str) -> DbResult<PlannedQuery> {
        let Statement::Select(sel) = parse_statement(sql)? else {
            panic!("not a select")
        };
        plan_select(&FakeCatalog, &sel)
    }

    #[test]
    fn wildcard_excludes_rowid_but_rowid_is_resolvable() {
        let p = plan("SELECT * FROM t").unwrap();
        assert_eq!(p.columns, vec!["a", "b", "c"]);
        let p = plan("SELECT __rowid, a FROM t").unwrap();
        assert_eq!(p.columns, vec!["__rowid", "a"]);
    }

    #[test]
    fn where_equi_join_becomes_hash_join() {
        let p = plan("SELECT * FROM t, u WHERE t.a = u.x AND t.b = 'k'").unwrap();
        let mut node = &p.plan;
        // descend through project
        loop {
            match node {
                PhysPlan::Project { input, .. }
                | PhysPlan::Filter { input, .. }
                | PhysPlan::Limit { input, .. }
                | PhysPlan::Distinct { input }
                | PhysPlan::Sort { input, .. } => node = input,
                other => {
                    assert!(
                        matches!(other, PhysPlan::HashJoin { .. }),
                        "expected hash join, got:\n{}",
                        p.plan.explain()
                    );
                    break;
                }
            }
        }
    }

    #[test]
    fn or_join_predicate_stays_nested_loop() {
        let p = plan("SELECT * FROM t JOIN u ON t.a = u.x OR u.x IS NULL").unwrap();
        assert!(p.plan.explain().contains("NestedLoopJoin"));
    }

    #[test]
    fn group_by_rewrites_projection_to_slots() {
        let p =
            plan("SELECT b, COUNT(DISTINCT a) AS n FROM t GROUP BY b HAVING COUNT(DISTINCT a) > 1")
                .unwrap();
        assert_eq!(p.columns, vec!["b", "n"]);
        let s = p.plan.explain();
        assert!(s.contains("Aggregate"), "{s}");
        assert!(s.contains("Filter"), "{s}");
    }

    #[test]
    fn ungrouped_column_is_rejected() {
        let e = plan("SELECT a, COUNT(*) FROM t GROUP BY b");
        assert!(e.is_err());
    }

    #[test]
    fn order_by_position_and_alias() {
        assert!(plan("SELECT a AS z FROM t ORDER BY z").is_ok());
        assert!(plan("SELECT a FROM t ORDER BY 1 DESC").is_ok());
        assert!(plan("SELECT a FROM t ORDER BY 2").is_err());
    }

    #[test]
    fn unknown_column_and_table_errors() {
        assert!(matches!(
            plan("SELECT nope FROM t"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            plan("SELECT * FROM missing"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn ambiguous_column_is_detected() {
        // both t and u have no shared names; craft via self-join aliases
        let r = plan("SELECT a FROM t x, t y");
        assert!(matches!(r, Err(DbError::AmbiguousColumn(_))));
    }

    #[test]
    fn aggregate_in_where_is_rejected() {
        assert!(plan("SELECT a FROM t WHERE COUNT(*) > 1").is_err());
    }
}
