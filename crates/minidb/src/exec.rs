//! Plan execution: expression evaluation and materializing operators.

use std::collections::{HashMap, HashSet};

use crate::error::{DbError, DbResult};
use crate::plan::{AggSpec, PhysExpr, PhysPlan, SortKey};
use crate::sql::ast::{AggFn, BinOp, ScalarFn, UnOp};
use crate::table::Table;
use crate::value::Value;

/// Result of a query: output column names and materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of an output column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Cell by row number and column name.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let c = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(c))
    }

    /// Rows sorted with `Value::total_cmp` lexicographically — handy for
    /// order-insensitive test assertions.
    pub fn sorted_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }
}

/// Table access used by the executor.
pub trait TableSource {
    /// Look up a table by name.
    fn table(&self, name: &str) -> DbResult<&Table>;
}

/// Execute a physical plan against `src`, producing rows.
pub fn execute_plan(src: &dyn TableSource, plan: &PhysPlan) -> DbResult<Vec<Vec<Value>>> {
    match plan {
        PhysPlan::Scan { table } => {
            let t = src.table(table)?;
            let mut out = Vec::with_capacity(t.len());
            for (id, row) in t.iter() {
                let mut r = Vec::with_capacity(row.len() + 1);
                r.extend_from_slice(row);
                r.push(Value::Int(id.0 as i64));
                out.push(r);
            }
            Ok(out)
        }
        PhysPlan::Values { rows } => Ok(rows.clone()),
        PhysPlan::Filter { input, predicate } => {
            let rows = execute_plan(src, input)?;
            let mut out = Vec::with_capacity(rows.len() / 2 + 1);
            for row in rows {
                if eval(predicate, &row)?.as_bool() == Some(true) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysPlan::NestedLoopJoin {
            left,
            right,
            on,
            left_outer,
        } => {
            let lrows = execute_plan(src, left)?;
            let rrows = execute_plan(src, right)?;
            let rwidth = rrows.first().map_or(0, Vec::len);
            let mut out = Vec::new();
            for lrow in &lrows {
                let mut matched = false;
                for rrow in &rrows {
                    let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                    combined.extend_from_slice(lrow);
                    combined.extend_from_slice(rrow);
                    let keep = match on {
                        Some(p) => eval(p, &combined)?.as_bool() == Some(true),
                        None => true,
                    };
                    if keep {
                        matched = true;
                        out.push(combined);
                    }
                }
                if *left_outer && !matched {
                    let mut combined = Vec::with_capacity(lrow.len() + rwidth);
                    combined.extend_from_slice(lrow);
                    combined.resize(lrow.len() + rwidth, Value::Null);
                    out.push(combined);
                }
            }
            Ok(out)
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            null_safe,
            residual,
            left_outer,
        } => {
            let lrows = execute_plan(src, left)?;
            let rrows = execute_plan(src, right)?;
            let rwidth = rrows.first().map_or(0, Vec::len);
            // Build on the right side.
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(rrows.len());
            'right: for (i, rrow) in rrows.iter().enumerate() {
                let mut key = Vec::with_capacity(right_keys.len());
                for (k, ns) in right_keys.iter().zip(null_safe) {
                    let v = eval(k, rrow)?;
                    if v.is_null() && !ns {
                        continue 'right; // NULL never matches under `=`
                    }
                    key.push(v);
                }
                table.entry(key).or_default().push(i);
            }
            let mut out = Vec::new();
            for lrow in &lrows {
                let mut key = Vec::with_capacity(left_keys.len());
                let mut null_probe = false;
                for (k, ns) in left_keys.iter().zip(null_safe) {
                    let v = eval(k, lrow)?;
                    if v.is_null() && !ns {
                        null_probe = true;
                        break;
                    }
                    key.push(v);
                }
                let mut matched = false;
                if !null_probe {
                    if let Some(idxs) = table.get(&key) {
                        for &i in idxs {
                            let rrow = &rrows[i];
                            let mut combined = Vec::with_capacity(lrow.len() + rrow.len());
                            combined.extend_from_slice(lrow);
                            combined.extend_from_slice(rrow);
                            let keep = match residual {
                                Some(p) => eval(p, &combined)?.as_bool() == Some(true),
                                None => true,
                            };
                            if keep {
                                matched = true;
                                out.push(combined);
                            }
                        }
                    }
                }
                if *left_outer && !matched {
                    let mut combined = Vec::with_capacity(lrow.len() + rwidth);
                    combined.extend_from_slice(lrow);
                    combined.resize(lrow.len() + rwidth, Value::Null);
                    out.push(combined);
                }
            }
            Ok(out)
        }
        PhysPlan::Aggregate { input, group, aggs } => {
            let rows = execute_plan(src, input)?;
            run_aggregate(&rows, group, aggs)
        }
        PhysPlan::Sort { input, keys } => {
            let rows = execute_plan(src, input)?;
            sort_rows(rows, keys)
        }
        PhysPlan::Project { input, exprs } => {
            let rows = execute_plan(src, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in &rows {
                let mut r = Vec::with_capacity(exprs.len());
                for e in exprs {
                    r.push(eval(e, row)?);
                }
                out.push(r);
            }
            Ok(out)
        }
        PhysPlan::Distinct { input } => {
            let rows = execute_plan(src, input)?;
            let mut seen: HashSet<Vec<Value>> = HashSet::with_capacity(rows.len());
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        PhysPlan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = execute_plan(src, input)?;
            let it = rows.into_iter().skip(*offset);
            Ok(match limit {
                Some(n) => it.take(*n).collect(),
                None => it.collect(),
            })
        }
    }
}

fn sort_rows(mut rows: Vec<Vec<Value>>, keys: &[SortKey]) -> DbResult<Vec<Vec<Value>>> {
    // Precompute key tuples to avoid re-evaluating in the comparator.
    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        let mut k = Vec::with_capacity(keys.len());
        for key in keys {
            k.push(eval(&key.expr, &row)?);
        }
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let mut o = ka[i].total_cmp(&kb[i]);
            if !key.asc {
                o = o.reverse();
            }
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, row)| row).collect())
}

// ------------------------------------------------------------- aggregates

#[derive(Debug)]
enum Acc {
    Count(i64),
    CountDistinct(HashSet<Value>),
    Sum {
        int: i64,
        float: f64,
        any_float: bool,
        seen: bool,
    },
    SumDistinct(HashSet<Value>),
    Avg {
        sum: f64,
        n: i64,
    },
    AvgDistinct(HashSet<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(spec: &AggSpec) -> Acc {
        match (spec.func, spec.distinct) {
            (AggFn::Count, false) => Acc::Count(0),
            (AggFn::Count, true) => Acc::CountDistinct(HashSet::new()),
            (AggFn::Sum, false) => Acc::Sum {
                int: 0,
                float: 0.0,
                any_float: false,
                seen: false,
            },
            (AggFn::Sum, true) => Acc::SumDistinct(HashSet::new()),
            (AggFn::Avg, false) => Acc::Avg { sum: 0.0, n: 0 },
            (AggFn::Avg, true) => Acc::AvgDistinct(HashSet::new()),
            (AggFn::Min, _) => Acc::Min(None),
            (AggFn::Max, _) => Acc::Max(None),
        }
    }

    fn update(&mut self, v: Option<Value>) -> DbResult<()> {
        match self {
            Acc::Count(n) => {
                // COUNT(*) counts rows (v is None); COUNT(e) counts non-null.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            Acc::CountDistinct(set) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        set.insert(val);
                    }
                }
            }
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if let Some(val) = v {
                    match val {
                        Value::Null => {}
                        Value::Int(i) => {
                            *int = int
                                .checked_add(i)
                                .ok_or_else(|| DbError::Eval("integer overflow in SUM".into()))?;
                            *seen = true;
                        }
                        Value::Float(x) => {
                            *float += x;
                            *any_float = true;
                            *seen = true;
                        }
                        other => return Err(DbError::Eval(format!("SUM of non-number {other}"))),
                    }
                }
            }
            Acc::SumDistinct(set) | Acc::AvgDistinct(set) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        if val.as_f64().is_none() {
                            return Err(DbError::Eval(format!("SUM/AVG of non-number {val}")));
                        }
                        set.insert(val);
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let x = val
                            .as_f64()
                            .ok_or_else(|| DbError::Eval(format!("AVG of non-number {val}")))?;
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            Acc::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => val.total_cmp(c) == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *cur = Some(val);
                        }
                    }
                }
            }
            Acc::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        let replace = match cur {
                            None => true,
                            Some(c) => val.total_cmp(c) == std::cmp::Ordering::Greater,
                        };
                        if replace {
                            *cur = Some(val);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::CountDistinct(set) => Value::Int(set.len() as i64),
            Acc::Sum {
                int,
                float,
                any_float,
                seen,
            } => {
                if !seen {
                    Value::Null
                } else if any_float {
                    Value::Float(float + int as f64)
                } else {
                    Value::Int(int)
                }
            }
            Acc::SumDistinct(set) => {
                if set.is_empty() {
                    Value::Null
                } else if set.iter().all(|v| matches!(v, Value::Int(_))) {
                    Value::Int(set.iter().map(|v| v.as_int().unwrap()).sum())
                } else {
                    Value::Float(set.iter().map(|v| v.as_f64().unwrap()).sum())
                }
            }
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::AvgDistinct(set) => {
                if set.is_empty() {
                    Value::Null
                } else {
                    let n = set.len() as f64;
                    Value::Float(set.iter().map(|v| v.as_f64().unwrap()).sum::<f64>() / n)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

fn run_aggregate(
    rows: &[Vec<Value>],
    group: &[PhysExpr],
    aggs: &[AggSpec],
) -> DbResult<Vec<Vec<Value>>> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let mut key = Vec::with_capacity(group.len());
        for g in group {
            key.push(eval(g, row)?);
        }
        let accs = match groups.get_mut(&key) {
            Some(a) => a,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(Acc::new).collect())
            }
        };
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            let v = match &spec.arg {
                Some(e) => Some(eval(e, row)?),
                None => None,
            };
            acc.update(v)?;
        }
    }
    // Global aggregate over an empty input still yields one row.
    if group.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(Acc::new).collect();
        let row: Vec<Value> = accs.into_iter().map(Acc::finish).collect();
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let accs = groups.remove(&key).expect("group key present");
        let mut row = key;
        row.extend(accs.into_iter().map(Acc::finish));
        out.push(row);
    }
    Ok(out)
}

// ------------------------------------------------------------ expressions

/// Evaluate an expression against a row. NULL propagates per SQL 3VL.
pub fn eval(expr: &PhysExpr, row: &[Value]) -> DbResult<Value> {
    match expr {
        PhysExpr::Literal(v) => Ok(v.clone()),
        PhysExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| DbError::Eval(format!("column index {i} out of range"))),
        PhysExpr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match op {
                UnOp::Not => Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None if v.is_null() => Value::Null,
                    None => return Err(DbError::Eval(format!("NOT of non-boolean {v}"))),
                }),
                UnOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(DbError::Eval(format!("negation of non-number {other}"))),
                },
            }
        }
        PhysExpr::Binary { op, left, right } => eval_binary(*op, left, right, row),
        PhysExpr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, row)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row)?;
            let p = eval(pattern, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let (Some(s), Some(pat)) = (v.as_str(), p.as_str()) else {
                return Err(DbError::Eval("LIKE requires strings".into()));
            };
            Ok(Value::Bool(like_match(s, pat) != *negated))
        }
        PhysExpr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let v = eval(expr, row)?;
            let l = eval(lo, row)?;
            let h = eval(hi, row)?;
            let ge = cmp_ge(&v, &l);
            let le = cmp_le(&v, &h);
            let both = and3(ge, le);
            Ok(match both {
                Some(b) => Value::Bool(b != *negated),
                None => Value::Null,
            })
        }
        PhysExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_val = match operand {
                Some(o) => Some(eval(o, row)?),
                None => None,
            };
            for (when, then) in branches {
                let hit = match &op_val {
                    Some(v) => {
                        let w = eval(when, row)?;
                        v.sql_eq(&w) == Some(true)
                    }
                    None => eval(when, row)?.as_bool() == Some(true),
                };
                if hit {
                    return eval(then, row);
                }
            }
            match else_expr {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        PhysExpr::Func { func, args } => eval_func(*func, args, row),
    }
}

fn cmp_ge(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o != std::cmp::Ordering::Less)
}

fn cmp_le(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o != std::cmp::Ordering::Greater)
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn to3(v: &Value) -> DbResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(DbError::Eval(format!("expected boolean, got {other}"))),
    }
}

fn from3(b: Option<bool>) -> Value {
    match b {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn eval_binary(op: BinOp, left: &PhysExpr, right: &PhysExpr, row: &[Value]) -> DbResult<Value> {
    // Short-circuit logical operators first.
    match op {
        BinOp::And => {
            let l = to3(&eval(left, row)?)?;
            if l == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = to3(&eval(right, row)?)?;
            return Ok(from3(and3(l, r)));
        }
        BinOp::Or => {
            let l = to3(&eval(left, row)?)?;
            if l == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = to3(&eval(right, row)?)?;
            return Ok(from3(or3(l, r)));
        }
        _ => {}
    }
    let l = eval(left, row)?;
    let r = eval(right, row)?;
    match op {
        BinOp::And | BinOp::Or => unreachable!("handled above"),
        BinOp::Eq => Ok(from3(l.sql_eq(&r))),
        BinOp::NotEq => Ok(from3(l.sql_eq(&r).map(|b| !b))),
        BinOp::NullSafeEq => Ok(Value::Bool(l.strong_eq(&r))),
        BinOp::Lt => Ok(from3(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less))),
        BinOp::LtEq => Ok(from3(cmp_le(&l, &r))),
        BinOp::Gt => Ok(from3(
            l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater),
        )),
        BinOp::GtEq => Ok(from3(cmp_ge(&l, &r))),
        BinOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::str(format!("{l}{r}")))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            arith(op, &l, &r)
        }
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let res = match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                BinOp::Mod => {
                    if b == 0 {
                        return Err(DbError::Eval("modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!("arith ops only"),
            };
            res.map(Value::Int)
                .ok_or_else(|| DbError::Eval("integer overflow".into()))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(DbError::Eval(format!(
                    "arithmetic on non-numbers: {l} and {r}"
                )));
            };
            let res = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!("arith ops only"),
            };
            Ok(Value::Float(res))
        }
    }
}

fn eval_func(func: ScalarFn, args: &[PhysExpr], row: &[Value]) -> DbResult<Value> {
    match func {
        ScalarFn::Coalesce => {
            for a in args {
                let v = eval(a, row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        ScalarFn::Upper | ScalarFn::Lower => {
            let v = eval(arg1(args)?, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::str(if func == ScalarFn::Upper {
                    s.to_uppercase()
                } else {
                    s.to_lowercase()
                })),
                other => Err(DbError::Eval(format!("{func:?} of non-string {other}"))),
            }
        }
        ScalarFn::Length => {
            let v = eval(arg1(args)?, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DbError::Eval(format!("LENGTH of non-string {other}"))),
            }
        }
        ScalarFn::Abs => {
            let v = eval(arg1(args)?, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(DbError::Eval(format!("ABS of non-number {other}"))),
            }
        }
    }
}

fn arg1(args: &[PhysExpr]) -> DbResult<&PhysExpr> {
    if args.len() == 1 {
        Ok(&args[0])
    } else {
        Err(DbError::Eval(format!(
            "function expects 1 argument, got {}",
            args.len()
        )))
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any char); case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                (0..=s.len()).any(|i| rec(&s[i..], p))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> PhysExpr {
        PhysExpr::Literal(v.into())
    }

    fn b(op: BinOp, l: PhysExpr, r: PhysExpr) -> PhysExpr {
        PhysExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn three_valued_logic_and_or() {
        let null = lit(Value::Null);
        let t = lit(true);
        let f = lit(false);
        // FALSE AND NULL = FALSE
        assert_eq!(
            eval(&b(BinOp::And, f.clone(), null.clone()), &[]).unwrap(),
            Value::Bool(false)
        );
        // TRUE AND NULL = NULL
        assert_eq!(
            eval(&b(BinOp::And, t.clone(), null.clone()), &[]).unwrap(),
            Value::Null
        );
        // TRUE OR NULL = TRUE
        assert_eq!(
            eval(&b(BinOp::Or, t, null.clone()), &[]).unwrap(),
            Value::Bool(true)
        );
        // FALSE OR NULL = NULL
        assert_eq!(eval(&b(BinOp::Or, f, null), &[]).unwrap(), Value::Null);
    }

    #[test]
    fn null_safe_eq_vs_eq() {
        let null = lit(Value::Null);
        assert_eq!(
            eval(&b(BinOp::Eq, null.clone(), null.clone()), &[]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&b(BinOp::NullSafeEq, null.clone(), null), &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(eval(&b(BinOp::Div, lit(1i64), lit(0i64)), &[]).is_err());
        assert_eq!(
            eval(&b(BinOp::Div, lit(7i64), lit(2i64)), &[]).unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", ""));
        assert!(like_match("a%c", "a%c")); // literal via itself
        assert!(like_match("EH2 4SD", "EH%"));
    }

    #[test]
    fn in_list_null_semantics() {
        // 1 IN (2, NULL) => NULL; 1 IN (1, NULL) => TRUE
        let e = PhysExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(2i64), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &[]).unwrap(), Value::Null);
        let e = PhysExpr::InList {
            expr: Box::new(lit(1i64)),
            list: vec![lit(1i64), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e, &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_searched_and_operand_forms() {
        // CASE WHEN false THEN 1 ELSE 2 END
        let e = PhysExpr::Case {
            operand: None,
            branches: vec![(lit(false), lit(1i64))],
            else_expr: Some(Box::new(lit(2i64))),
        };
        assert_eq!(eval(&e, &[]).unwrap(), Value::Int(2));
        // CASE 'x' WHEN 'x' THEN 1 END
        let e = PhysExpr::Case {
            operand: Some(Box::new(lit("x"))),
            branches: vec![(lit("x"), lit(1i64))],
            else_expr: None,
        };
        assert_eq!(eval(&e, &[]).unwrap(), Value::Int(1));
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let e = PhysExpr::Func {
            func: ScalarFn::Coalesce,
            args: vec![lit(Value::Null), lit("x"), lit("y")],
        };
        assert_eq!(eval(&e, &[]).unwrap(), Value::str("x"));
    }

    #[test]
    fn aggregate_count_and_count_distinct() {
        let rows = vec![
            vec![Value::str("a")],
            vec![Value::str("a")],
            vec![Value::str("b")],
            vec![Value::Null],
        ];
        let aggs = vec![
            AggSpec {
                func: AggFn::Count,
                arg: None,
                distinct: false,
            },
            AggSpec {
                func: AggFn::Count,
                arg: Some(PhysExpr::Col(0)),
                distinct: false,
            },
            AggSpec {
                func: AggFn::Count,
                arg: Some(PhysExpr::Col(0)),
                distinct: true,
            },
        ];
        let out = run_aggregate(&rows, &[], &aggs).unwrap();
        assert_eq!(out, vec![vec![Value::Int(4), Value::Int(3), Value::Int(2)]]);
    }

    #[test]
    fn aggregate_empty_input_global_row() {
        let aggs = vec![
            AggSpec {
                func: AggFn::Count,
                arg: None,
                distinct: false,
            },
            AggSpec {
                func: AggFn::Sum,
                arg: Some(PhysExpr::Col(0)),
                distinct: false,
            },
            AggSpec {
                func: AggFn::Min,
                arg: Some(PhysExpr::Col(0)),
                distinct: false,
            },
        ];
        let out = run_aggregate(&[], &[], &aggs).unwrap();
        assert_eq!(out, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    }

    #[test]
    fn aggregate_group_keys_include_null_group() {
        let rows = vec![
            vec![Value::str("x"), Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Null, Value::Int(3)],
        ];
        let group = vec![PhysExpr::Col(0)];
        let aggs = vec![AggSpec {
            func: AggFn::Count,
            arg: None,
            distinct: false,
        }];
        let out = run_aggregate(&rows, &group, &aggs).unwrap();
        assert_eq!(out.len(), 2);
        // NULL group aggregated together
        let null_group = out.iter().find(|r| r[0].is_null()).unwrap();
        assert_eq!(null_group[1], Value::Int(2));
    }

    #[test]
    fn sum_int_stays_int_mixed_becomes_float() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let aggs = vec![AggSpec {
            func: AggFn::Sum,
            arg: Some(PhysExpr::Col(0)),
            distinct: false,
        }];
        let out = run_aggregate(&rows, &[], &aggs).unwrap();
        assert_eq!(out[0][0], Value::Int(3));
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(0.5)]];
        let out = run_aggregate(&rows, &[], &aggs).unwrap();
        assert_eq!(out[0][0], Value::Float(1.5));
    }
}
