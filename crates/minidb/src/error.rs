//! Error type shared across the engine.

use std::fmt;

/// Errors produced by the storage layer, SQL front-end, planner and executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    UnknownTable(String),
    /// No column with this name in the referenced scope.
    UnknownColumn(String),
    /// Column reference matches more than one input column.
    AmbiguousColumn(String),
    /// Lexical error in the SQL text (message, byte offset).
    Lex(String, usize),
    /// Syntax error in the SQL text.
    Parse(String),
    /// Semantic error found while planning (arity mismatch, misuse of aggregates, ...).
    Plan(String),
    /// Runtime evaluation error (type mismatch, division by zero, ...).
    Eval(String),
    /// Schema violation on write (arity, type, or NOT NULL).
    Constraint(String),
    /// Malformed CSV input.
    Csv(String),
    /// Row id does not designate a live row.
    BadRowId(u64),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            DbError::Lex(m, off) => write!(f, "lex error at byte {off}: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::Csv(m) => write!(f, "csv error: {m}"),
            DbError::BadRowId(id) => write!(f, "no live row with id {id}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenient result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;
