//! Hand-rolled SQL lexer.

use crate::error::{DbError, DbResult};

/// A lexical token with its source offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source text.
    pub offset: usize,
}

/// Token kinds. Keywords are recognised case-insensitively and carried as
/// upper-cased `Keyword`s; identifiers keep their original spelling.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// SQL keyword (upper-cased).
    Keyword(String),
    /// Identifier (bare or `"quoted"`).
    Ident(String),
    /// String literal (quotes stripped, `''` unescaped).
    StrLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Punctuation / operator.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT", "OFFSET",
    "AS", "AND", "OR", "NOT", "NULL", "IS", "IN", "LIKE", "BETWEEN", "DISTINCT", "ALL", "CASE",
    "WHEN", "THEN", "ELSE", "END", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE", "DROP", "TABLE", "INDEX",
    "PRIMARY", "KEY", "COUNT", "SUM", "AVG", "MIN", "MAX", "TRUE", "FALSE", "INT", "INTEGER",
    "BIGINT", "TEXT", "VARCHAR", "CHAR", "STRING", "DOUBLE", "FLOAT", "REAL", "BOOL", "BOOLEAN",
    "IF", "EXISTS", "UNIQUE", "COALESCE", "UPPER", "LOWER", "LENGTH", "ABS",
];

/// Tokenize `src` into a vector ending with an `Eof` token.
pub fn tokenize(src: &str) -> DbResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 4 + 4);
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // -- line comments
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        let kind = match c {
            '(' => {
                i += 1;
                TokenKind::Symbol(Symbol::LParen)
            }
            ')' => {
                i += 1;
                TokenKind::Symbol(Symbol::RParen)
            }
            ',' => {
                i += 1;
                TokenKind::Symbol(Symbol::Comma)
            }
            '.' => {
                i += 1;
                TokenKind::Symbol(Symbol::Dot)
            }
            ';' => {
                i += 1;
                TokenKind::Symbol(Symbol::Semicolon)
            }
            '*' => {
                i += 1;
                TokenKind::Symbol(Symbol::Star)
            }
            '+' => {
                i += 1;
                TokenKind::Symbol(Symbol::Plus)
            }
            '-' => {
                i += 1;
                TokenKind::Symbol(Symbol::Minus)
            }
            '/' => {
                i += 1;
                TokenKind::Symbol(Symbol::Slash)
            }
            '%' => {
                i += 1;
                TokenKind::Symbol(Symbol::Percent)
            }
            '=' => {
                i += 1;
                TokenKind::Symbol(Symbol::Eq)
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Symbol(Symbol::NotEq)
                } else {
                    return Err(DbError::Lex("unexpected '!'".into(), i));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    i += 2;
                    TokenKind::Symbol(Symbol::LtEq)
                }
                Some(&b'>') => {
                    i += 2;
                    TokenKind::Symbol(Symbol::NotEq)
                }
                _ => {
                    i += 1;
                    TokenKind::Symbol(Symbol::Lt)
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    TokenKind::Symbol(Symbol::GtEq)
                } else {
                    i += 1;
                    TokenKind::Symbol(Symbol::Gt)
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    TokenKind::Symbol(Symbol::Concat)
                } else {
                    return Err(DbError::Lex("unexpected '|'".into(), i));
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Lex("unterminated string".into(), start)),
                        Some(&b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance over one UTF-8 scalar.
                            let rest = &src[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                TokenKind::StrLit(s)
            }
            '"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Lex("unterminated identifier".into(), start)),
                        Some(&b'"') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let rest = &src[i..];
                            let ch = rest.chars().next().unwrap();
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                TokenKind::Ident(s)
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                if j < bytes.len() && bytes[j] == b'.' && {
                    // Distinguish `1.5` from `1.` followed by something odd.
                    j + 1 < bytes.len() && (bytes[j + 1] as char).is_ascii_digit()
                } {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    let mut k = j + 1;
                    if k < bytes.len() && (bytes[k] == b'+' || bytes[k] == b'-') {
                        k += 1;
                    }
                    if k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        is_float = true;
                        j = k;
                        while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                            j += 1;
                        }
                    }
                }
                let text = &src[i..j];
                i = j;
                if is_float {
                    TokenKind::FloatLit(
                        text.parse()
                            .map_err(|_| DbError::Lex(format!("bad float {text}"), start))?,
                    )
                } else {
                    TokenKind::IntLit(
                        text.parse()
                            .map_err(|_| DbError::Lex(format!("bad int {text}"), start))?,
                    )
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let ch = bytes[j] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[i..j];
                i = j;
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_string())
                }
            }
            other => {
                return Err(DbError::Lex(format!("unexpected character {other:?}"), i));
            }
        };
        out.push(Token {
            kind,
            offset: start,
        });
    }
    out.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_idents_and_symbols() {
        let ks = kinds("SELECT a.b, c FROM t WHERE x <> 1.5");
        assert_eq!(ks[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(ks[1], TokenKind::Ident("a".into()));
        assert_eq!(ks[2], TokenKind::Symbol(Symbol::Dot));
        assert!(matches!(&ks[10], TokenKind::Symbol(Symbol::NotEq)));
        assert_eq!(ks[11], TokenKind::FloatLit(1.5));
    }

    #[test]
    fn string_escape_doubles_quotes() {
        let ks = kinds("'O''Hara'");
        assert_eq!(ks[0], TokenKind::StrLit("O'Hara".into()));
    }

    #[test]
    fn quoted_identifiers_preserve_case_and_keywords() {
        let ks = kinds("\"SELECT\"");
        assert_eq!(ks[0], TokenKind::Ident("SELECT".into()));
    }

    #[test]
    fn line_comments_are_skipped() {
        let ks = kinds("1 -- hello\n 2");
        assert_eq!(ks[0], TokenKind::IntLit(1));
        assert_eq!(ks[1], TokenKind::IntLit(2));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let ks = kinds("select Select SELECT");
        for k in &ks[..3] {
            assert_eq!(*k, TokenKind::Keyword("SELECT".into()));
        }
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn scientific_notation_floats() {
        let ks = kinds("1e3 2.5E-2");
        assert_eq!(ks[0], TokenKind::FloatLit(1000.0));
        assert_eq!(ks[1], TokenKind::FloatLit(0.025));
    }
}
