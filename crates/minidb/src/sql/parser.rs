//! Recursive-descent parser for the SQL subset.

use crate::error::{DbError, DbResult};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Symbol, Token, TokenKind};
use crate::value::{DataType, Value};

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> DbResult<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(src: &str) -> DbResult<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_symbol(Symbol::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_symbol(Symbol::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse a standalone expression (used by tests and constraint tooling).
pub fn parse_expr(src: &str) -> DbResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> DbResult<Parser> {
        Ok(Parser {
            tokens: tokenize(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn expect_eof(&self) -> DbResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn at_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.at_symbol(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> DbResult<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Accept an identifier; keywords that name functions/types are also
    /// valid identifiers in column positions for convenience.
    fn ident(&mut self) -> DbResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---------------------------------------------------------- statements

    fn statement(&mut self) -> DbResult<Statement> {
        match self.peek() {
            TokenKind::Keyword(k) => match k.as_str() {
                "SELECT" => Ok(Statement::Select(self.select()?)),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "CREATE" => self.create(),
                "DROP" => self.drop(),
                other => Err(DbError::Parse(format!("unexpected keyword {other}"))),
            },
            other => Err(DbError::Parse(format!(
                "expected statement, found {other:?}"
            ))),
        }
    }

    fn select(&mut self) -> DbResult<SelectStmt> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.eat_keyword("DISTINCT") {
            true
        } else {
            self.eat_keyword("ALL");
            false
        };
        let mut projections = vec![self.select_item()?];
        while self.eat_symbol(Symbol::Comma) {
            projections.push(self.select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.from_leading()?);
            loop {
                if self.eat_symbol(Symbol::Comma) {
                    let (table, alias) = self.table_ref()?;
                    from.push(FromItem {
                        table,
                        alias,
                        join: JoinSpec::Cross,
                    });
                } else if self.at_keyword("JOIN")
                    || self.at_keyword("INNER")
                    || self.at_keyword("LEFT")
                    || self.at_keyword("CROSS")
                {
                    from.push(self.join_item()?);
                } else {
                    break;
                }
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderKey { expr, asc });
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.usize_lit()?)
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            Some(self.usize_lit()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn usize_lit(&mut self) -> DbResult<usize> {
        match self.bump() {
            TokenKind::IntLit(n) if n >= 0 => Ok(n as usize),
            other => Err(DbError::Parse(format!(
                "expected non-negative integer, found {other:?}"
            ))),
        }
    }

    fn select_item(&mut self) -> DbResult<SelectItem> {
        if self.at_symbol(Symbol::Star) {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let TokenKind::Ident(name) = self.peek() {
            if matches!(self.peek2(), TokenKind::Symbol(Symbol::Dot)) {
                // Look one past the dot.
                let third = self
                    .tokens
                    .get(self.pos + 2)
                    .map(|t| t.kind.clone())
                    .unwrap_or(TokenKind::Eof);
                if matches!(third, TokenKind::Symbol(Symbol::Star)) {
                    let q = name.clone();
                    self.bump();
                    self.bump();
                    self.bump();
                    return Ok(SelectItem::QualifiedWildcard(q));
                }
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            // Bare alias.
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> DbResult<(String, Option<String>)> {
        let table = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok((table, alias))
    }

    #[allow(clippy::wrong_self_convention)] // parses the leading FROM item
    fn from_leading(&mut self) -> DbResult<FromItem> {
        let (table, alias) = self.table_ref()?;
        Ok(FromItem {
            table,
            alias,
            join: JoinSpec::Leading,
        })
    }

    fn join_item(&mut self) -> DbResult<FromItem> {
        if self.eat_keyword("CROSS") {
            self.expect_keyword("JOIN")?;
            let (table, alias) = self.table_ref()?;
            return Ok(FromItem {
                table,
                alias,
                join: JoinSpec::Cross,
            });
        }
        let left = self.eat_keyword("LEFT");
        if left {
            self.eat_keyword("OUTER");
        } else {
            self.eat_keyword("INNER");
        }
        self.expect_keyword("JOIN")?;
        let (table, alias) = self.table_ref()?;
        self.expect_keyword("ON")?;
        let on = self.expr()?;
        Ok(FromItem {
            table,
            alias,
            join: if left {
                JoinSpec::Left(on)
            } else {
                JoinSpec::Inner(on)
            },
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let columns = if self.at_symbol(Symbol::LParen) {
            self.bump();
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            Some(cols)
        } else {
            None
        };
        let source = if self.eat_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat_symbol(Symbol::Comma) {
                    row.push(self.expr()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                rows.push(row);
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.at_keyword("SELECT") {
            InsertSource::Query(Box::new(self.select()?))
        } else {
            return Err(DbError::Parse("expected VALUES or SELECT".into()));
        };
        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            source,
        }))
    }

    fn update(&mut self) -> DbResult<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            let e = self.expr()?;
            assignments.push((col, e));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(UpdateStmt {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(DeleteStmt {
            table,
            where_clause,
        }))
    }

    fn create(&mut self) -> DbResult<Statement> {
        self.expect_keyword("CREATE")?;
        if self.eat_keyword("TABLE") {
            let if_not_exists = if self.eat_keyword("IF") {
                self.expect_keyword("NOT")?;
                self.expect_keyword("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let dtype = self.data_type()?;
                let mut not_null = false;
                loop {
                    if self.eat_keyword("NOT") {
                        self.expect_keyword("NULL")?;
                        not_null = true;
                    } else if self.eat_keyword("PRIMARY") {
                        self.expect_keyword("KEY")?;
                        not_null = true;
                    } else if self.eat_keyword("NULL") || self.eat_keyword("UNIQUE") {
                        // accepted and ignored
                    } else {
                        break;
                    }
                }
                columns.push((col, dtype, not_null));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            Ok(Statement::CreateTable(CreateTableStmt {
                name,
                columns,
                if_not_exists,
            }))
        } else if self.eat_keyword("INDEX") {
            let name = self.ident()?;
            self.expect_keyword("ON")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            Ok(Statement::CreateIndex {
                name,
                table,
                columns,
            })
        } else {
            Err(DbError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ))
        }
    }

    fn drop(&mut self) -> DbResult<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let if_exists = if self.eat_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn data_type(&mut self) -> DbResult<DataType> {
        let kw = match self.bump() {
            TokenKind::Keyword(k) => k,
            other => return Err(DbError::Parse(format!("expected type, found {other:?}"))),
        };
        let dt = match kw.as_str() {
            "INT" | "INTEGER" | "BIGINT" => DataType::Int,
            "TEXT" | "STRING" => DataType::Str,
            "VARCHAR" | "CHAR" => {
                // optional (n)
                if self.eat_symbol(Symbol::LParen) {
                    self.usize_lit()?;
                    self.expect_symbol(Symbol::RParen)?;
                }
                DataType::Str
            }
            "DOUBLE" | "FLOAT" | "REAL" => DataType::Float,
            "BOOL" | "BOOLEAN" => DataType::Bool,
            other => return Err(DbError::Parse(format!("unknown type {other}"))),
        };
        Ok(dt)
    }

    // -------------------------------------------------------- expressions

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut e = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            e = Expr::bin(BinOp::And, e, rhs);
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> DbResult<Expr> {
        let e = self.additive()?;
        // IS [NOT] NULL / IS [NOT] DISTINCT FROM
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            if self.eat_keyword("NULL") {
                return Ok(Expr::IsNull {
                    expr: Box::new(e),
                    negated,
                });
            }
            // IS [NOT] DISTINCT FROM rhs
            if !self.eat_keyword("DISTINCT") {
                return Err(DbError::Parse("expected NULL or DISTINCT after IS".into()));
            }
            self.expect_keyword("FROM")?;
            let rhs = self.additive()?;
            let same = Expr::bin(BinOp::NullSafeEq, e, rhs);
            return Ok(if negated {
                same
            } else {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(same),
                }
            });
        }
        let negated = if self.at_keyword("NOT")
            && matches!(self.peek2(), TokenKind::Keyword(k) if k == "IN" || k == "LIKE" || k == "BETWEEN")
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(e),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(e),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(DbError::Parse(
                "expected IN, LIKE or BETWEEN after NOT".into(),
            ));
        }
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinOp::Eq),
            TokenKind::Symbol(Symbol::NotEq) => Some(BinOp::NotEq),
            TokenKind::Symbol(Symbol::Lt) => Some(BinOp::Lt),
            TokenKind::Symbol(Symbol::LtEq) => Some(BinOp::LtEq),
            TokenKind::Symbol(Symbol::Gt) => Some(BinOp::Gt),
            TokenKind::Symbol(Symbol::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::bin(op, e, rhs));
        }
        Ok(e)
    }

    fn additive(&mut self) -> DbResult<Expr> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Plus) => BinOp::Add,
                TokenKind::Symbol(Symbol::Minus) => BinOp::Sub,
                TokenKind::Symbol(Symbol::Concat) => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> DbResult<Expr> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Star) => BinOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => BinOp::Div,
                TokenKind::Symbol(Symbol::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            e = Expr::bin(op, e, rhs);
        }
        Ok(e)
    }

    fn unary(&mut self) -> DbResult<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(n) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(n)))
            }
            TokenKind::FloatLit(f) => {
                self.bump();
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Expr::Literal(Value::str(s)))
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Keyword(kw) => self.keyword_primary(&kw),
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_symbol(Symbol::Dot) {
                    let col = self.column_name_token()?;
                    Ok(Expr::qcol(name, col))
                } else {
                    Ok(Expr::col(name))
                }
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// After `alias.` a column name may lexically collide with a keyword
    /// (e.g. `t.COUNT` is unusual but `t."NAME"` and plain idents dominate);
    /// accept identifiers and a few safe keywords.
    fn column_name_token(&mut self) -> DbResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            TokenKind::Keyword(k) => Ok(k),
            other => Err(DbError::Parse(format!(
                "expected column name after '.', found {other:?}"
            ))),
        }
    }

    fn keyword_primary(&mut self, kw: &str) -> DbResult<Expr> {
        match kw {
            "NULL" => {
                self.bump();
                Ok(Expr::Literal(Value::Null))
            }
            "TRUE" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            "FALSE" => {
                self.bump();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            "CASE" => self.case_expr(),
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => self.aggregate(kw),
            "COALESCE" | "UPPER" | "LOWER" | "LENGTH" | "ABS" => self.scalar_fn(kw),
            other => Err(DbError::Parse(format!(
                "keyword {other} cannot start an expression"
            ))),
        }
    }

    fn case_expr(&mut self) -> DbResult<Expr> {
        self.expect_keyword("CASE")?;
        let operand = if !self.at_keyword("WHEN") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let w = self.expr()?;
            self.expect_keyword("THEN")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(DbError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_expr = if self.eat_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }

    fn aggregate(&mut self, kw: &str) -> DbResult<Expr> {
        let func = match kw {
            "COUNT" => AggFn::Count,
            "SUM" => AggFn::Sum,
            "AVG" => AggFn::Avg,
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            _ => unreachable!("checked by caller"),
        };
        self.bump(); // the keyword
        self.expect_symbol(Symbol::LParen)?;
        if func == AggFn::Count && self.eat_symbol(Symbol::Star) {
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::Aggregate {
                func,
                arg: None,
                distinct: false,
            });
        }
        let distinct = self.eat_keyword("DISTINCT");
        let arg = self.expr()?;
        self.expect_symbol(Symbol::RParen)?;
        Ok(Expr::Aggregate {
            func,
            arg: Some(Box::new(arg)),
            distinct,
        })
    }

    fn scalar_fn(&mut self, kw: &str) -> DbResult<Expr> {
        let func = match kw {
            "COALESCE" => ScalarFn::Coalesce,
            "UPPER" => ScalarFn::Upper,
            "LOWER" => ScalarFn::Lower,
            "LENGTH" => ScalarFn::Length,
            "ABS" => ScalarFn::Abs,
            _ => unreachable!("checked by caller"),
        };
        self.bump();
        self.expect_symbol(Symbol::LParen)?;
        let mut args = vec![self.expr()?];
        while self.eat_symbol(Symbol::Comma) {
            args.push(self.expr()?);
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Expr::Func { func, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse_statement("SELECT a, b AS x FROM t WHERE a = 1").unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert_eq!(sel.projections.len(), 2);
        assert!(sel.where_clause.is_some());
        assert_eq!(sel.from.len(), 1);
    }

    #[test]
    fn parses_join_group_having_order_limit() {
        let s = parse_statement(
            "SELECT t.cnt, COUNT(DISTINCT t.city) FROM customer t \
             JOIN tab p ON (p.cnt IS NULL OR t.cnt = p.cnt) \
             WHERE t.zip <> 'x' GROUP BY t.cnt HAVING COUNT(DISTINCT t.city) > 1 \
             ORDER BY 1 DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.from.len(), 2);
        assert!(matches!(sel.from[1].join, JoinSpec::Inner(_)));
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.limit, Some(10));
        assert_eq!(sel.offset, Some(2));
    }

    #[test]
    fn parses_insert_update_delete_ddl() {
        assert!(matches!(
            parse_statement("INSERT INTO t (a,b) VALUES (1,'x'), (2,'y')").unwrap(),
            Statement::Insert(_)
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = a + 1 WHERE b LIKE 'x%'").unwrap(),
            Statement::Update(_)
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a IS NOT NULL").unwrap(),
            Statement::Delete(_)
        ));
        assert!(matches!(
            parse_statement("CREATE TABLE t (a INT NOT NULL, b VARCHAR(10))").unwrap(),
            Statement::CreateTable(_)
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parses_insert_from_select() {
        let s = parse_statement("INSERT INTO t SELECT a, b FROM u").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        assert!(matches!(ins.source, InsertSource::Query(_)));
    }

    #[test]
    fn operator_precedence_and_or() {
        // a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3)
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        let Expr::Binary { op: BinOp::Or, .. } = e else {
            panic!("OR must be top-level")
        };
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_is_not_distinct_from() {
        let e = parse_expr("a IS NOT DISTINCT FROM b").unwrap();
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinOp::NullSafeEq,
                ..
            }
        ));
        let e = parse_expr("a IS DISTINCT FROM b").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn parses_not_in_and_between() {
        assert!(matches!(
            parse_expr("a NOT IN (1, 2)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("a BETWEEN 1 AND 3").unwrap(),
            Expr::Between { negated: false, .. }
        ));
    }

    #[test]
    fn parses_case_and_functions() {
        assert!(matches!(
            parse_expr("CASE WHEN a = 1 THEN 'x' ELSE 'y' END").unwrap(),
            Expr::Case { .. }
        ));
        assert!(matches!(
            parse_expr("COALESCE(a, 'none')").unwrap(),
            Expr::Func {
                func: ScalarFn::Coalesce,
                ..
            }
        ));
    }

    #[test]
    fn script_parsing_splits_statements() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn count_star_and_count_distinct() {
        assert!(matches!(
            parse_expr("COUNT(*)").unwrap(),
            Expr::Aggregate {
                func: AggFn::Count,
                arg: None,
                distinct: false
            }
        ));
        assert!(matches!(
            parse_expr("COUNT(DISTINCT a)").unwrap(),
            Expr::Aggregate {
                func: AggFn::Count,
                distinct: true,
                ..
            }
        ));
    }
}
