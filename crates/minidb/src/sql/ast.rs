//! Abstract syntax for the supported SQL subset.

use crate::value::{DataType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES (...), ... | SELECT ...`
    Insert(InsertStmt),
    /// `UPDATE t SET c = e, ... [WHERE p]`
    Update(UpdateStmt),
    /// `DELETE FROM t [WHERE p]`
    Delete(DeleteStmt),
    /// `CREATE TABLE [IF NOT EXISTS] t (col type [NOT NULL], ...)`
    CreateTable(CreateTableStmt),
    /// `DROP TABLE [IF EXISTS] t`
    DropTable { name: String, if_exists: bool },
    /// `CREATE INDEX name ON t (cols)`
    CreateIndex {
        name: String,
        table: String,
        columns: Vec<String>,
    },
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// `FROM` clause: first table plus joins (comma joins become cross joins).
    pub from: Vec<FromItem>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A `FROM` entry: a base table with an optional alias and how it joins the
/// tables to its left.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// Table name.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// How this item combines with everything before it.
    pub join: JoinSpec,
}

/// Join specification.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum JoinSpec {
    /// First `FROM` entry.
    Leading,
    /// Comma or `CROSS JOIN`.
    Cross,
    /// `[INNER] JOIN ... ON p`.
    Inner(Expr),
    /// `LEFT [OUTER] JOIN ... ON p`.
    Left(Expr),
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Key expression (may be an output alias or 1-based position).
    pub expr: Expr,
    /// Ascending?
    pub asc: bool,
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Source of rows.
    pub source: InsertSource,
}

/// Rows for an `INSERT`.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum InsertSource {
    /// `VALUES (...), (...)` — expressions must be constant.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO ... SELECT ...`
    Query(Box<SelectStmt>),
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments.
    pub assignments: Vec<(String, Expr)>,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional predicate.
    pub where_clause: Option<Expr>,
}

/// `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    /// Table name.
    pub name: String,
    /// Column definitions `(name, type, not_null)`.
    pub columns: Vec<(String, DataType, bool)>,
    /// `IF NOT EXISTS`?
    pub if_not_exists: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// Null-safe equality: `IS NOT DISTINCT FROM`.
    NullSafeEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    Neg,
}

/// Scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ScalarFn {
    Coalesce,
    Upper,
    Lower,
    Length,
    Abs,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFn {
    /// `COUNT(*)` (arg is `None`) or `COUNT(expr)`.
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference, optionally qualified.
    Column {
        /// Table or alias qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operator application.
    Unary { op: UnOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (e1, ..., en)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (pattern is an expression, usually literal).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] BETWEEN lo AND hi`.
    Between {
        expr: Box<Expr>,
        lo: Box<Expr>,
        hi: Box<Expr>,
        negated: bool,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Scalar function call.
    Func { func: ScalarFn, args: Vec<Expr> },
    /// Aggregate call; `distinct` only meaningful for COUNT/SUM/AVG.
    Aggregate {
        func: AggFn,
        /// `None` means `COUNT(*)`.
        arg: Option<Box<Expr>>,
        distinct: bool,
    },
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            table: None,
            name: name.into(),
        }
    }

    /// Qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            table: Some(table.into()),
            name: name.into(),
        }
    }

    /// Literal expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `left op right`.
    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Fold a list of predicates with AND; `None` for an empty list.
    pub fn conjoin(preds: Vec<Expr>) -> Option<Expr> {
        preds.into_iter().reduce(|a, b| Expr::bin(BinOp::And, a, b))
    }

    /// Does this expression (sub)tree contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(_) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Between { expr, lo, hi, .. } => {
                expr.contains_aggregate() || lo.contains_aggregate() || hi.contains_aggregate()
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
        }
    }
}
