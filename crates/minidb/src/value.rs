//! Runtime values and data types.
//!
//! `Value` is the dynamically typed cell of the engine. Strings are
//! reference-counted (`Arc<str>`) so rows can be cloned cheaply during joins
//! and repairs.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "TEXT"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

/// A dynamically typed SQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (cheaply cloneable).
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// View as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as `i64`, if an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view (ints widen to floats), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// View as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL equality with three-valued logic: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.strong_eq(other))
    }

    /// Null-safe equality (`IS NOT DISTINCT FROM`): NULL equals NULL.
    pub fn strong_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64) == *b
            }
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }

    /// SQL ordering comparison: `None` if either side is NULL or the types
    /// are not comparable (e.g. string vs int).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering used for ORDER BY and index keys: NULL sorts first,
    /// then booleans, numerics, strings; NaN sorts after all numbers.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                let a = self.as_f64().unwrap();
                let b = other.as_f64().unwrap();
                a.total_cmp(&b)
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Coerce to `dtype` on insert. Ints widen to floats; anything parses
    /// from a string only if it is already the right variant (we do not do
    /// implicit string→number casts on write).
    pub fn coerce(self, dtype: DataType) -> DbResult<Value> {
        match (&self, dtype) {
            (Value::Null, _) => Ok(self),
            (Value::Int(_), DataType::Int)
            | (Value::Float(_), DataType::Float)
            | (Value::Str(_), DataType::Str)
            | (Value::Bool(_), DataType::Bool) => Ok(self),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            _ => Err(DbError::Constraint(format!(
                "cannot store {self} in a {dtype} column"
            ))),
        }
    }

    /// Render as a bare string (no quoting) — used by CSV export and the
    /// ASCII renderers.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            other => other.to_string(),
        }
    }

    /// Quote a string for embedding in generated SQL (single quotes doubled).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f:?}"),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.strong_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equal.
            Value::Int(i) => {
                state.write_u8(2);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                state.write_u8(2);
                let canon = if v.is_nan() { f64::NAN } else { *v };
                canon.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_propagates_in_sql_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn strong_eq_treats_null_as_equal() {
        assert!(Value::Null.strong_eq(&Value::Null));
        assert!(!Value::Null.strong_eq(&Value::Int(0)));
    }

    #[test]
    fn int_float_cross_type_equality_and_hash_agree() {
        let a = Value::Int(3);
        let b = Value::Float(3.0);
        assert!(a.strong_eq(&b));
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn nan_equals_itself_for_grouping() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert!(a.strong_eq(&b));
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn sql_cmp_is_none_for_mixed_string_number() {
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::str("a").sql_cmp(&Value::str("b")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_orders_across_types() {
        let mut vs = [
            Value::str("x"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Float(2.5));
        assert_eq!(vs[3], Value::Int(5));
        assert_eq!(vs[4], Value::str("x"));
    }

    #[test]
    fn coerce_widens_int_to_float_only() {
        assert_eq!(
            Value::Int(2).coerce(DataType::Float).unwrap(),
            Value::Float(2.0)
        );
        assert!(Value::str("2").coerce(DataType::Int).is_err());
        assert!(Value::Null.coerce(DataType::Int).is_ok());
    }

    #[test]
    fn sql_literal_escapes_quotes() {
        assert_eq!(Value::str("O'Hara").sql_literal(), "'O''Hara'");
        assert_eq!(Value::Null.sql_literal(), "NULL");
    }
}
