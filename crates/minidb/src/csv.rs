//! Minimal RFC-4180-style CSV reader/writer (quoted fields, embedded
//! commas/newlines/quotes), plus typed table import/export.

use std::io::{BufRead, Write};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Parse one CSV record from `input` starting at `*pos`; returns the fields
/// or `None` at end of input. Handles quoted fields with embedded newlines.
fn parse_record(input: &str, pos: &mut usize) -> DbResult<Option<Vec<String>>> {
    let bytes = input.as_bytes();
    if *pos >= bytes.len() {
        return Ok(None);
    }
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut i = *pos;
    loop {
        if i >= bytes.len() {
            if in_quotes {
                return Err(DbError::Csv("unterminated quoted field".into()));
            }
            fields.push(std::mem::take(&mut field));
            *pos = i;
            return Ok(Some(fields));
        }
        let c = bytes[i] as char;
        if in_quotes {
            match c {
                '"' => {
                    if bytes.get(i + 1) == Some(&b'"') {
                        field.push('"');
                        i += 2;
                    } else {
                        in_quotes = false;
                        i += 1;
                    }
                }
                _ => {
                    let ch = input[i..].chars().next().unwrap();
                    field.push(ch);
                    i += ch.len_utf8();
                }
            }
        } else {
            match c {
                '"' if field.is_empty() => {
                    in_quotes = true;
                    i += 1;
                }
                ',' => {
                    fields.push(std::mem::take(&mut field));
                    i += 1;
                }
                '\r' => {
                    if bytes.get(i + 1) == Some(&b'\n') {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    fields.push(std::mem::take(&mut field));
                    *pos = i;
                    return Ok(Some(fields));
                }
                '\n' => {
                    i += 1;
                    fields.push(std::mem::take(&mut field));
                    *pos = i;
                    return Ok(Some(fields));
                }
                _ => {
                    let ch = input[i..].chars().next().unwrap();
                    field.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
    }
}

/// Parse a whole CSV document into records.
pub fn parse_csv(input: &str) -> DbResult<Vec<Vec<String>>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while let Some(rec) = parse_record(input, &mut pos)? {
        // Skip completely empty trailing lines.
        if rec.len() == 1 && rec[0].is_empty() && pos >= input.len() {
            break;
        }
        out.push(rec);
    }
    Ok(out)
}

/// Quote a field if needed.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serialize records to CSV text.
pub fn to_csv<S: AsRef<str>>(records: &[Vec<S>]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut first = true;
        for f in rec {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&quote(f.as_ref()));
        }
        out.push('\n');
    }
    out
}

/// Build a table named `name` from CSV text whose first record is the
/// header. Values are parsed according to `schema`; empty fields become
/// NULL for nullable columns and empty strings for TEXT NOT NULL.
pub fn table_from_csv(name: &str, schema: Schema, csv_text: &str) -> DbResult<Table> {
    let records = parse_csv(csv_text)?;
    let Some(header) = records.first() else {
        return Ok(Table::new(name.to_string(), schema));
    };
    if header.len() != schema.arity() {
        return Err(DbError::Csv(format!(
            "header has {} fields, schema has {}",
            header.len(),
            schema.arity()
        )));
    }
    let mut t = Table::new(name.to_string(), schema);
    for rec in &records[1..] {
        if rec.len() != t.schema().arity() {
            return Err(DbError::Csv(format!(
                "record has {} fields, expected {}",
                rec.len(),
                t.schema().arity()
            )));
        }
        let row: Vec<Value> = rec
            .iter()
            .zip(t.schema().columns().to_vec())
            .map(|(f, col)| parse_field(f, col.dtype, col.nullable))
            .collect::<DbResult<_>>()?;
        t.insert(row)?;
    }
    Ok(t)
}

fn parse_field(field: &str, dtype: DataType, nullable: bool) -> DbResult<Value> {
    if field.is_empty() {
        return Ok(if nullable {
            Value::Null
        } else {
            Value::str("")
        });
    }
    match dtype {
        DataType::Str => Ok(Value::str(field)),
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::Csv(format!("bad integer: {field}"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DbError::Csv(format!("bad float: {field}"))),
        DataType::Bool => match field.to_ascii_lowercase().as_str() {
            "true" | "t" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "0" => Ok(Value::Bool(false)),
            _ => Err(DbError::Csv(format!("bad boolean: {field}"))),
        },
    }
}

/// Export a table as CSV text (header + rows).
pub fn table_to_csv(table: &Table) -> String {
    let mut records: Vec<Vec<String>> = Vec::with_capacity(table.len() + 1);
    records.push(
        table
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for (_, row) in table.iter() {
        records.push(row.iter().map(Value::render).collect());
    }
    to_csv(&records)
}

/// Stream a table as CSV to a writer (buffvon the caller's choice).
pub fn write_table_csv<W: Write>(table: &Table, w: &mut W) -> std::io::Result<()> {
    w.write_all(table_to_csv(table).as_bytes())
}

/// Read CSV from a buffered reader and build a table.
pub fn read_table_csv<R: BufRead>(name: &str, schema: Schema, r: &mut R) -> DbResult<Table> {
    let mut text = String::new();
    r.read_to_string(&mut text)
        .map_err(|e| DbError::Csv(e.to_string()))?;
    table_from_csv(name, schema, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    #[test]
    fn roundtrip_with_quoting() {
        let records = vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["d\"e".to_string(), "f\ng".to_string()],
        ];
        let text = to_csv(&records);
        let parsed = parse_csv(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn crlf_records() {
        let parsed = parse_csv("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(parsed, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn typed_table_import() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("score", DataType::Float),
            Column::new("ok", DataType::Bool),
        ])
        .unwrap();
        let t = table_from_csv(
            "t",
            schema,
            "id,name,score,ok\n1,alice,3.5,true\n2,bob,,false\n",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(crate::table::RowId(0)).unwrap()[2], Value::Float(3.5));
        assert!(t.get(crate::table::RowId(1)).unwrap()[2].is_null());
    }

    #[test]
    fn export_then_import_is_identity_for_strings() {
        let schema = Schema::of_strings(&["a", "b"]);
        let mut t = Table::new("t", schema.clone());
        t.insert(vec![Value::str("x,y"), Value::str("z")]).unwrap();
        t.insert(vec![Value::str("quote\"d"), Value::str("line\nbreak")])
            .unwrap();
        let text = table_to_csv(&t);
        let t2 = table_from_csv("t", schema, &text).unwrap();
        assert_eq!(t2.len(), 2);
        assert_eq!(
            t2.get(crate::table::RowId(1)).unwrap()[1],
            Value::str("line\nbreak")
        );
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let schema = Schema::of_strings(&["a", "b"]);
        assert!(table_from_csv("t", schema, "a,b\n1,2,3\n").is_err());
    }
}
