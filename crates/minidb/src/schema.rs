//! Table schemas: ordered, typed, named columns.

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is admissible.
    pub nullable: bool,
}

impl Column {
    /// A nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; column names must be distinct (case-insensitively).
    pub fn new(columns: Vec<Column>) -> DbResult<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i]
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(&c.name))
            {
                return Err(DbError::Constraint(format!(
                    "duplicate column name: {}",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Shorthand: all-`Str`, nullable columns with the given names.
    pub fn of_strings(names: &[&str]) -> Schema {
        Schema::new(
            names
                .iter()
                .map(|n| Column::new(*n, DataType::Str))
                .collect(),
        )
        .expect("string schema with distinct names")
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Index of column `name` (case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Index of column `name`, or an `UnknownColumn` error.
    pub fn require(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Column names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validate and coerce a row against this schema. Coercion happens in
    /// place — the common all-types-match row is validated without
    /// reallocating (this sits on every insert of every ingest path).
    pub fn check_row(&self, mut row: Vec<Value>) -> DbResult<Vec<Value>> {
        if row.len() != self.arity() {
            return Err(DbError::Constraint(format!(
                "row arity {} does not match schema arity {}",
                row.len(),
                self.arity()
            )));
        }
        for (v, c) in row.iter_mut().zip(&self.columns) {
            if v.is_null() && !c.nullable {
                return Err(DbError::Constraint(format!(
                    "NULL in NOT NULL column {}",
                    c.name
                )));
            }
            if v.data_type().is_none_or(|t| t == c.dtype) {
                continue;
            }
            *v = std::mem::replace(v, Value::Null).coerce(c.dtype)?;
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_duplicate_names_case_insensitively() {
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("A", DataType::Str),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn index_lookup_is_case_insensitive() {
        let s = Schema::of_strings(&["Name", "City"]);
        assert_eq!(s.index_of("name"), Some(0));
        assert_eq!(s.index_of("CITY"), Some(1));
        assert_eq!(s.index_of("zip"), None);
    }

    #[test]
    fn check_row_enforces_arity_type_and_nullability() {
        let s = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("name", DataType::Str),
        ])
        .unwrap();
        assert!(s.check_row(vec![Value::Int(1)]).is_err());
        assert!(s.check_row(vec![Value::Null, Value::str("x")]).is_err());
        assert!(s.check_row(vec![Value::str("1"), Value::str("x")]).is_err());
        let ok = s.check_row(vec![Value::Int(1), Value::Null]).unwrap();
        assert_eq!(ok, vec![Value::Int(1), Value::Null]);
    }
}
