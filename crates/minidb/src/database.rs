//! The `Database`: catalog + statement execution.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::exec::{eval, execute_plan, QueryResult, TableSource};
use crate::index::HashIndex;
use crate::plan::{plan_select, CatalogView, PhysExpr, PlannedQuery};
use crate::schema::{Column, Schema};
use crate::sql::ast::{InsertSource, SelectStmt, Statement};
use crate::sql::parser::{parse_script, parse_statement};
use crate::table::{RowId, Table};
use crate::value::{DataType, Value};

/// Outcome of executing one SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A query produced rows.
    Rows(QueryResult),
    /// A DML/DDL statement affected this many rows (0 for DDL).
    Affected(usize),
}

impl ExecOutcome {
    /// Unwrap the row set, panicking on DML outcomes (test helper).
    pub fn rows(self) -> QueryResult {
        match self {
            ExecOutcome::Rows(r) => r,
            ExecOutcome::Affected(n) => panic!("expected rows, got Affected({n})"),
        }
    }
}

/// An in-memory relational database: named tables plus secondary indexes.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: HashMap<String, Table>,      // keyed by lower-cased name
    indexes: HashMap<String, HashIndex>, // keyed by index name (lower-cased)
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    // ------------------------------------------------------------ catalog

    /// Create a table; errors if the name is taken.
    pub fn create_table(&mut self, name: impl Into<String>, schema: Schema) -> DbResult<()> {
        let name = name.into();
        let k = key(&name);
        if self.tables.contains_key(&k) {
            return Err(DbError::TableExists(name));
        }
        self.tables.insert(k, Table::new(name, schema));
        Ok(())
    }

    /// Register an already-built table (used for tableau encodings and
    /// materialized query results). Replaces any existing table of the name.
    pub fn register_table(&mut self, table: Table) {
        let k = key(table.name());
        self.indexes
            .retain(|_, ix| !ix.table().eq_ignore_ascii_case(table.name()));
        self.tables.insert(k, table);
    }

    /// Drop a table (and its indexes).
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let k = key(name);
        if self.tables.remove(&k).is_none() {
            return Err(DbError::UnknownTable(name.to_string()));
        }
        self.indexes
            .retain(|_, ix| !ix.table().eq_ignore_ascii_case(name));
        Ok(())
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&key(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Get a table mutably. Note: bulk edits through this handle bypass
    /// index maintenance; prefer the `insert_row`/`update_cell`/`delete_row`
    /// methods when indexes exist.
    pub fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(&key(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name().to_string()).collect();
        names.sort();
        names
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&key(name))
    }

    /// The mutation epoch of a table (see [`Table::epoch`]) — the freshness
    /// probe snapshot caches key on.
    pub fn table_epoch(&self, name: &str) -> DbResult<u64> {
        Ok(self.table(name)?.epoch())
    }

    // ----------------------------------------------------------- writes

    /// Insert a row, maintaining indexes; returns the new row id.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> DbResult<RowId> {
        let t = self.table_mut(table)?;
        let id = t.insert(row)?;
        let row_ref: Vec<Value> = t.get(id)?.to_vec();
        for ix in self.indexes.values_mut() {
            if ix.table().eq_ignore_ascii_case(table) {
                ix.insert(&row_ref, id);
            }
        }
        Ok(id)
    }

    /// Delete a row, maintaining indexes; returns the old values.
    pub fn delete_row(&mut self, table: &str, id: RowId) -> DbResult<Vec<Value>> {
        let t = self.table_mut(table)?;
        let old = t.delete(id)?;
        for ix in self.indexes.values_mut() {
            if ix.table().eq_ignore_ascii_case(table) {
                ix.remove(&old, id);
            }
        }
        Ok(old)
    }

    /// Update a single cell, maintaining indexes; returns the old value.
    pub fn update_cell(
        &mut self,
        table: &str,
        id: RowId,
        col: usize,
        value: Value,
    ) -> DbResult<Value> {
        let t = self.table_mut(table)?;
        let before: Vec<Value> = t.get(id)?.to_vec();
        let old = t.update_cell(id, col, value)?;
        let after: Vec<Value> = t.get(id)?.to_vec();
        for ix in self.indexes.values_mut() {
            if ix.table().eq_ignore_ascii_case(table) {
                ix.remove(&before, id);
                ix.insert(&after, id);
            }
        }
        Ok(old)
    }

    // ---------------------------------------------------------- indexes

    /// Create a named hash index over `columns` of `table`.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: &str,
        columns: &[&str],
    ) -> DbResult<()> {
        let t = self.table(table)?;
        let cols: Vec<usize> = columns
            .iter()
            .map(|c| t.schema().require(c))
            .collect::<DbResult<_>>()?;
        let mut ix = HashIndex::new(t.name().to_string(), cols);
        for (id, row) in t.iter() {
            ix.insert(row, id);
        }
        self.indexes.insert(key(&name.into()), ix);
        Ok(())
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Option<&HashIndex> {
        self.indexes.get(&key(name))
    }

    // --------------------------------------------------------------- SQL

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        let stmt = parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Execute a `;`-separated script; returns the outcome of each statement.
    pub fn execute_script(&mut self, sql: &str) -> DbResult<Vec<ExecOutcome>> {
        let stmts = parse_script(sql)?;
        stmts.iter().map(|s| self.execute_statement(s)).collect()
    }

    /// Run a `SELECT` and return its rows (errors on non-queries).
    pub fn query(&self, sql: &str) -> DbResult<QueryResult> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => self.run_select(&sel),
            _ => Err(DbError::Plan("expected a SELECT statement".into())),
        }
    }

    /// Plan a `SELECT` (for inspection / EXPLAIN).
    pub fn plan(&self, sql: &str) -> DbResult<PlannedQuery> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => plan_select(&CatalogAdapter(self), &sel),
            _ => Err(DbError::Plan("expected a SELECT statement".into())),
        }
    }

    fn run_select(&self, sel: &SelectStmt) -> DbResult<QueryResult> {
        let planned = plan_select(&CatalogAdapter(self), sel)?;
        let rows = execute_plan(&SourceAdapter(self), &planned.plan)?;
        Ok(QueryResult {
            columns: planned.columns,
            rows,
        })
    }

    fn execute_statement(&mut self, stmt: &Statement) -> DbResult<ExecOutcome> {
        match stmt {
            Statement::Select(sel) => Ok(ExecOutcome::Rows(self.run_select(sel)?)),
            Statement::CreateTable(ct) => {
                if ct.if_not_exists && self.has_table(&ct.name) {
                    return Ok(ExecOutcome::Affected(0));
                }
                let cols = ct
                    .columns
                    .iter()
                    .map(|(n, dt, not_null)| {
                        if *not_null {
                            Column::not_null(n.clone(), *dt)
                        } else {
                            Column::new(n.clone(), *dt)
                        }
                    })
                    .collect();
                self.create_table(ct.name.clone(), Schema::new(cols)?)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::DropTable { name, if_exists } => {
                if *if_exists && !self.has_table(name) {
                    return Ok(ExecOutcome::Affected(0));
                }
                self.drop_table(name)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.create_index(name.clone(), table, &cols)?;
                Ok(ExecOutcome::Affected(0))
            }
            Statement::Insert(ins) => {
                let target_schema = self.table(&ins.table)?.schema().clone();
                // Map provided columns to schema positions.
                let positions: Vec<usize> = match &ins.columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| target_schema.require(c))
                        .collect::<DbResult<_>>()?,
                    None => (0..target_schema.arity()).collect(),
                };
                let source_rows: Vec<Vec<Value>> = match &ins.source {
                    InsertSource::Values(rows) => {
                        let mut out = Vec::with_capacity(rows.len());
                        for exprs in rows {
                            let mut row = Vec::with_capacity(exprs.len());
                            for e in exprs {
                                // VALUES expressions must be constant.
                                let phys = constant_phys(e)?;
                                row.push(eval(&phys, &[])?);
                            }
                            out.push(row);
                        }
                        out
                    }
                    InsertSource::Query(sel) => self.run_select(sel)?.rows,
                };
                let mut n = 0;
                for src_row in source_rows {
                    if src_row.len() != positions.len() {
                        return Err(DbError::Constraint(format!(
                            "INSERT provides {} values for {} columns",
                            src_row.len(),
                            positions.len()
                        )));
                    }
                    let mut full = vec![Value::Null; target_schema.arity()];
                    for (pos, v) in positions.iter().zip(src_row) {
                        full[*pos] = v;
                    }
                    self.insert_row(&ins.table, full)?;
                    n += 1;
                }
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Update(up) => {
                let t = self.table(&up.table)?;
                let schema = t.schema().clone();
                let scope = table_scope(&up.table, &schema);
                let assignments: Vec<(usize, PhysExpr)> = up
                    .assignments
                    .iter()
                    .map(|(c, e)| {
                        let col = schema.require(c)?;
                        let phys = resolve_over(e, &scope)?;
                        Ok((col, phys))
                    })
                    .collect::<DbResult<_>>()?;
                let pred = match &up.where_clause {
                    Some(w) => Some(resolve_over(w, &scope)?),
                    None => None,
                };
                // Two passes: evaluate against a snapshot, then apply.
                let mut updates: Vec<(RowId, Vec<(usize, Value)>)> = Vec::new();
                for (id, row) in t.iter() {
                    let mut ext: Vec<Value> = row.to_vec();
                    ext.push(Value::Int(id.0 as i64));
                    let hit = match &pred {
                        Some(p) => eval(p, &ext)?.as_bool() == Some(true),
                        None => true,
                    };
                    if hit {
                        let mut cells = Vec::with_capacity(assignments.len());
                        for (col, e) in &assignments {
                            cells.push((*col, eval(e, &ext)?));
                        }
                        updates.push((id, cells));
                    }
                }
                let n = updates.len();
                for (id, cells) in updates {
                    for (col, v) in cells {
                        self.update_cell(&up.table, id, col, v)?;
                    }
                }
                Ok(ExecOutcome::Affected(n))
            }
            Statement::Delete(del) => {
                let t = self.table(&del.table)?;
                let schema = t.schema().clone();
                let scope = table_scope(&del.table, &schema);
                let pred = match &del.where_clause {
                    Some(w) => Some(resolve_over(w, &scope)?),
                    None => None,
                };
                let mut doomed = Vec::new();
                for (id, row) in t.iter() {
                    let mut ext: Vec<Value> = row.to_vec();
                    ext.push(Value::Int(id.0 as i64));
                    let hit = match &pred {
                        Some(p) => eval(p, &ext)?.as_bool() == Some(true),
                        None => true,
                    };
                    if hit {
                        doomed.push(id);
                    }
                }
                let n = doomed.len();
                for id in doomed {
                    self.delete_row(&del.table, id)?;
                }
                Ok(ExecOutcome::Affected(n))
            }
        }
    }

    /// Materialize a query result as a table named `name` (replacing any
    /// previous table of that name). Column types are inferred from the
    /// first non-null value of each column; all-null columns become TEXT.
    pub fn materialize(&mut self, name: &str, result: &QueryResult) -> DbResult<()> {
        let mut cols = Vec::with_capacity(result.columns.len());
        for (i, cname) in result.columns.iter().enumerate() {
            let dtype = result
                .rows
                .iter()
                .find_map(|r| r[i].data_type())
                .unwrap_or(DataType::Str);
            cols.push(Column::new(cname.clone(), dtype));
        }
        let schema = Schema::new(cols)?;
        let mut t = Table::new(name.to_string(), schema);
        for row in &result.rows {
            t.insert(row.clone())?;
        }
        self.register_table(t);
        Ok(())
    }
}

fn table_scope(table: &str, schema: &Schema) -> crate::plan::Scope {
    use crate::plan::{Scope, ScopeCol, ROWID_COLUMN};
    let alias = table.to_ascii_lowercase();
    let mut cols: Vec<ScopeCol> = schema
        .columns()
        .iter()
        .map(|c| ScopeCol {
            alias: alias.clone(),
            name: c.name.clone(),
            hidden: false,
        })
        .collect();
    cols.push(ScopeCol {
        alias,
        name: ROWID_COLUMN.to_string(),
        hidden: true,
    });
    Scope { cols }
}

fn resolve_over(expr: &crate::sql::ast::Expr, scope: &crate::plan::Scope) -> DbResult<PhysExpr> {
    crate::plan::resolve_standalone(expr, scope)
}

fn constant_phys(expr: &crate::sql::ast::Expr) -> DbResult<PhysExpr> {
    let empty = crate::plan::Scope::default();
    crate::plan::resolve_standalone(expr, &empty)
        .map_err(|_| DbError::Plan("INSERT VALUES must be constant expressions".into()))
}

struct CatalogAdapter<'a>(&'a Database);

impl CatalogView for CatalogAdapter<'_> {
    fn table_columns(&self, table: &str) -> Option<Vec<String>> {
        self.0
            .tables
            .get(&key(table))
            .map(|t| t.schema().names().iter().map(|s| s.to_string()).collect())
    }
}

struct SourceAdapter<'a>(&'a Database);

impl TableSource for SourceAdapter<'_> {
    fn table(&self, name: &str) -> DbResult<&Table> {
        self.0.table(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (name TEXT, cnt TEXT, city TEXT, zip TEXT)")
            .unwrap();
        db.execute(
            "INSERT INTO customer VALUES \
             ('mike', 'UK', 'EDI', 'EH4 1DT'), \
             ('rick', 'UK', 'LDN', 'EH4 1DT'), \
             ('joe',  'US', 'NYC', '01202'),  \
             ('jim',  'US', 'NYC', '01202'),  \
             ('ben',  'US', 'PHI', '01202')",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_star_and_where() {
        let db = db();
        let r = db.query("SELECT * FROM customer WHERE cnt = 'UK'").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.columns, vec!["name", "cnt", "city", "zip"]);
    }

    #[test]
    fn rowid_is_stable_and_selectable() {
        let db = db();
        let r = db
            .query("SELECT __rowid, name FROM customer ORDER BY __rowid")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(0));
        assert_eq!(r.rows[4][0], Value::Int(4));
    }

    #[test]
    fn group_by_having_count_distinct() {
        let db = db();
        // Which (cnt, zip) groups have more than one distinct city? (a
        // multi-tuple FD violation pattern)
        let r = db
            .query(
                "SELECT cnt, zip, COUNT(DISTINCT city) AS n FROM customer \
                 GROUP BY cnt, zip HAVING COUNT(DISTINCT city) > 1 ORDER BY cnt",
            )
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0, "cnt").unwrap(), &Value::str("UK"));
        assert_eq!(r.get(0, "n").unwrap(), &Value::Int(2));
        assert_eq!(r.get(1, "cnt").unwrap(), &Value::str("US"));
        assert_eq!(r.get(1, "n").unwrap(), &Value::Int(2));
    }

    #[test]
    fn join_on_complex_predicate_with_null_wildcards() {
        let mut db = db();
        db.execute("CREATE TABLE tab (cnt TEXT, zip TEXT)").unwrap();
        // NULL plays the wildcard role in the tableau encoding.
        db.execute("INSERT INTO tab VALUES ('UK', NULL)").unwrap();
        let r = db
            .query(
                "SELECT c.name FROM customer c JOIN tab p \
                 ON (p.cnt IS NULL OR c.cnt = p.cnt) AND (p.zip IS NULL OR c.zip = p.zip) \
                 ORDER BY c.name",
            )
            .unwrap();
        let names: Vec<String> = r.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(names, vec!["mike", "rick"]);
    }

    #[test]
    fn left_join_pads_with_nulls() {
        let mut db = db();
        db.execute("CREATE TABLE cc (cnt TEXT, code TEXT)").unwrap();
        db.execute("INSERT INTO cc VALUES ('UK', '44')").unwrap();
        let r = db
            .query(
                "SELECT c.name, x.code FROM customer c LEFT JOIN cc x ON c.cnt = x.cnt \
                 ORDER BY c.name",
            )
            .unwrap();
        assert_eq!(r.len(), 5);
        let ben = r
            .rows
            .iter()
            .find(|row| row[0] == Value::str("ben"))
            .unwrap();
        assert!(ben[1].is_null());
    }

    #[test]
    fn update_and_delete_with_where() {
        let mut db = db();
        let n = db
            .execute("UPDATE customer SET city = 'BOS' WHERE zip = '01202'")
            .unwrap();
        assert_eq!(n, ExecOutcome::Affected(3));
        let r = db
            .query("SELECT COUNT(*) AS n FROM customer WHERE city = 'BOS'")
            .unwrap();
        assert_eq!(r.get(0, "n").unwrap(), &Value::Int(3));
        let n = db.execute("DELETE FROM customer WHERE cnt = 'UK'").unwrap();
        assert_eq!(n, ExecOutcome::Affected(2));
        assert_eq!(db.table("customer").unwrap().len(), 3);
    }

    #[test]
    fn sql_statements_advance_the_table_epoch() {
        let mut db = db();
        let e0 = db.table_epoch("customer").unwrap();
        db.execute("UPDATE customer SET city = 'BOS' WHERE zip = '01202'")
            .unwrap();
        let e1 = db.table_epoch("customer").unwrap();
        assert_eq!(e1, e0 + 3, "one epoch bump per updated row");
        db.execute("DELETE FROM customer WHERE cnt = 'UK'").unwrap();
        assert_eq!(db.table_epoch("customer").unwrap(), e1 + 2);
        // Reads leave the epoch alone.
        db.query("SELECT * FROM customer").unwrap();
        assert_eq!(db.table_epoch("customer").unwrap(), e1 + 2);
    }

    #[test]
    fn insert_select_roundtrip() {
        let mut db = db();
        db.execute("CREATE TABLE uk (name TEXT, cnt TEXT, city TEXT, zip TEXT)")
            .unwrap();
        let n = db
            .execute("INSERT INTO uk SELECT * FROM customer WHERE cnt = 'UK'")
            .unwrap();
        assert_eq!(n, ExecOutcome::Affected(2));
        assert_eq!(db.table("uk").unwrap().len(), 2);
    }

    #[test]
    fn distinct_order_limit_offset() {
        let db = db();
        let r = db
            .query("SELECT DISTINCT cnt FROM customer ORDER BY cnt LIMIT 1 OFFSET 1")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::str("US")]]);
    }

    #[test]
    fn materialize_registers_queryable_table() {
        let mut db = db();
        let r = db
            .query("SELECT cnt, COUNT(*) AS n FROM customer GROUP BY cnt")
            .unwrap();
        db.materialize("per_cnt", &r).unwrap();
        let r2 = db.query("SELECT n FROM per_cnt WHERE cnt = 'US'").unwrap();
        assert_eq!(r2.rows[0][0], Value::Int(3));
    }

    #[test]
    fn aggregates_without_group_by() {
        let db = db();
        let r = db
            .query("SELECT COUNT(*) AS n, MIN(name) AS lo, MAX(name) AS hi FROM customer")
            .unwrap();
        assert_eq!(r.get(0, "n").unwrap(), &Value::Int(5));
        assert_eq!(r.get(0, "lo").unwrap(), &Value::str("ben"));
        assert_eq!(r.get(0, "hi").unwrap(), &Value::str("rick"));
    }

    #[test]
    fn self_join_via_where_equi_conditions() {
        let db = db();
        // Pairs of distinct tuples agreeing on (cnt, zip) but not city:
        // the textbook FD-violation query.
        let r = db
            .query(
                "SELECT a.name, b.name FROM customer a, customer b \
                 WHERE a.cnt = b.cnt AND a.zip = b.zip AND a.city <> b.city",
            )
            .unwrap();
        // (mike, rick) x2 and (joe/jim vs ben) x4
        assert_eq!(r.len(), 6);
    }

    #[test]
    fn script_execution() {
        let mut db = Database::new();
        let out = db
            .execute_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT COUNT(*) FROM t",
            )
            .unwrap();
        assert_eq!(out.len(), 3);
        let ExecOutcome::Rows(r) = &out[2] else {
            panic!()
        };
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn create_index_and_lookup() {
        let mut db = db();
        db.execute("CREATE INDEX idx_zip ON customer (zip)")
            .unwrap();
        let ix = db.index("idx_zip").unwrap();
        let hits = ix.lookup(&[Value::str("01202")]);
        assert_eq!(hits.len(), 3);
        // Index maintenance on delete.
        db.execute("DELETE FROM customer WHERE name = 'ben'")
            .unwrap();
        let ix = db.index("idx_zip").unwrap();
        assert_eq!(ix.lookup(&[Value::str("01202")]).len(), 2);
    }

    #[test]
    fn if_exists_variants_do_not_error() {
        let mut db = Database::new();
        db.execute("DROP TABLE IF EXISTS nope").unwrap();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        db.execute("CREATE TABLE IF NOT EXISTS t (a INT)").unwrap();
    }

    #[test]
    fn not_null_constraint_enforced_via_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INT NOT NULL)").unwrap();
        assert!(db.execute("INSERT INTO t VALUES (NULL)").is_err());
    }
}
