//! Edge-case integration tests for the SQL engine: NULL ordering, LEFT
//! JOIN with null-safe keys, LIKE specials, expression errors surfacing,
//! and catalog churn.

use minidb::{Database, DbError, ExecOutcome, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a TEXT, n INT, f DOUBLE)")
        .unwrap();
    db.execute(
        "INSERT INTO t VALUES ('x', 1, 1.5), ('y', NULL, 2.5), (NULL, 3, NULL), ('x', 4, 0.5)",
    )
    .unwrap();
    db
}

#[test]
fn order_by_places_nulls_first_asc_last_desc() {
    let db = db();
    let r = db.query("SELECT n FROM t ORDER BY n").unwrap();
    assert!(r.rows[0][0].is_null());
    assert_eq!(r.rows[3][0], Value::Int(4));
    let r = db.query("SELECT n FROM t ORDER BY n DESC").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
    assert!(r.rows[3][0].is_null());
}

#[test]
fn left_join_with_null_safe_key_matches_nulls() {
    let mut db = db();
    db.execute("CREATE TABLE u (a TEXT, tag TEXT)").unwrap();
    db.execute("INSERT INTO u VALUES ('x', 'ex'), (NULL, 'nul')")
        .unwrap();
    // Plain equality: NULL never joins.
    let r = db
        .query("SELECT t.a, u.tag FROM t LEFT JOIN u ON t.a = u.a ORDER BY 2 DESC")
        .unwrap();
    let null_row = r.rows.iter().find(|row| row[0].is_null()).unwrap();
    assert!(null_row[1].is_null(), "= must not match NULL");
    // Null-safe equality: NULLs pair up.
    let r = db
        .query("SELECT t.a, u.tag FROM t JOIN u ON t.a IS NOT DISTINCT FROM u.a")
        .unwrap();
    assert!(r
        .rows
        .iter()
        .any(|row| row[0].is_null() && row[1] == Value::str("nul")));
}

#[test]
fn like_handles_literal_special_chars_and_unicode() {
    let mut db = Database::new();
    db.execute("CREATE TABLE s (v TEXT)").unwrap();
    db.execute("INSERT INTO s VALUES ('50% off'), ('a_b'), ('東京都'), ('plain')")
        .unwrap();
    // % and _ are wildcards (no escape support — documented subset).
    let r = db.query("SELECT v FROM s WHERE v LIKE '50%'").unwrap();
    assert_eq!(r.len(), 1);
    let r = db.query("SELECT v FROM s WHERE v LIKE 'a_b'").unwrap();
    assert_eq!(r.len(), 1);
    let r = db.query("SELECT v FROM s WHERE v LIKE '東%'").unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn division_by_zero_surfaces_as_eval_error() {
    let db = db();
    let e = db.query("SELECT n / 0 FROM t WHERE n IS NOT NULL");
    assert!(matches!(e, Err(DbError::Eval(_))), "{e:?}");
    // NULL / 0 short-circuits to NULL before the division runs.
    let r = db.query("SELECT n / 0 FROM t WHERE n IS NULL").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn aggregate_over_floats_and_ints_mixes_correctly() {
    let db = db();
    let r = db
        .query("SELECT SUM(n) AS sn, SUM(f) AS sf, AVG(n) AS an FROM t")
        .unwrap();
    assert_eq!(r.get(0, "sn").unwrap(), &Value::Int(8));
    assert_eq!(r.get(0, "sf").unwrap(), &Value::Float(4.5));
    // AVG ignores NULLs: (1 + 3 + 4) / 3
    let av = r.get(0, "an").unwrap().as_f64().unwrap();
    assert!((av - 8.0 / 3.0).abs() < 1e-9);
}

#[test]
fn drop_and_recreate_table_resets_rowids() {
    let mut db = db();
    db.execute("DROP TABLE t").unwrap();
    assert!(matches!(
        db.query("SELECT * FROM t"),
        Err(DbError::UnknownTable(_))
    ));
    db.execute("CREATE TABLE t (a TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES ('fresh')").unwrap();
    let r = db.query("SELECT __rowid FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
}

#[test]
fn update_with_self_referencing_expression() {
    let mut db = db();
    let n = db
        .execute("UPDATE t SET n = n + 10 WHERE n IS NOT NULL")
        .unwrap();
    assert_eq!(n, ExecOutcome::Affected(3));
    let r = db
        .query("SELECT MIN(n) AS lo, MAX(n) AS hi FROM t")
        .unwrap();
    assert_eq!(r.get(0, "lo").unwrap(), &Value::Int(11));
    assert_eq!(r.get(0, "hi").unwrap(), &Value::Int(14));
}

#[test]
fn distinct_treats_null_groups_as_equal() {
    let db = db();
    let r = db.query("SELECT DISTINCT a FROM t").unwrap();
    // 'x', 'y', NULL — NULL appears exactly once.
    assert_eq!(r.len(), 3);
    assert_eq!(r.rows.iter().filter(|row| row[0].is_null()).count(), 1);
}

#[test]
fn having_filters_on_unprojected_aggregate() {
    let db = db();
    // HAVING references COUNT(*) which is not in the projection.
    let r = db
        .query("SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.rows[0][0], Value::str("x"));
}

#[test]
fn explain_renders_plan_tree() {
    let db = db();
    let plan = db
        .plan("SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY 2 DESC LIMIT 1")
        .unwrap();
    let s = plan.plan.explain();
    for op in ["Limit", "Project", "Sort", "Aggregate", "Scan t"] {
        assert!(s.contains(op), "missing {op} in:\n{s}");
    }
}
