//! ASCII chart rendering — the textual stand-in for Fig. 4's bar and pie
//! charts. Pure string builders, no terminal control codes.

/// Render a horizontal bar chart. `items` are `(label, value)`; bars are
/// scaled to `width` characters of the largest value.
pub fn bar_chart(title: &str, items: &[(String, f64)], width: usize) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let max = items.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in items {
        let bar_len = if max > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "  {label:<label_w$} |{} {value:.1}\n",
            "#".repeat(bar_len),
        ));
    }
    out
}

/// Render a stacked percentage bar per row — used for the per-attribute
/// verified/probably/arguably/dirty breakdown. `rows` are
/// `(label, [fractions])` where fractions sum to ≤ 1; `glyphs` supplies one
/// fill character per segment.
pub fn stacked_bars(
    title: &str,
    rows: &[(String, Vec<f64>)],
    glyphs: &[char],
    width: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, fracs) in rows {
        out.push_str(&format!("  {label:<label_w$} |"));
        let mut used = 0usize;
        for (i, f) in fracs.iter().enumerate() {
            let g = glyphs.get(i).copied().unwrap_or('?');
            let n = (f * width as f64).round() as usize;
            let n = n.min(width.saturating_sub(used));
            out.push_str(&g.to_string().repeat(n));
            used += n;
        }
        out.push_str(&" ".repeat(width.saturating_sub(used)));
        out.push('|');
        // annotate percentages
        let pct: Vec<String> = fracs.iter().map(|f| format!("{:.0}%", f * 100.0)).collect();
        out.push_str(&format!(" {}\n", pct.join("/")));
    }
    out
}

/// Render a textual "pie": proportions as a single segmented bar plus a
/// legend with percentages.
pub fn pie_chart(title: &str, items: &[(String, f64)], width: usize) -> String {
    let total: f64 = items.iter().map(|(_, v)| *v).sum();
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    const GLYPHS: [char; 8] = ['#', '*', '+', '.', 'o', '=', '~', '-'];
    out.push_str("  [");
    let mut used = 0usize;
    for (i, (_, v)) in items.iter().enumerate() {
        let frac = if total > 0.0 { v / total } else { 0.0 };
        let n = ((frac * width as f64).round() as usize).min(width.saturating_sub(used));
        out.push_str(&GLYPHS[i % GLYPHS.len()].to_string().repeat(n));
        used += n;
    }
    out.push_str(&" ".repeat(width.saturating_sub(used)));
    out.push_str("]\n");
    for (i, (label, v)) in items.iter().enumerate() {
        let frac = if total > 0.0 { v / total * 100.0 } else { 0.0 };
        out.push_str(&format!(
            "  {} {label}: {v:.0} ({frac:.1}%)\n",
            GLYPHS[i % GLYPHS.len()]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_width() {
        let s = bar_chart(
            "violations",
            &[("phi1".into(), 10.0), ("phi2".into(), 5.0)],
            20,
        );
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains(&"#".repeat(20)));
        assert!(lines[2].contains(&"#".repeat(10)));
        assert!(!lines[2].contains(&"#".repeat(11)));
    }

    #[test]
    fn stacked_bars_fill_and_annotate() {
        let s = stacked_bars(
            "classes",
            &[("CNT".into(), vec![0.5, 0.25, 0.25])],
            &['#', '+', '.'],
            8,
        );
        assert!(s.contains("####++.."), "{s}");
        assert!(s.contains("50%/25%/25%"), "{s}");
    }

    #[test]
    fn pie_chart_legend_sums_to_hundred() {
        let s = pie_chart("pie", &[("a".into(), 3.0), ("b".into(), 1.0)], 12);
        assert!(s.contains("75.0%"), "{s}");
        assert!(s.contains("25.0%"), "{s}");
    }

    #[test]
    fn empty_inputs_do_not_panic() {
        assert!(bar_chart("t", &[], 10).contains('t'));
        assert!(pie_chart("t", &[], 10).contains('['));
        assert!(stacked_bars("t", &[], &['#'], 10).contains('t'));
    }
}
