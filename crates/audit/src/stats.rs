//! Statistical summaries of detection results (paper §3: "The auditor
//! computes various statistical measures (max, min, avg, …) and also
//! reports statistics regarding multi-tuple violations").

use detect::violation::{ViolationKind, ViolationReport};

/// Summary statistics over a [`ViolationReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationStats {
    /// Total number of violation records.
    pub total: usize,
    /// Single-tuple violation records.
    pub single: usize,
    /// Multi-tuple violation records (groups).
    pub multi: usize,
    /// Tuples with `vio(t) > 0`.
    pub dirty_tuples: usize,
    /// Maximum `vio(t)` over dirty tuples (0 when clean).
    pub max_vio: u64,
    /// Minimum `vio(t)` over dirty tuples (0 when clean).
    pub min_vio: u64,
    /// Mean `vio(t)` over dirty tuples.
    pub avg_vio: f64,
    /// Histogram of `vio(t)` in buckets 1, 2, 3-4, 5-8, 9+.
    pub vio_histogram: [usize; 5],
    /// Smallest violating group size (multi-tuple).
    pub min_group: usize,
    /// Largest violating group size.
    pub max_group: usize,
    /// Mean violating group size.
    pub avg_group: f64,
}

/// Compute statistics from a report.
pub fn violation_stats(report: &ViolationReport) -> ViolationStats {
    let mut single = 0usize;
    let mut multi = 0usize;
    let mut group_sizes: Vec<usize> = Vec::new();
    for v in &report.violations {
        match &v.kind {
            ViolationKind::SingleTuple { .. } => single += 1,
            ViolationKind::MultiTuple { rows, .. } => {
                multi += 1;
                group_sizes.push(rows.len());
            }
        }
    }
    let vios: Vec<u64> = report.vio.values().collect();
    let dirty_tuples = vios.len();
    let max_vio = vios.iter().copied().max().unwrap_or(0);
    let min_vio = vios.iter().copied().min().unwrap_or(0);
    let avg_vio = if vios.is_empty() {
        0.0
    } else {
        vios.iter().sum::<u64>() as f64 / vios.len() as f64
    };
    let mut vio_histogram = [0usize; 5];
    for v in &vios {
        let bucket = match v {
            1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            _ => 4,
        };
        vio_histogram[bucket] += 1;
    }
    let min_group = group_sizes.iter().copied().min().unwrap_or(0);
    let max_group = group_sizes.iter().copied().max().unwrap_or(0);
    let avg_group = if group_sizes.is_empty() {
        0.0
    } else {
        group_sizes.iter().sum::<usize>() as f64 / group_sizes.len() as f64
    };
    ViolationStats {
        total: report.len(),
        single,
        multi,
        dirty_tuples,
        max_vio,
        min_vio,
        avg_vio,
        vio_histogram,
        min_group,
        max_group,
        avg_group,
    }
}

/// Bucket labels matching [`ViolationStats::vio_histogram`].
pub const VIO_BUCKET_LABELS: [&str; 5] = ["1", "2", "3-4", "5-8", "9+"];

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{RowId, Value};

    #[test]
    fn stats_over_mixed_report() {
        let mut r = ViolationReport::default();
        r.push_single(0, RowId(1));
        r.push_multi(
            1,
            vec![Value::str("k")],
            vec![
                (RowId(2), Value::str("a")),
                (RowId(3), Value::str("a")),
                (RowId(4), Value::str("b")),
            ],
        );
        let s = violation_stats(&r);
        assert_eq!(s.total, 2);
        assert_eq!(s.single, 1);
        assert_eq!(s.multi, 1);
        assert_eq!(s.dirty_tuples, 4);
        assert_eq!(s.max_vio, 2); // the 'b' member has 2 partners
        assert_eq!(s.min_vio, 1);
        assert_eq!(s.min_group, 3);
        assert_eq!(s.max_group, 3);
        assert!((s.avg_group - 3.0).abs() < 1e-9);
        assert_eq!(s.vio_histogram[0], 3); // three tuples with vio=1
        assert_eq!(s.vio_histogram[1], 1); // one tuple with vio=2
    }

    #[test]
    fn empty_report_is_all_zero() {
        let s = violation_stats(&ViolationReport::default());
        assert_eq!(s.total, 0);
        assert_eq!(s.dirty_tuples, 0);
        assert_eq!(s.max_vio, 0);
        assert_eq!(s.avg_vio, 0.0);
    }
}
