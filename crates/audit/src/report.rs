//! The data quality report (Fig. 4): per-attribute class breakdown (bar
//! chart), violation breakdown per CFD (pie chart), and headline numbers.

use std::collections::HashMap;

use cfd::{Cfd, CfdResult};
use detect::violation::ViolationReport;
use minidb::Table;

use crate::charts::{pie_chart, stacked_bars};
use crate::classify::{classify, Classification, CleanClass};
use crate::stats::{violation_stats, ViolationStats};

/// Per-attribute breakdown into the four classes (fractions of tuples).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeBreakdown {
    /// Column index.
    pub col: usize,
    /// Attribute name.
    pub name: String,
    /// Fractions `[verified, probably, arguably, dirty]`, summing to 1.
    pub fractions: [f64; 4],
}

/// The assembled quality report.
#[derive(Debug, Clone)]
pub struct QualityReport {
    /// Number of live tuples audited.
    pub tuples: usize,
    /// Tuple counts per class `[verified, probably, arguably, dirty]`.
    pub tuple_classes: [usize; 4],
    /// Per-constrained-attribute breakdowns.
    pub attributes: Vec<AttributeBreakdown>,
    /// Violations per CFD, labelled with the CFD's display form.
    pub per_cfd: Vec<(String, usize)>,
    /// Summary statistics.
    pub stats: ViolationStats,
}

fn class_slot(c: CleanClass) -> usize {
    match c {
        CleanClass::VerifiedClean => 0,
        CleanClass::ProbablyClean => 1,
        CleanClass::ArguablyClean => 2,
        CleanClass::Dirty => 3,
    }
}

/// Build the quality report for `table` under `cfds` and a detection
/// `report`.
pub fn quality_report(
    table: &Table,
    cfds: &[Cfd],
    report: &ViolationReport,
) -> CfdResult<QualityReport> {
    let classification: Classification = classify(table, cfds, report)?;
    let mut tuple_classes = [0usize; 4];
    for c in classification.tuples.values() {
        tuple_classes[class_slot(*c)] += 1;
    }
    let n = table.len().max(1);
    let mut attributes = Vec::new();
    for &col in &classification.constrained_columns {
        let mut counts = [0usize; 4];
        for (id, _) in table.iter() {
            if let Some(c) = classification.cells.get(&(id, col)) {
                counts[class_slot(*c)] += 1;
            }
        }
        attributes.push(AttributeBreakdown {
            col,
            name: table.schema().column(col).name.clone(),
            fractions: [
                counts[0] as f64 / n as f64,
                counts[1] as f64 / n as f64,
                counts[2] as f64 / n as f64,
                counts[3] as f64 / n as f64,
            ],
        });
    }
    let mut per_cfd: Vec<(String, usize)> = Vec::new();
    let counts: HashMap<usize, usize> = report.per_cfd.clone();
    for (i, c) in cfds.iter().enumerate() {
        per_cfd.push((c.to_string(), counts.get(&i).copied().unwrap_or(0)));
    }
    Ok(QualityReport {
        tuples: table.len(),
        tuple_classes,
        attributes,
        per_cfd,
        stats: violation_stats(report),
    })
}

impl QualityReport {
    /// Fraction of tuples that are dirty.
    pub fn dirty_fraction(&self) -> f64 {
        if self.tuples == 0 {
            0.0
        } else {
            self.tuple_classes[3] as f64 / self.tuples as f64
        }
    }

    /// Render the full report as text: headline, attribute bar chart
    /// (Fig. 4 left), per-CFD pie (Fig. 4 right), and statistics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== data quality report ===\n{} tuples: {} verified / {} probably / {} arguably clean, {} dirty ({:.1}%)\n\n",
            self.tuples,
            self.tuple_classes[0],
            self.tuple_classes[1],
            self.tuple_classes[2],
            self.tuple_classes[3],
            self.dirty_fraction() * 100.0,
        ));
        let rows: Vec<(String, Vec<f64>)> = self
            .attributes
            .iter()
            .map(|a| (a.name.clone(), a.fractions.to_vec()))
            .collect();
        out.push_str(&stacked_bars(
            "attribute-level classes (#=verified +=probably o=arguably .=dirty)",
            &rows,
            &['#', '+', 'o', '.'],
            40,
        ));
        out.push('\n');
        let pie_items: Vec<(String, f64)> = self
            .per_cfd
            .iter()
            .map(|(l, n)| (l.clone(), *n as f64))
            .collect();
        out.push_str(&pie_chart("violations per CFD", &pie_items, 40));
        out.push('\n');
        let s = &self.stats;
        out.push_str(&format!(
            "violations: {} total ({} single-tuple, {} multi-tuple groups)\n\
             dirty tuples: {}  vio(t): min {} / avg {:.2} / max {}\n\
             violating groups: size min {} / avg {:.2} / max {}\n",
            s.total,
            s.single,
            s.multi,
            s.dirty_tuples,
            s.min_vio,
            s.avg_vio,
            s.max_vio,
            s.min_group,
            s.avg_group,
            s.max_group,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dirty_customers;
    use detect::detect_native;

    #[test]
    fn report_on_dirty_customers() {
        let d = dirty_customers(200, 0.05, 55);
        let t = d.db.table("customer").unwrap();
        let det = detect_native(t, &d.cfds).unwrap();
        let r = quality_report(t, &d.cfds, &det).unwrap();
        assert_eq!(r.tuples, 200);
        assert_eq!(r.tuple_classes.iter().sum::<usize>(), 200);
        assert!(r.tuple_classes[3] > 0, "5% noise must dirty something");
        assert!(r.dirty_fraction() > 0.0 && r.dirty_fraction() < 1.0);
        // Attribute fractions sum to ~1.
        for a in &r.attributes {
            let sum: f64 = a.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", a.name);
        }
        // φ-level counts total the report's record count.
        let total: usize = r.per_cfd.iter().map(|(_, n)| n).sum();
        assert_eq!(total, det.len());
    }

    #[test]
    fn clean_data_reports_verified_and_probable_only() {
        let d = dirty_customers(100, 0.0, 4);
        let t = d.db.table("customer").unwrap();
        let det = detect_native(t, &d.cfds).unwrap();
        let r = quality_report(t, &d.cfds, &det).unwrap();
        assert_eq!(r.tuple_classes[2], 0);
        assert_eq!(r.tuple_classes[3], 0);
        // Everyone matches a CC → CNT constant rule, so all verified.
        assert_eq!(r.tuple_classes[0], 100);
        assert_eq!(r.dirty_fraction(), 0.0);
    }

    #[test]
    fn render_includes_all_sections() {
        let d = dirty_customers(80, 0.08, 2);
        let t = d.db.table("customer").unwrap();
        let det = detect_native(t, &d.cfds).unwrap();
        let r = quality_report(t, &d.cfds, &det).unwrap();
        let s = r.render();
        assert!(s.contains("data quality report"));
        assert!(s.contains("attribute-level classes"));
        assert!(s.contains("violations per CFD"));
        assert!(s.contains("violating groups"));
    }
}
