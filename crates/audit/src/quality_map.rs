//! The tuple-level data quality map (Fig. 3): a shading per tuple
//! proportional to `vio(t)` — "the darker the colour of a tuple, the
//! greater vio(t) is".

use detect::violation::ViolationReport;
use minidb::{RowId, Table};

/// Shading glyphs from clean to dirtiest.
pub const SHADES: [char; 6] = [' ', '.', ':', '*', '#', '@'];

/// One row of the map.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRow {
    /// Tuple id.
    pub row: RowId,
    /// Its `vio(t)`.
    pub vio: u64,
    /// Shade bucket index into [`SHADES`].
    pub bucket: usize,
}

/// The quality map over a table (in row order).
#[derive(Debug, Clone, PartialEq)]
pub struct QualityMap {
    /// Rows of the map.
    pub rows: Vec<MapRow>,
    /// Largest `vio(t)` (for the scale legend).
    pub max_vio: u64,
}

/// Shade bucket for a violation count: 0 ↦ 0, then log-ish growth.
pub fn bucket_of(vio: u64) -> usize {
    match vio {
        0 => 0,
        1 => 1,
        2..=3 => 2,
        4..=7 => 3,
        8..=15 => 4,
        _ => 5,
    }
}

/// Shade bucket scaled to the observed maximum: buckets split the
/// `log(1+vio)` range so the map keeps a visible gradient even when a few
/// giant violating groups inflate the absolute counts (each member of a
/// group of n conflicts with up to n−1 partners, so vio(t) grows with
/// group size — see the tuple-level definition in the paper §2).
pub fn bucket_scaled(vio: u64, max_vio: u64) -> usize {
    if vio == 0 {
        return 0;
    }
    if max_vio <= 16 {
        return bucket_of(vio);
    }
    let frac = ((1 + vio) as f64).ln() / ((1 + max_vio) as f64).ln();
    1 + ((frac * 4.0).floor() as usize).min(4)
}

/// Build the quality map for `table` under `report`.
pub fn quality_map(table: &Table, report: &ViolationReport) -> QualityMap {
    let mut vios = Vec::with_capacity(table.len());
    let mut max_vio = 0;
    for (id, _) in table.iter() {
        let vio = report.vio_of(id);
        max_vio = max_vio.max(vio);
        vios.push((id, vio));
    }
    let rows = vios
        .into_iter()
        .map(|(row, vio)| MapRow {
            row,
            vio,
            bucket: bucket_scaled(vio, max_vio),
        })
        .collect();
    QualityMap { rows, max_vio }
}

impl QualityMap {
    /// Render as a compact grid, `per_line` tuples per row of output, with
    /// a legend. Each tuple is one glyph.
    pub fn render(&self, per_line: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "data quality map — {} tuples, max vio(t) = {}\n",
            self.rows.len(),
            self.max_vio
        ));
        out.push_str(
            "legend (log-scaled to max): ' '=clean  '.' ':' '*' '#' '@' = increasingly dirty\n",
        );
        for chunk in self.rows.chunks(per_line.max(1)) {
            out.push('|');
            for r in chunk {
                out.push(SHADES[r.bucket]);
            }
            out.push('|');
            out.push('\n');
        }
        out
    }

    /// The dirtiest tuples, by `vio(t)` descending (ties by row id), at
    /// most `k` — the "worst offenders" list of the demo's map view.
    pub fn worst(&self, k: usize) -> Vec<MapRow> {
        let mut rows: Vec<MapRow> = self.rows.iter().filter(|r| r.vio > 0).cloned().collect();
        rows.sort_by_key(|r| (std::cmp::Reverse(r.vio), r.row));
        rows.truncate(k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use detect::detect_native;
    use minidb::{Schema, Table, Value};

    fn setup() -> (Table, ViolationReport) {
        let schema = Schema::of_strings(&["A", "B"]);
        let mut t = Table::new("r", schema);
        for (a, b) in [("k", "x"), ("k", "x"), ("k", "y"), ("m", "z")] {
            t.insert(vec![Value::str(a), Value::str(b)]).unwrap();
        }
        let cfds = cfd::parse::parse_cfds("r: [A] -> [B]").unwrap();
        let report = detect_native(&t, &cfds).unwrap();
        (t, report)
    }

    #[test]
    fn buckets_grow_with_vio() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(100), 5);
    }

    #[test]
    fn map_reflects_vio_counts() {
        let (t, r) = setup();
        let m = quality_map(&t, &r);
        assert_eq!(m.rows.len(), 4);
        assert_eq!(m.rows[0].vio, 1); // 'x' conflicts with one 'y'
        assert_eq!(m.rows[2].vio, 2); // 'y' conflicts with two 'x'
        assert_eq!(m.rows[3].vio, 0);
        assert_eq!(m.max_vio, 2);
    }

    #[test]
    fn render_contains_grid_and_legend() {
        let (t, r) = setup();
        let m = quality_map(&t, &r);
        let s = m.render(2);
        assert!(s.contains("legend"));
        // 4 tuples at 2 per line = 2 grid lines framed by '|'.
        assert_eq!(s.lines().filter(|l| l.starts_with('|')).count(), 2);
    }

    #[test]
    fn worst_orders_by_vio_desc() {
        let (t, r) = setup();
        let m = quality_map(&t, &r);
        let w = m.worst(10);
        assert_eq!(w[0].row, RowId(2));
        assert_eq!(w[0].vio, 2);
        assert_eq!(w.len(), 3);
    }
}
