//! Tuple- and cell-level cleanliness classification (paper §3, "Data
//! quality report"):
//!
//! * **verified clean** — no violation, and at least one constant-RHS CFD
//!   *applies* to the tuple (its pattern matched and the value checked out);
//! * **probably clean** — no violation (but nothing positively vouched);
//! * **arguably clean** — involved only in multi-tuple violations where the
//!   bulk of the joint violators agrees with the tuple;
//! * **dirty** — everything else.

use std::collections::HashMap;

use cfd::{BoundCfd, Cfd, CfdResult};
use detect::violation::{ViolationKind, ViolationReport};
use minidb::{RowId, Table};

/// Cleanliness classes, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CleanClass {
    /// Positively verified by a constant CFD and violation-free.
    VerifiedClean,
    /// Violation-free.
    ProbablyClean,
    /// In multi-tuple violations only, always on the majority side.
    ArguablyClean,
    /// Involved in a violation with no benefit of the doubt.
    Dirty,
}

impl CleanClass {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CleanClass::VerifiedClean => "verified",
            CleanClass::ProbablyClean => "probably",
            CleanClass::ArguablyClean => "arguably",
            CleanClass::Dirty => "dirty",
        }
    }
}

/// Classification output: tuple classes and per-cell classes.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Class per live tuple.
    pub tuples: HashMap<RowId, CleanClass>,
    /// Class per (tuple, column) for columns mentioned by any CFD; cells of
    /// unmentioned columns default to probably-clean.
    pub cells: HashMap<(RowId, usize), CleanClass>,
    /// Columns mentioned by at least one CFD.
    pub constrained_columns: Vec<usize>,
}

/// Classify all tuples and cells of `table` given a detection `report`.
pub fn classify(
    table: &Table,
    cfds: &[Cfd],
    report: &ViolationReport,
) -> CfdResult<Classification> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;

    let mut constrained: Vec<usize> = bound
        .iter()
        .flat_map(|b| b.lhs_cols.iter().copied().chain(std::iter::once(b.rhs_col)))
        .collect();
    constrained.sort_unstable();
    constrained.dedup();

    // Pass 1: which rows/cells are implicated, and on which side of the
    // majority they sit.
    #[derive(Default, Clone, Copy)]
    struct Involvement {
        in_single: bool,
        in_multi_minority: bool,
        in_multi_majority: bool,
    }
    let mut row_inv: HashMap<RowId, Involvement> = HashMap::new();
    let mut cell_inv: HashMap<(RowId, usize), Involvement> = HashMap::new();

    for v in &report.violations {
        let b = &bound[v.cfd_idx];
        match &v.kind {
            ViolationKind::SingleTuple { row } => {
                row_inv.entry(*row).or_default().in_single = true;
                for &c in b.lhs_cols.iter().chain(std::iter::once(&b.rhs_col)) {
                    cell_inv.entry((*row, c)).or_default().in_single = true;
                }
            }
            ViolationKind::MultiTuple { rows, .. } => {
                let total = rows.len();
                let mut counts: HashMap<&minidb::Value, usize> = HashMap::new();
                for (_, val) in rows.iter() {
                    *counts.entry(val).or_default() += 1;
                }
                for (row, val) in rows.iter() {
                    let majority = counts[val] * 2 > total;
                    let inv = row_inv.entry(*row).or_default();
                    if majority {
                        inv.in_multi_majority = true;
                    } else {
                        inv.in_multi_minority = true;
                    }
                    for &c in b.lhs_cols.iter().chain(std::iter::once(&b.rhs_col)) {
                        let ci = cell_inv.entry((*row, c)).or_default();
                        if majority {
                            ci.in_multi_majority = true;
                        } else {
                            ci.in_multi_minority = true;
                        }
                    }
                }
            }
        }
    }

    // Pass 2: positive verification — a constant-RHS CFD applies cleanly.
    let mut tuples = HashMap::with_capacity(table.len());
    let mut cells = HashMap::new();
    for (id, row) in table.iter() {
        let mut verified_row = false;
        let mut verified_cells: Vec<usize> = Vec::new();
        for b in &bound {
            if b.cfd.rhs_pat.constant().is_some() && b.lhs_matches(row) && b.rhs_matches(row) {
                verified_row = true;
                verified_cells.push(b.rhs_col);
                verified_cells.extend(b.lhs_cols.iter().copied());
            }
        }
        let inv = row_inv.get(&id).copied().unwrap_or_default();
        let class = grade(
            (inv.in_single, inv.in_multi_minority, inv.in_multi_majority),
            verified_row,
        );
        tuples.insert(id, class);

        for &c in &constrained {
            let ci = cell_inv.get(&(id, c)).copied().unwrap_or_default();
            let cell_class = grade(
                (ci.in_single, ci.in_multi_minority, ci.in_multi_majority),
                verified_cells.contains(&c),
            );
            cells.insert((id, c), cell_class);
        }
    }

    Ok(Classification {
        tuples,
        cells,
        constrained_columns: constrained,
    })
}

fn grade(
    (in_single, in_multi_minority, in_multi_majority): (bool, bool, bool),
    verified: bool,
) -> CleanClass {
    if in_single || in_multi_minority {
        CleanClass::Dirty
    } else if in_multi_majority {
        CleanClass::ArguablyClean
    } else if verified {
        CleanClass::VerifiedClean
    } else {
        CleanClass::ProbablyClean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;
    use detect::detect_native;
    use minidb::{Schema, Table, Value};

    fn customer_table(rows: &[[&str; 7]]) -> Table {
        let schema = Schema::of_strings(&["NAME", "CNT", "CITY", "ZIP", "STR", "CC", "AC"]);
        let mut t = Table::new("customer", schema);
        for r in rows {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        t
    }

    fn cfds() -> Vec<Cfd> {
        parse_cfds(
            "customer: [CNT, ZIP] -> [CITY]\n\
             customer: [CC='44'] -> [CNT='UK']",
        )
        .unwrap()
    }

    fn classify_table(t: &Table, cfds: &[Cfd]) -> Classification {
        let report = detect_native(t, cfds).unwrap();
        classify(t, cfds, &report).unwrap()
    }

    #[test]
    fn verified_vs_probably_clean() {
        let t = customer_table(&[
            // Matches [CC='44'] -> [CNT='UK'] and satisfies it: verified.
            ["a", "UK", "EDI", "EH4", "s", "44", "131"],
            // CC='01': the constant rule does not apply; merely probable.
            ["b", "US", "NYC", "012", "s", "01", "212"],
        ]);
        let c = classify_table(&t, &cfds());
        assert_eq!(c.tuples[&RowId(0)], CleanClass::VerifiedClean);
        assert_eq!(c.tuples[&RowId(1)], CleanClass::ProbablyClean);
    }

    #[test]
    fn majority_members_are_arguably_clean() {
        let t = customer_table(&[
            ["a", "UK", "EDI", "EH4", "s", "44", "131"],
            ["b", "UK", "EDI", "EH4", "s", "44", "131"],
            ["c", "UK", "LDN", "EH4", "s", "44", "131"],
        ]);
        let c = classify_table(&t, &cfds());
        assert_eq!(c.tuples[&RowId(0)], CleanClass::ArguablyClean);
        assert_eq!(c.tuples[&RowId(1)], CleanClass::ArguablyClean);
        assert_eq!(c.tuples[&RowId(2)], CleanClass::Dirty);
    }

    #[test]
    fn even_split_has_no_majority() {
        let t = customer_table(&[
            ["a", "UK", "EDI", "EH4", "s", "44", "131"],
            ["b", "UK", "LDN", "EH4", "s", "44", "131"],
        ]);
        let c = classify_table(&t, &cfds());
        assert_eq!(c.tuples[&RowId(0)], CleanClass::Dirty);
        assert_eq!(c.tuples[&RowId(1)], CleanClass::Dirty);
    }

    #[test]
    fn single_violation_is_dirty_and_marks_cells() {
        let t = customer_table(&[["a", "US", "NYC", "012", "s", "44", "212"]]);
        let c = classify_table(&t, &cfds());
        assert_eq!(c.tuples[&RowId(0)], CleanClass::Dirty);
        // Implicated cells: CC (5) and CNT (1).
        assert_eq!(c.cells[&(RowId(0), 5)], CleanClass::Dirty);
        assert_eq!(c.cells[&(RowId(0), 1)], CleanClass::Dirty);
        // CITY (2) is constrained by φ1 but not implicated here.
        assert_ne!(c.cells[&(RowId(0), 2)], CleanClass::Dirty);
    }

    #[test]
    fn constrained_columns_cover_all_cfd_attrs() {
        let t = customer_table(&[["a", "UK", "EDI", "EH4", "s", "44", "131"]]);
        let c = classify_table(&t, &cfds());
        // CNT(1), CITY(2), ZIP(3), CC(5)
        assert_eq!(c.constrained_columns, vec![1, 2, 3, 5]);
    }
}
