//! # audit — the Semandaq Data Auditor
//!
//! Summarized quality reporting over detection results:
//!
//! * [`classify`] — tuple- and cell-level classes (verified / probably /
//!   arguably clean / dirty), exactly the taxonomy the demo's §3 defines;
//! * [`stats`] — min/avg/max of `vio(t)`, histograms, group-size stats;
//! * [`quality_map`] — the tuple-level shading of Fig. 3;
//! * [`report`] — the assembled Fig. 4 report (attribute bar chart +
//!   per-CFD pie + headline numbers);
//! * [`charts`] — plain-text bar / stacked-bar / pie renderers.

#![warn(missing_docs)]

pub mod charts;
pub mod classify;
pub mod quality_map;
pub mod report;
pub mod stats;

pub use classify::{classify, Classification, CleanClass};
pub use quality_map::{quality_map, QualityMap};
pub use report::{quality_report, AttributeBreakdown, QualityReport};
pub use stats::{violation_stats, ViolationStats};
