//! The mutation write-ahead log: newline-delimited, length-capped,
//! CRC-framed records.
//!
//! One record per line:
//!
//! ```text
//! <len>:<crc32 as 8 lowercase hex digits>:<payload>\n
//! ```
//!
//! where `len` is the payload's byte length in decimal and the CRC covers
//! exactly the payload bytes. Payloads are wire-encoded [`api::Request`]s
//! — the mini-JSON codec escapes every control character (`\n` included),
//! so an encoded request is single-line by construction and the framing
//! never needs payload escaping. Payloads are capped at
//! [`api::MAX_FRAME_BYTES`], mirroring the service's frame cap: nothing
//! the service accepted can fail to log, and nothing the log replays can
//! exceed what the service would accept.
//!
//! **Torn-tail semantics.** [`scan_bytes`] walks records from the start
//! and stops at the *first* invalid byte — a short line, a length
//! overrun, a CRC mismatch, anything. It never resyncs past damage to a
//! later newline: a mid-file corruption means every later record's
//! provenance is unknowable, and replaying around it would fabricate
//! history. The scan reports the clean prefix (`valid_bytes`) and the
//! tear's byte offset + reason; recovery truncates to the prefix and
//! carries on, which is exactly the contract a kill -9 mid-append needs.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use crate::crc::crc32;

/// Cap on one record's payload bytes — identical to the service frame cap.
pub const MAX_RECORD_BYTES: usize = api::MAX_FRAME_BYTES;

/// Cap on one *checkpoint* record's payload bytes. Checkpoint row records
/// prefix a WAL-sized insert encoding with `"<id> "` (≤ 21 bytes), so a
/// mutation the service legitimately accepted at [`MAX_RECORD_BYTES`]
/// must still fit a checkpoint record; the headroom covers the prefix.
pub const MAX_CHECKPOINT_RECORD_BYTES: usize = MAX_RECORD_BYTES + 64;

/// `fsync` a directory, pinning its metadata (renames, file creations,
/// deletions) to stable storage. On ext4/xfs a `rename` can otherwise
/// reorder after a later data write across a power loss.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

struct WalObs {
    appends: Arc<obs::Counter>,
    append_bytes: Arc<obs::Counter>,
    replayed: Arc<obs::Counter>,
    truncations: Arc<obs::Counter>,
}

// `wal_fsync_ns` has no named handle here: `obs::span("wal_fsync_ns")`
// resolves the histogram from the global registry at each append.
fn wal_obs() -> &'static WalObs {
    static OBS: OnceLock<WalObs> = OnceLock::new();
    OBS.get_or_init(|| WalObs {
        appends: obs::counter("wal_appends_total"),
        append_bytes: obs::counter("wal_append_bytes_total"),
        replayed: obs::counter("wal_replayed_records_total"),
        truncations: obs::counter("wal_truncations_total"),
    })
}

/// How a scanned WAL ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte belongs to a valid record.
    Clean,
    /// The log is damaged from `offset` on; `reason` says how. Bytes
    /// before `offset` form the longest valid record prefix.
    Torn {
        /// Byte offset of the first invalid byte.
        offset: u64,
        /// Human-readable account of the damage.
        reason: String,
    },
}

/// The outcome of scanning a WAL: the decoded record payloads of the
/// valid prefix, where that prefix ends, and how the log tail looked.
#[derive(Debug)]
pub struct WalScan {
    /// Record payloads in append order.
    pub records: Vec<String>,
    /// Bytes of the valid prefix (`== file length` when `tail` is clean).
    pub valid_bytes: u64,
    /// Whether the log ended cleanly or torn.
    pub tail: WalTail,
}

/// Scan `data` as WAL bytes: decode the longest valid record prefix,
/// stopping (never resyncing) at the first invalid byte. Records are
/// capped at [`MAX_RECORD_BYTES`]; checkpoints scan through
/// [`scan_bytes_with_cap`] with [`MAX_CHECKPOINT_RECORD_BYTES`] instead.
pub fn scan_bytes(data: &[u8]) -> WalScan {
    scan_bytes_with_cap(data, MAX_RECORD_BYTES)
}

/// [`scan_bytes`] with an explicit per-record payload cap.
pub fn scan_bytes_with_cap(data: &[u8], cap: usize) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let torn = |offset: usize, reason: String| WalTail::Torn {
        offset: offset as u64,
        reason,
    };
    let tail = loop {
        if pos == data.len() {
            break WalTail::Clean;
        }
        let record_start = pos;
        // <len> — decimal digits up to ':'.
        let Some(colon) = data[pos..]
            .iter()
            .take(cap.ilog10() as usize + 2)
            .position(|&b| b == b':')
        else {
            break torn(record_start, "record header: no length delimiter".into());
        };
        let len_digits = &data[pos..pos + colon];
        let Some(len) = std::str::from_utf8(len_digits)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        else {
            break torn(record_start, "record header: malformed length".into());
        };
        if len > cap {
            break torn(
                record_start,
                format!("record header: length {len} exceeds the {cap}-byte cap"),
            );
        }
        pos += colon + 1;
        // <crc> — exactly 8 hex digits and ':'.
        if data.len() < pos + 9 || data[pos + 8] != b':' {
            break torn(record_start, "record header: truncated checksum".into());
        }
        let Some(expected) = std::str::from_utf8(&data[pos..pos + 8])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
        else {
            break torn(record_start, "record header: malformed checksum".into());
        };
        pos += 9;
        // <payload>\n — exactly `len` bytes then the terminator.
        if data.len() < pos + len + 1 {
            break torn(record_start, "truncated payload".into());
        }
        let payload = &data[pos..pos + len];
        if data[pos + len] != b'\n' {
            break torn(record_start, "payload not newline-terminated".into());
        }
        let actual = crc32(payload);
        if actual != expected {
            break torn(
                record_start,
                format!("checksum mismatch: expected {expected:08x}, computed {actual:08x}"),
            );
        }
        let Ok(payload) = std::str::from_utf8(payload) else {
            break torn(record_start, "payload is not UTF-8".into());
        };
        records.push(payload.to_string());
        pos += len + 1;
    };
    // On a tear, `pos` may already sit inside the damaged record's header
    // (the header parses incrementally); the valid prefix ends where the
    // torn record *started*.
    let valid_bytes = match &tail {
        WalTail::Clean => pos as u64,
        WalTail::Torn { offset, .. } => *offset,
    };
    WalScan {
        records,
        valid_bytes,
        tail,
    }
}

/// Frame one payload as a WAL line (without writing it anywhere).
pub fn frame(payload: &str) -> String {
    format!(
        "{}:{:08x}:{payload}\n",
        payload.len(),
        crc32(payload.as_bytes())
    )
}

/// An append handle on one WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    sync: bool,
    appends: u64,
    /// Set when a failed append could not be rolled back to the last
    /// record boundary: the file may end in torn bytes, and appending
    /// past them would write records a recovery scan silently truncates.
    poisoned: bool,
    /// Test-only fault injection: the next append writes half its frame
    /// and then fails, simulating a torn `write_all`.
    #[cfg(test)]
    inject_torn_write: bool,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path` and position at its
    /// end, **without** validating existing content — pair with
    /// [`Wal::recover`] unless the file is known fresh.
    pub fn open(path: &Path) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            len,
            sync: true,
            appends: 0,
            poisoned: false,
            #[cfg(test)]
            inject_torn_write: false,
        })
    }

    /// Open the WAL at `path`, scan it, and truncate a torn tail down to
    /// the longest valid prefix (with a loud warning — a tear is expected
    /// exactly once per crash, never in steady state). Returns the handle
    /// positioned after the valid prefix plus the scan (whose records the
    /// caller replays).
    pub fn recover(path: &Path) -> io::Result<(Wal, WalScan)> {
        let mut data = Vec::new();
        if path.exists() {
            File::open(path)?.read_to_end(&mut data)?;
        }
        let scan = scan_bytes(&data);
        if let WalTail::Torn { offset, reason } = &scan.tail {
            eprintln!(
                "WARNING: WAL {} torn at byte {offset} ({reason}); truncating to the \
                 {}-byte valid prefix of {} records",
                path.display(),
                scan.valid_bytes,
                scan.records.len()
            );
            wal_obs().truncations.inc();
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(scan.valid_bytes)?;
            f.sync_all()?;
        }
        wal_obs().replayed.add(scan.records.len() as u64);
        let mut wal = Wal::open(path)?;
        wal.len = scan.valid_bytes;
        Ok((wal, scan))
    }

    /// Append one record. The payload must be single-line (wire-encoded
    /// requests are, by construction) and within [`MAX_RECORD_BYTES`];
    /// the write is fsynced before returning unless [`Wal::set_sync`]
    /// turned syncing off.
    ///
    /// A failed append never leaves the log longer than its last record
    /// boundary: the file is rolled back to the pre-append length, so a
    /// torn `write_all` cannot strand later (acked) records past bytes a
    /// recovery scan would truncate at. If the rollback itself fails the
    /// handle is poisoned and refuses all further appends.
    pub fn append(&mut self, payload: &str) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other(
                "WAL is poisoned: an earlier append failed and could not be rolled \
                 back, so the file may end mid-record",
            ));
        }
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte cap",
                    payload.len()
                ),
            ));
        }
        if payload.as_bytes().contains(&b'\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "WAL record payload contains a raw newline (not wire-encoded?)",
            ));
        }
        let line = frame(payload);
        if let Err(e) = self.write_line(line.as_bytes()) {
            if self.rollback().is_err() {
                self.poisoned = true;
            }
            return Err(e);
        }
        self.len += line.len() as u64;
        self.appends += 1;
        let o = wal_obs();
        o.appends.inc();
        o.append_bytes.add(line.len() as u64);
        Ok(())
    }

    /// Write one framed line and (when syncing) fsync it.
    fn write_line(&mut self, line: &[u8]) -> io::Result<()> {
        #[cfg(test)]
        if self.inject_torn_write {
            self.inject_torn_write = false;
            self.file.write_all(&line[..line.len() / 2])?;
            self.file.sync_data()?;
            return Err(io::Error::other("injected torn write"));
        }
        self.file.write_all(line)?;
        if self.sync {
            let _t = obs::span("wal_fsync_ns");
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Cut the file back to the last record boundary after a failed
    /// append (any partially written frame bytes are discarded).
    fn rollback(&mut self) -> io::Result<()> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_data()
    }

    /// Toggle fsync-per-append (on by default). Benchmarks building long
    /// WALs turn it off; the service tier leaves it on.
    pub fn set_sync(&mut self, sync: bool) {
        self.sync = sync;
    }

    /// Whether fsync-per-append is on (carried across WAL rotations).
    pub fn sync_enabled(&self) -> bool {
        self.sync
    }

    /// Truncate the log to empty. Checkpoints do **not** use this — they
    /// rotate to a fresh generation file instead (see
    /// `Durable::checkpoint`), so a crash can never pair a new checkpoint
    /// with a stale pre-checkpoint log.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::End(0))?;
        self.file.sync_all()?;
        self.len = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sdq_wal_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        let payloads = [
            r#"{"op":"insert","row":[["s","a"]]}"#,
            r#"{"op":"delete","row":7}"#,
            "",
            "x",
        ];
        for p in payloads {
            wal.append(p).unwrap();
        }
        assert_eq!(wal.appends(), 4);
        let (wal2, scan) = Wal::recover(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records, payloads);
        assert_eq!(wal2.len_bytes(), wal.len_bytes());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_refuses_newlines_and_oversize() {
        let dir = tmpdir("refuse");
        let mut wal = Wal::open(&dir.join("wal.log")).unwrap();
        assert!(wal.append("two\nlines").is_err());
        let huge = "y".repeat(MAX_RECORD_BYTES + 1);
        assert!(wal.append(&huge).is_err());
        assert_eq!(wal.appends(), 0, "refused appends write nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_truncation_yields_a_valid_prefix() {
        let payloads = ["alpha", "", r#"{"op":"detect"}"#, "delta-9"];
        let full: String = payloads.iter().map(|p| frame(p)).collect();
        let bytes = full.as_bytes();
        for cut in 0..=bytes.len() {
            let scan = scan_bytes(&bytes[..cut]);
            // The valid prefix is a whole number of leading records...
            assert!(scan.records.len() <= payloads.len(), "cut {cut}");
            assert_eq!(
                scan.records,
                &payloads[..scan.records.len()],
                "cut {cut}: prefix must match append order"
            );
            // ...and valid_bytes points exactly past them.
            let expect_bytes: usize = payloads[..scan.records.len()]
                .iter()
                .map(|p| frame(p).len())
                .sum();
            assert_eq!(scan.valid_bytes as usize, expect_bytes, "cut {cut}");
            if cut == bytes.len() {
                assert_eq!(scan.tail, WalTail::Clean);
            } else {
                assert!(
                    matches!(scan.tail, WalTail::Torn { .. }) || scan.valid_bytes as usize == cut,
                    "cut {cut}: mid-record cut must be reported torn"
                );
            }
        }
    }

    #[test]
    fn corruption_reports_offset_and_never_resyncs() {
        let payloads = ["first-record", "second-record", "third-record"];
        let full: String = payloads.iter().map(|p| frame(p)).collect();
        let mut bytes = full.into_bytes();
        // Flip one payload byte inside the second record.
        let second_start = frame(payloads[0]).len();
        let flip_at = second_start + frame(payloads[1]).len() - 3;
        bytes[flip_at] ^= 0x40;
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records, ["first-record"], "no resync past damage");
        let WalTail::Torn { offset, reason } = scan.tail else {
            panic!("corruption must be reported");
        };
        assert_eq!(offset as usize, second_start, "tear at the damaged record");
        assert!(reason.contains("checksum mismatch"), "{reason}");
    }

    #[test]
    fn failed_append_rolls_back_to_the_record_boundary() {
        let dir = tmpdir("rollback");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("before-fault").unwrap();
        let clean_len = wal.len_bytes();
        wal.inject_torn_write = true;
        assert!(wal.append("torn-victim").is_err());
        // The torn half-frame was cut off: the file ends exactly at the
        // last record boundary and later appends land cleanly after it.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        wal.append("after-fault").unwrap();
        drop(wal);
        let (_, scan) = Wal::recover(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        assert_eq!(scan.records, ["before-fault", "after-fault"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_wal_refuses_appends() {
        let dir = tmpdir("poison");
        let mut wal = Wal::open(&dir.join("wal.log")).unwrap();
        wal.append("ok").unwrap();
        wal.poisoned = true;
        let err = wal.append("rejected").unwrap_err();
        assert!(err.to_string().contains("poisoned"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_cap_scan_accepts_oversized_wal_records() {
        // A payload legal at the WAL cap grows past it once a checkpoint
        // adds the "<id> " prefix; the checkpoint scan cap absorbs that.
        let payload = format!("{} {}", u64::MAX, "x".repeat(MAX_RECORD_BYTES - 4));
        assert!(payload.len() > MAX_RECORD_BYTES);
        let log = frame(&payload);
        let wal_scan = scan_bytes(log.as_bytes());
        assert!(matches!(wal_scan.tail, WalTail::Torn { .. }));
        let ckpt_scan = scan_bytes_with_cap(log.as_bytes(), MAX_CHECKPOINT_RECORD_BYTES);
        assert_eq!(ckpt_scan.tail, WalTail::Clean);
        assert_eq!(ckpt_scan.records, [payload]);
    }

    #[test]
    fn recover_truncates_torn_tail_and_new_appends_continue() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append("keep-me").unwrap();
        wal.append("casualty").unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop the last 5 bytes.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (mut wal, scan) = Wal::recover(&path).unwrap();
        assert_eq!(scan.records, ["keep-me"]);
        assert!(matches!(scan.tail, WalTail::Torn { .. }));
        wal.append("after-crash").unwrap();
        let (_, scan2) = Wal::recover(&path).unwrap();
        assert_eq!(scan2.tail, WalTail::Clean);
        assert_eq!(scan2.records, ["keep-me", "after-crash"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
