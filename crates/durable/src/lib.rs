//! Durability tier: mutation write-ahead log + paged cold-chunk spill.
//!
//! The paper's system is presented as an in-memory engine; this crate
//! adds the two pieces that let it survive a process crash and a table
//! larger than memory, without touching the detection core:
//!
//! * **WAL** ([`wal`], [`backend`]) — every mutating request is appended
//!   to a CRC-framed, newline-delimited log *in its wire encoding* before
//!   the backend applies it. The frame format is
//!   `<len>:<crc32 hex>:<payload>\n`; recovery replays the longest valid
//!   prefix and truncates a torn tail. [`Durable`] is the
//!   `QualityBackend` wrapper that does the logging, replay and
//!   checkpointing.
//! * **Spill** ([`pages`]) — sealed dictionary-code chunks evict from the
//!   snapshot cache to a paged file ([`PagedStore`], a
//!   `colstore::ChunkStore`), fronted by a small clock-eviction buffer
//!   pool. Morsel-driven detect faults pages back chunk-at-a-time, so a
//!   scan runs in `O(memory budget)` residency instead of `O(table)`.
//!
//! Reusing the wire encoding as the log format means the WAL inherits the
//! codec's pinned round-trip guarantees (embedded newlines, control
//! characters, non-finite floats — see the codec audit tests in `api`)
//! and stays greppable with stock tools.

pub mod backend;
pub mod crc;
pub mod pages;
pub mod wal;

pub use backend::{wal_file, Durable, RecoveryStats, CHECKPOINT_FILE, SPILL_FILE, WAL_FILE};
pub use crc::crc32;
pub use pages::PagedStore;
pub use wal::{Wal, WalScan, WalTail};

#[cfg(test)]
mod tests {
    use super::*;
    use api::{Capabilities, Mutation, MutationBatch, QualityBackend, Request};
    use cfd::{CfdError, CfdResult};
    use minidb::{RowId, Value};
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdq_durable_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A minimal deterministic backend: rows in a slot vector (ids are
    /// slot indices, like the real engines), plus checkpoint support.
    #[derive(Default, Debug)]
    struct Toy {
        rows: Vec<Option<Vec<Value>>>,
        rules: usize,
    }

    impl QualityBackend for Toy {
        fn capabilities(&self) -> Capabilities {
            Capabilities {
                backend: "toy".into(),
                repair: false,
                streaming: false,
                shards: 1,
                metrics: true,
                trace: true,
            }
        }
        fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
            self.rules = text.lines().filter(|l| !l.trim().is_empty()).count();
            Ok(self.rules)
        }
        fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
            self.rows.push(Some(row));
            Ok(RowId(self.rows.len() as u64 - 1))
        }
        fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
            self.rows
                .get_mut(row.index())
                .and_then(Option::take)
                .ok_or_else(|| CfdError::Malformed(format!("no row {row:?}")))
        }
        fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
            let r = self
                .rows
                .get_mut(row.index())
                .and_then(Option::as_mut)
                .ok_or_else(|| CfdError::Malformed(format!("no row {row:?}")))?;
            let slot = r
                .get_mut(col)
                .ok_or_else(|| CfdError::Malformed(format!("no col {col}")))?;
            Ok(std::mem::replace(slot, value))
        }
        fn detect(&mut self) -> CfdResult<detect::ViolationReport> {
            Ok(detect::ViolationReport::default())
        }
        fn audit(&mut self) -> CfdResult<audit::QualityReport> {
            Err(CfdError::Unsupported("toy".into()))
        }
        fn last_report(&self) -> Option<detect::ViolationReport> {
            None
        }
        fn len(&self) -> usize {
            self.rows.iter().flatten().count()
        }
        fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
            Ok(self
                .rows
                .iter()
                .enumerate()
                .filter_map(|(i, r)| r.clone().map(|r| (RowId(i as u64), r)))
                .collect())
        }
        fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
            while self.rows.len() <= id.index() {
                self.rows.push(None);
            }
            self.rows[id.index()] = Some(row);
            Ok(())
        }
        fn next_row_id(&self) -> CfdResult<u64> {
            Ok(self.rows.len() as u64)
        }
        fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
            while (self.rows.len() as u64) < next {
                self.rows.push(None);
            }
            Ok(())
        }
    }

    fn live(t: &Toy) -> Vec<(u64, Vec<Value>)> {
        t.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.clone().map(|r| (i as u64, r)))
            .collect()
    }

    #[test]
    fn reopen_replays_the_log_to_an_identical_relation() {
        let dir = tmp_dir("replay");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        d.register_cfds("r: [a=_] -> [b=_]").unwrap();
        d.insert(vec![Value::str("x"), Value::Int(1)]).unwrap();
        let id = d.insert(vec![Value::str("y"), Value::Int(2)]).unwrap();
        d.update_cell(id, 1, Value::Int(9)).unwrap();
        d.insert(vec![Value::str("z"), Value::Int(3)]).unwrap();
        d.delete(RowId(0)).unwrap();
        let want = live(d.inner());
        drop(d);

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(live(d2.inner()), want);
        assert_eq!(d2.recovery().records_replayed, 6);
        assert_eq!(d2.recovery().records_refailed, 0);
        assert_eq!(d2.inner().rules, 1, "rule registration replays too");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_mutations_refail_on_replay_without_derailing_it() {
        let dir = tmp_dir("refail");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        d.insert(vec![Value::Int(1)]).unwrap();
        assert!(d.delete(RowId(41)).is_err(), "logged, then failed");
        d.insert(vec![Value::Int(2)]).unwrap();
        let want = live(d.inner());
        drop(d);

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(live(d2.inner()), want);
        assert_eq!(d2.recovery().records_replayed, 3);
        assert_eq!(d2.recovery().records_refailed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_restores_with_stable_ids() {
        let dir = tmp_dir("ckpt");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        d.register_cfds("r: [a=_] -> [b=_]").unwrap();
        for i in 0..5 {
            d.insert(vec![Value::Int(i)]).unwrap();
        }
        d.delete(RowId(2)).unwrap(); // leave a hole: ids 0,1,3,4
        d.checkpoint().unwrap();
        assert_eq!(d.wal_bytes(), 0, "checkpoint truncates the WAL");
        // Post-checkpoint traffic lands in the (now short) WAL.
        d.insert(vec![Value::Int(99)]).unwrap();
        let want = live(d.inner());
        drop(d);

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(
            live(d2.inner()),
            want,
            "checkpoint + WAL suffix restores all"
        );
        assert_eq!(d2.recovery().checkpoint_rows, 4);
        assert_eq!(d2.recovery().records_replayed, 1);
        assert_eq!(d2.inner().rules, 1, "rules travel in the checkpoint");
        assert_eq!(
            live(d2.inner()).last().unwrap().0,
            5,
            "id allocation resumes past the checkpointed ids"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_preserves_the_allocator_past_trailing_tombstones() {
        // Delete the newest row, checkpoint, then insert after recovery:
        // the new row must get the id the pre-crash run would have
        // assigned (the deleted id is never reused), not the deleted one.
        let dir = tmp_dir("arena");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        d.insert(vec![Value::Int(0)]).unwrap();
        let newest = d.insert(vec![Value::Int(1)]).unwrap();
        d.delete(newest).unwrap();
        d.checkpoint().unwrap();
        drop(d);

        let mut d2 = Durable::open(&dir, Toy::default()).unwrap();
        let id = d2.insert(vec![Value::Int(2)]).unwrap();
        assert_eq!(id, RowId(2), "allocation resumes past the tombstone");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The kill -9 window between the checkpoint install rename and the
    /// old log's deletion: the full pre-checkpoint WAL is still on disk
    /// next to the new checkpoint. Recovery must replay NONE of it — the
    /// checkpoint names the fresh generation, and replaying the old one
    /// would double-apply every mutation.
    #[test]
    fn stale_pre_checkpoint_log_is_never_replayed() {
        let dir = tmp_dir("stale_gen");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        for i in 0..4 {
            d.insert(vec![Value::Int(i)]).unwrap();
        }
        let pre_ckpt_log = std::fs::read(dir.join(WAL_FILE)).unwrap();
        d.checkpoint().unwrap();
        assert_eq!(d.wal_generation(), 1);
        let want = live(d.inner());
        drop(d);
        // Resurrect the old generation-0 log, as if the crash hit before
        // `checkpoint` got to delete it.
        std::fs::write(dir.join(WAL_FILE), &pre_ckpt_log).unwrap();

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().records_replayed, 0, "stale log replayed");
        assert_eq!(d2.recovery().checkpoint_rows, 4);
        assert_eq!(live(d2.inner()), want, "double-applied mutations");
        assert!(
            !dir.join(WAL_FILE).exists(),
            "stale generation must be cleaned up"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The converse window: a crash *before* the install rename leaves a
    /// staged temp checkpoint and an empty staged next-generation WAL.
    /// Recovery must ignore both and replay the old generation in full.
    #[test]
    fn aborted_checkpoint_staging_replays_the_old_generation() {
        let dir = tmp_dir("aborted_ckpt");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        for i in 0..3 {
            d.insert(vec![Value::Int(i)]).unwrap();
        }
        let want = live(d.inner());
        drop(d);
        // Crash mid-checkpoint: staged artifacts exist, no install.
        std::fs::write(dir.join(backend::wal_file(1)), b"").unwrap();
        std::fs::write(dir.join("checkpoint.tmp"), b"half-written").unwrap();

        let mut d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().records_replayed, 3);
        assert_eq!(live(d2.inner()), want);
        assert!(!dir.join("checkpoint.tmp").exists(), "stale tmp kept");
        // And checkpointing still works over the cleaned-up directory.
        d2.checkpoint().unwrap();
        assert_eq!(d2.wal_generation(), 1);
        drop(d2);
        let d3 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d3.recovery().records_replayed, 0);
        assert_eq!(live(d3.inner()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Each checkpoint rotates to a fresh generation file; exactly one
    /// WAL generation survives on disk and reopen pairs with it.
    #[test]
    fn repeated_checkpoints_advance_generations() {
        let dir = tmp_dir("generations");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        for round in 0..3u64 {
            d.insert(vec![Value::Int(round as i64)]).unwrap();
            d.checkpoint().unwrap();
            assert_eq!(d.wal_generation(), round + 1);
        }
        let want = live(d.inner());
        drop(d);
        let wal_files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("wal."))
            .collect();
        assert_eq!(wal_files, [backend::wal_file(3)]);
        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.wal_generation(), 3);
        assert_eq!(live(d2.inner()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A mutation at the WAL record cap — the largest the service can
    /// accept — must survive a checkpoint round trip even though the
    /// checkpoint adds an id prefix to its encoding.
    #[test]
    fn checkpoint_restores_a_row_at_the_wal_record_cap() {
        let dir = tmp_dir("cap_row");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        let base = Request::Insert {
            row: vec![Value::str("")],
        }
        .encode()
        .len();
        let row = vec![Value::str("x".repeat(wal::MAX_RECORD_BYTES - base))];
        assert_eq!(
            Request::Insert { row: row.clone() }.encode().len(),
            wal::MAX_RECORD_BYTES,
            "the probe row must sit exactly at the WAL cap"
        );
        d.insert(row.clone()).unwrap();
        d.checkpoint().unwrap();
        drop(d);
        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().checkpoint_rows, 1);
        assert_eq!(live(d2.inner()), vec![(0, row)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batches_log_as_one_record() {
        let dir = tmp_dir("batch");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        let batch: MutationBatch = vec![
            Mutation::Insert(vec![Value::Int(1)]),
            Mutation::Insert(vec![Value::Int(2)]),
            Mutation::SetCell {
                row: RowId(0),
                col: 0,
                value: Value::Int(7),
            },
        ]
        .into();
        d.apply_batch(batch).unwrap();
        let want = live(d.inner());
        drop(d);

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().records_replayed, 1, "one batch, one record");
        assert_eq!(live(d2.inner()), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = tmp_dir("torn");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        d.insert(vec![Value::Int(1)]).unwrap();
        d.insert(vec![Value::Int(2)]).unwrap();
        drop(d);
        // Tear the last record mid-frame.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().records_replayed, 1, "valid prefix only");
        // Both records encode identically-sized payloads, so the valid
        // prefix is exactly half the original file.
        assert_eq!(
            d2.recovery().truncated_bytes,
            (bytes.len() - 3 - bytes.len() / 2) as u64
        );
        assert_eq!(live(d2.inner()).len(), 1);
        // And the log keeps working after the truncation.
        drop(d2);
        let mut d3 = Durable::open(&dir, Toy::default()).unwrap();
        d3.insert(vec![Value::Int(3)]).unwrap();
        drop(d3);
        let d4 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(live(d4.inner()).len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The codec-audit counterpart to `api`'s WAL-critical pins: the
    /// frames of mutations carrying embedded newlines, control
    /// characters, non-finite floats, and empty strings scan back
    /// byte-exact, and a `Durable` reopen replays them into the same
    /// relation.
    #[test]
    fn wal_critical_payloads_survive_framing_and_replay() {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::str("line one\nline two\r\nline three")],
            vec![Value::str("\n"), Value::str("\t")],
            vec![Value::str("\u{0}\u{1}\u{b}\u{1f}\u{7f}")],
            vec![
                Value::Float(f64::NAN),
                Value::Float(f64::INFINITY),
                Value::Float(f64::NEG_INFINITY),
            ],
            vec![Value::str(""), Value::Null],
        ];
        // Framing: encoded requests concatenate into a log that scans
        // back record-for-record, cleanly.
        let payloads: Vec<String> = rows
            .iter()
            .map(|row| Request::Insert { row: row.clone() }.encode())
            .collect();
        let log: String = payloads.iter().map(|p| wal::frame(p)).collect();
        let scan = wal::scan_bytes(log.as_bytes());
        assert!(matches!(scan.tail, WalTail::Clean), "{:?}", scan.tail);
        assert_eq!(scan.records, payloads);

        // Replay: the same mutations through a real `Durable` round trip.
        let dir = tmp_dir("critical");
        let mut d = Durable::open(&dir, Toy::default()).unwrap();
        for row in &rows {
            d.insert(row.clone()).unwrap();
        }
        let want = d.inner().rows.len();
        drop(d);
        let d2 = Durable::open(&dir, Toy::default()).unwrap();
        assert_eq!(d2.recovery().records_replayed, rows.len());
        assert_eq!(d2.inner().rows.len(), want);
        // NaN breaks Vec equality; compare through the canonical wire
        // encoding instead (bit-exact float rendering).
        let enc = |t: &Toy| -> Vec<String> {
            t.rows
                .iter()
                .flatten()
                .map(|r| Request::Insert { row: r.clone() }.encode())
                .collect()
        };
        assert_eq!(enc(d2.inner()), payloads);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_log_with_read_records_is_refused() {
        let dir = tmp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        let payload = Request::Detect.encode();
        std::fs::write(dir.join(WAL_FILE), wal::frame(&payload)).unwrap();
        let err = Durable::open(&dir, Toy::default()).unwrap_err();
        assert!(err.to_string().contains("non-mutating"), "got: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
