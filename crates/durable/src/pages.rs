//! The paged cold-chunk store: fixed-width pages in one spill file,
//! fronted by a small clock-eviction buffer pool.
//!
//! Sealed column chunks are `chunk_rows` little-endian `u32` codes —
//! fixed width, so page `p` lives at byte offset `p * chunk_rows * 4`
//! and fault-in is one positioned read, no directory. Freed pages go on
//! a free list and are reused by later spills, so the file's footprint
//! tracks the *live* spilled set, not the spill history.
//!
//! The buffer pool holds up to `pool_pages` recently-faulted pages and
//! evicts with the clock (second-chance) sweep: each frame has a
//! referenced bit, set on hit; the hand sweeps frames, clearing set bits
//! and evicting the first frame found clear. Eviction only drops the
//! pool's `Arc` — a detect morsel still scanning the page keeps it alive
//! through its `ChunkGuard`, so eviction can never invalidate a reader.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use colstore::ChunkStore;

struct PageObs {
    faults: Arc<obs::Counter>,
    pool_hits: Arc<obs::Counter>,
    writes: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
}

fn page_obs() -> &'static PageObs {
    static OBS: OnceLock<PageObs> = OnceLock::new();
    OBS.get_or_init(|| PageObs {
        faults: obs::counter("spill_page_faults_total"),
        pool_hits: obs::counter("spill_pool_hits_total"),
        writes: obs::counter("spill_pages_written_total"),
        evictions: obs::counter("spill_pool_evictions_total"),
    })
}

/// One buffer-pool frame.
struct Frame {
    page: u64,
    data: Arc<Vec<u32>>,
    /// Second-chance bit: set on hit, cleared by the sweeping hand.
    referenced: bool,
}

/// Pool + allocator state, under one lock (spills and faults are page
/// granular and rare relative to scans; the lock is not on the scan's
/// per-row path).
struct Inner {
    file: File,
    /// Pages ever allocated (high-water mark of the file).
    allocated: u64,
    /// Freed page ids available for reuse.
    free: Vec<u64>,
    frames: Vec<Frame>,
    /// `page id → frame index` for pooled pages.
    map: HashMap<u64, usize>,
    /// Clock hand: next frame the eviction sweep inspects.
    hand: usize,
}

/// Disk-backed [`ChunkStore`]: one spill file of fixed-width pages plus a
/// clock-eviction buffer pool. Construct with [`PagedStore::create`] and
/// share the returned `Arc` with every cache (and shard) that spills.
pub struct PagedStore {
    inner: Mutex<Inner>,
    /// Codes per page (the snapshots' `chunk_rows`).
    page_codes: usize,
    /// Buffer pool capacity in pages.
    pool_pages: usize,
}

impl PagedStore {
    /// Create (truncating) the spill file at `path`, with pages of
    /// `page_codes` codes and a pool of `pool_pages` frames. The page
    /// size must equal the chunk size of every snapshot spilling here.
    pub fn create(
        path: &Path,
        page_codes: usize,
        pool_pages: usize,
    ) -> io::Result<Arc<PagedStore>> {
        assert!(page_codes >= 1, "page_codes must be positive");
        assert!(pool_pages >= 1, "pool_pages must be positive");
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .read(true)
            .truncate(true)
            .open(path)?;
        Ok(Arc::new(PagedStore {
            inner: Mutex::new(Inner {
                file,
                allocated: 0,
                free: Vec::new(),
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
            }),
            page_codes,
            pool_pages,
        }))
    }

    /// Codes per page.
    pub fn page_codes(&self) -> usize {
        self.page_codes
    }

    /// Live (allocated, not freed) pages.
    pub fn live_pages(&self) -> u64 {
        let inner = self.lock();
        inner.allocated - inner.free.len() as u64
    }

    /// Pages currently held by the buffer pool.
    pub fn pooled_pages(&self) -> usize {
        self.lock().frames.len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock means a writer panicked mid-I/O; the state is
        // still structurally sound (worst case a leaked page), so read on.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Insert `(page, data)` into the pool, evicting via the clock sweep
    /// if it is full.
    fn pool_insert(inner: &mut Inner, pool_pages: usize, page: u64, data: Arc<Vec<u32>>) {
        if let Some(&fi) = inner.map.get(&page) {
            inner.frames[fi].data = data;
            inner.frames[fi].referenced = true;
            return;
        }
        if inner.frames.len() < pool_pages {
            inner.map.insert(page, inner.frames.len());
            inner.frames.push(Frame {
                page,
                data,
                referenced: true,
            });
            return;
        }
        // Clock sweep: clear referenced bits until a clear frame turns up.
        // Terminates within two revolutions (after one full sweep every
        // bit is clear).
        loop {
            let fi = inner.hand;
            inner.hand = (inner.hand + 1) % inner.frames.len();
            if inner.frames[fi].referenced {
                inner.frames[fi].referenced = false;
            } else {
                let evicted = std::mem::replace(
                    &mut inner.frames[fi],
                    Frame {
                        page,
                        data,
                        referenced: true,
                    },
                );
                inner.map.remove(&evicted.page);
                inner.map.insert(page, fi);
                page_obs().evictions.inc();
                return;
            }
        }
    }
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("page_codes", &self.page_codes)
            .field("pool_pages", &self.pool_pages)
            .finish_non_exhaustive()
    }
}

impl ChunkStore for PagedStore {
    fn store(&self, codes: &[u32]) -> io::Result<u64> {
        assert!(
            codes.len() <= self.page_codes,
            "chunk of {} codes exceeds the {}-code page (mismatched chunk_rows?)",
            codes.len(),
            self.page_codes
        );
        let mut inner = self.lock();
        let page = inner.free.pop().unwrap_or_else(|| {
            inner.allocated += 1;
            inner.allocated - 1
        });
        let mut bytes = Vec::with_capacity(codes.len() * 4);
        for &c in codes {
            bytes.extend_from_slice(&c.to_le_bytes());
        }
        let offset = page * self.page_codes as u64 * 4;
        inner.file.seek(SeekFrom::Start(offset))?;
        inner.file.write_all(&bytes)?;
        page_obs().writes.inc();
        // Freshly spilled chunks are *cold* by definition — do not cache
        // them; the pool is for read traffic.
        Ok(page)
    }

    fn load(&self, page: u64, len: usize) -> io::Result<Arc<Vec<u32>>> {
        let mut inner = self.lock();
        if let Some(&fi) = inner.map.get(&page) {
            inner.frames[fi].referenced = true;
            page_obs().pool_hits.inc();
            return Ok(Arc::clone(&inner.frames[fi].data));
        }
        page_obs().faults.inc();
        let offset = page * self.page_codes as u64 * 4;
        inner.file.seek(SeekFrom::Start(offset))?;
        let mut bytes = vec![0u8; len * 4];
        inner.file.read_exact(&mut bytes)?;
        let codes: Vec<u32> = bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        let data = Arc::new(codes);
        Self::pool_insert(&mut inner, self.pool_pages, page, Arc::clone(&data));
        Ok(data)
    }

    fn free(&self, page: u64) {
        let mut inner = self.lock();
        if let Some(fi) = inner.map.remove(&page) {
            inner.frames.swap_remove(fi);
            // swap_remove moved the last frame into `fi`; fix its map
            // entry and keep the hand in range.
            if fi < inner.frames.len() {
                let moved = inner.frames[fi].page;
                inner.map.insert(moved, fi);
            }
            if !inner.frames.is_empty() {
                inner.hand %= inner.frames.len();
            } else {
                inner.hand = 0;
            }
        }
        inner.free.push(page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str, page_codes: usize, pool: usize) -> (Arc<PagedStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("sdq_pages_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        (
            PagedStore::create(&dir.join("spill.pages"), page_codes, pool).unwrap(),
            dir,
        )
    }

    #[test]
    fn store_load_roundtrip_and_reuse() {
        let (s, dir) = store("roundtrip", 8, 2);
        let a: Vec<u32> = (0..8).collect();
        let b: Vec<u32> = (100..108).collect();
        let pa = s.store(&a).unwrap();
        let pb = s.store(&b).unwrap();
        assert_eq!(s.live_pages(), 2);
        assert_eq!(s.load(pa, 8).unwrap().as_slice(), a.as_slice());
        assert_eq!(s.load(pb, 8).unwrap().as_slice(), b.as_slice());
        s.free(pa);
        assert_eq!(s.live_pages(), 1);
        let c: Vec<u32> = (7..15).collect();
        let pc = s.store(&c).unwrap();
        assert_eq!(pc, pa, "freed page id is reused");
        assert_eq!(s.load(pc, 8).unwrap().as_slice(), c.as_slice());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pool_caps_and_clock_evicts() {
        let (s, dir) = store("clock", 4, 2);
        let pages: Vec<u64> = (0u32..5).map(|i| s.store(&[i, i, i, i]).unwrap()).collect();
        // Fault all five through a 2-frame pool.
        for (i, &p) in pages.iter().enumerate() {
            let got = s.load(p, 4).unwrap();
            assert_eq!(got.as_slice(), &[i as u32; 4]);
            assert!(s.pooled_pages() <= 2, "pool never exceeds its frame cap");
        }
        // A pooled page answers without touching the file (observable as a
        // pool hit; the data is shared, not re-read).
        let last = *pages.last().unwrap();
        let first = s.load(last, 4).unwrap();
        let second = s.load(last, 4).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "pool hit shares the Arc");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_does_not_invalidate_held_readers() {
        let (s, dir) = store("readers", 2, 1);
        let p0 = s.store(&[1, 2]).unwrap();
        let p1 = s.store(&[3, 4]).unwrap();
        let held = s.load(p0, 2).unwrap();
        let _other = s.load(p1, 2).unwrap(); // evicts p0 from the 1-frame pool
        assert_eq!(held.as_slice(), &[1, 2], "reader's Arc survives eviction");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
