//! [`Durable`]: the write-ahead-logging backend wrapper.
//!
//! `Durable<B>` wraps any [`QualityBackend`] and appends the wire-encoded
//! form of every mutating request to the WAL **before** handing it to the
//! wrapped backend — log-before-apply. Behind the network tier this
//! composes into log-before-*publish* for free: `ConcurrentEngine`'s
//! single writer thread dispatches the mutation through its backend (the
//! `Durable` wrapper, which logs first) and only then publishes the new
//! epoch, so every state a reader can ever observe is reconstructible
//! from the log.
//!
//! **Replay.** [`Durable::open`] restores the checkpoint (if one exists),
//! then replays the WAL's valid prefix through the same backend surface
//! the records were logged from (`apply_batch` for batches, the
//! single-mutation methods otherwise). Per-record *application* errors
//! are counted and skipped — a request that failed at runtime (say, a
//! delete of a row that never existed) was logged before its failure was
//! known and deterministically re-fails during replay, which is exactly
//! the original outcome. A record that fails to *decode* aborts recovery
//! instead: its frame CRC already passed, so the bytes are what was
//! written and the mismatch means a foreign or incompatible log —
//! continuing would apply a prefix of someone else's history.
//!
//! **Checkpoint.** [`Durable::checkpoint`] persists the full relation
//! (rules + rows with their stable ids, via
//! [`QualityBackend::export_rows`]) into `checkpoint.sdq` — written to a
//! temp file, fsynced, renamed — then truncates the WAL. Recovery =
//! restore checkpoint + replay WAL suffix. Replay determinism rests on
//! the backends' sequential id assignment: the same initial state under
//! the same request prefix assigns the same row ids (pinned by the crash
//! recovery property tests).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use api::{Capabilities, MutationBatch, QualityBackend, RepairSummary, Request};
use cfd::{CfdError, CfdResult};
use minidb::{RowId, Value};

use crate::wal::{scan_bytes, Wal, WalTail};

/// WAL file name inside the durability directory.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.sdq";
/// Spill-page file name inside the durability directory (used by the
/// server tiers when a memory budget is configured; the file is scratch
/// state, not part of recovery).
pub const SPILL_FILE: &str = "spill.pages";

fn io_err(what: &str, e: io::Error) -> CfdError {
    CfdError::Malformed(format!("{what}: {e}"))
}

struct DurableObs {
    replays: Arc<obs::Counter>,
    replay_errors: Arc<obs::Counter>,
    checkpoints: Arc<obs::Counter>,
    checkpoint_rows: Arc<obs::Counter>,
}

fn durable_obs() -> &'static DurableObs {
    static OBS: OnceLock<DurableObs> = OnceLock::new();
    OBS.get_or_init(|| DurableObs {
        replays: obs::counter("wal_recoveries_total"),
        replay_errors: obs::counter("wal_replay_record_errors_total"),
        checkpoints: obs::counter("wal_checkpoints_total"),
        checkpoint_rows: obs::counter("wal_checkpoint_rows_total"),
    })
}

/// What [`Durable::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Rows restored from the checkpoint file.
    pub checkpoint_rows: usize,
    /// WAL records replayed (including ones that re-failed).
    pub records_replayed: usize,
    /// Replayed records whose application re-failed (deterministic
    /// re-failures of requests that already failed before the crash).
    pub records_refailed: usize,
    /// Bytes truncated off a torn WAL tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// A write-ahead-logged [`QualityBackend`] wrapper. See the module docs
/// for the log/replay/checkpoint contract.
#[derive(Debug)]
pub struct Durable<B> {
    inner: B,
    wal: Wal,
    dir: PathBuf,
    /// The last registered rule text, remembered for checkpoints (rules
    /// travel as their textual notation).
    rules: Option<String>,
    recovery: RecoveryStats,
}

impl<B: QualityBackend> Durable<B> {
    /// Wrap `backend`, restoring any prior state found in `dir` (created
    /// if absent): checkpoint first, then the WAL's valid prefix. A torn
    /// WAL tail is truncated with a loud warning. The backend must be
    /// freshly constructed (empty relation) when `dir` holds prior state
    /// — replay determinism is relative to the logged initial state.
    pub fn open(dir: &Path, mut backend: B) -> CfdResult<Durable<B>> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create WAL dir", e))?;
        let _trace = obs::trace::root("durable.recover");
        durable_obs().replays.inc();
        let mut recovery = RecoveryStats::default();
        let mut rules = None;

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        if ckpt_path.exists() {
            let sp = obs::trace::span("durable.restore_checkpoint");
            let restored = restore_checkpoint(&ckpt_path, &mut backend, &mut rules)?;
            recovery.checkpoint_rows = restored;
            sp.attr("rows", restored);
        }

        let sp = obs::trace::span("durable.replay_wal");
        let wal_path = dir.join(WAL_FILE);
        let before = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        let (wal, scan) = Wal::recover(&wal_path).map_err(|e| io_err("recover WAL", e))?;
        if let WalTail::Torn { .. } = scan.tail {
            recovery.truncated_bytes = before - scan.valid_bytes;
        }
        for payload in &scan.records {
            let req = Request::decode(payload).map_err(|e| {
                CfdError::Malformed(format!(
                    "WAL record failed to decode ({e}); the log was written by an \
                     incompatible build — refusing to replay past it"
                ))
            })?;
            let (applied, text) = apply_logged(&mut backend, req)?;
            if let Some(text) = text {
                rules = Some(text);
            }
            if !applied {
                recovery.records_refailed += 1;
            }
            recovery.records_replayed += 1;
        }
        sp.attr("records", recovery.records_replayed);
        sp.attr("truncated_bytes", recovery.truncated_bytes);
        drop(sp);

        Ok(Durable {
            inner: backend,
            wal,
            dir: dir.to_path_buf(),
            rules,
            recovery,
        })
    }

    /// What recovery found when this wrapper was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Toggle fsync-per-append (on by default; benchmarks building long
    /// logs turn it off).
    pub fn set_sync(&mut self, sync: bool) {
        self.wal.set_sync(sync);
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutable. Mutations applied directly bypass
    /// the log — only reach in for read-side configuration.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Persist the current relation as a checkpoint and truncate the WAL.
    /// On any error the old checkpoint and the WAL are untouched (the
    /// checkpoint is written to a temp file and renamed into place; the
    /// WAL only truncates after the rename).
    pub fn checkpoint(&mut self) -> CfdResult<()> {
        let _trace = obs::trace::root("durable.checkpoint");
        let rows = self.inner.export_rows()?;
        let arena = self.inner.next_row_id()?;
        let tmp = self.dir.join("checkpoint.tmp");
        let target = self.dir.join(CHECKPOINT_FILE);
        {
            let mut out =
                std::fs::File::create(&tmp).map_err(|e| io_err("create checkpoint", e))?;
            let mut buf = String::new();
            buf.push_str(&crate::wal::frame(&format!(
                "ckpt v1 rows={} arena={arena}",
                rows.len()
            )));
            if let Some(text) = &self.rules {
                buf.push_str(&crate::wal::frame(
                    &Request::RegisterCfds { text: text.clone() }.encode(),
                ));
            }
            for (id, row) in &rows {
                let insert = Request::Insert { row: row.clone() }.encode();
                buf.push_str(&crate::wal::frame(&format!("{} {insert}", id.0)));
            }
            use std::io::Write;
            out.write_all(buf.as_bytes())
                .map_err(|e| io_err("write checkpoint", e))?;
            out.sync_all().map_err(|e| io_err("sync checkpoint", e))?;
        }
        std::fs::rename(&tmp, &target).map_err(|e| io_err("install checkpoint", e))?;
        self.wal
            .truncate()
            .map_err(|e| io_err("truncate WAL after checkpoint", e))?;
        let o = durable_obs();
        o.checkpoints.inc();
        o.checkpoint_rows.add(rows.len() as u64);
        Ok(())
    }

    /// Append `req`'s wire form to the WAL, mapping I/O failure to a
    /// backend error (the mutation is NOT applied when logging fails).
    fn log(&mut self, req: &Request) -> CfdResult<()> {
        self.wal
            .append(&req.encode())
            .map_err(|e| io_err("WAL append", e))
    }
}

/// Replay one logged request against `backend`. Application errors are
/// deterministic re-failures — counted, not propagated. Returns whether
/// the record applied cleanly, plus the rule text when the record was a
/// successful `RegisterCfds` (the caller remembers it for the next
/// checkpoint).
fn apply_logged<B: QualityBackend>(
    backend: &mut B,
    req: Request,
) -> CfdResult<(bool, Option<String>)> {
    let outcome: Result<Option<String>, CfdError> = match req {
        Request::RegisterCfds { text } => backend.register_cfds(&text).map(move |_| Some(text)),
        Request::Insert { row } => backend.insert(row).map(|_| None),
        Request::Delete { row } => backend.delete(row).map(|_| None),
        Request::UpdateCell { row, col, value } => {
            backend.update_cell(row, col, value).map(|_| None)
        }
        Request::ApplyBatch { batch } => backend.apply_batch(batch).map(|_| None),
        Request::Repair => backend.repair().map(|_| None),
        other => {
            return Err(CfdError::Malformed(format!(
                "WAL contains a non-mutating '{}' record — the log was not written \
                 by this wrapper",
                other.kind_str()
            )))
        }
    };
    match outcome {
        Ok(text) => Ok((true, text)),
        Err(_) => {
            durable_obs().replay_errors.inc();
            Ok((false, None))
        }
    }
}

/// Restore `path`'s checkpoint into `backend` (which must be empty).
/// Returns the number of rows restored and stores the rule text.
fn restore_checkpoint<B: QualityBackend>(
    path: &Path,
    backend: &mut B,
    rules: &mut Option<String>,
) -> CfdResult<usize> {
    if !backend.is_empty() {
        return Err(CfdError::Malformed(
            "checkpoint restore requires a freshly constructed (empty) backend".into(),
        ));
    }
    let data = std::fs::read(path).map_err(|e| io_err("read checkpoint", e))?;
    let scan = scan_bytes(&data);
    if let WalTail::Torn { offset, reason } = &scan.tail {
        return Err(CfdError::Malformed(format!(
            "checkpoint {} corrupt at byte {offset}: {reason}",
            path.display()
        )));
    }
    let mut records = scan.records.iter();
    let header = records
        .next()
        .ok_or_else(|| CfdError::Malformed("checkpoint is empty".into()))?;
    // Header: `ckpt v1 rows=<N> arena=<M>`. `arena` is the id-allocator
    // position at checkpoint time — it can exceed the last live id (ids
    // of deleted rows are never reused), and replay of the WAL suffix is
    // only id-deterministic if allocation resumes from exactly there.
    let (declared, arena) = header
        .strip_prefix("ckpt v1 rows=")
        .and_then(|rest| rest.split_once(" arena="))
        .and_then(|(n, m)| Some((n.parse::<usize>().ok()?, m.parse::<u64>().ok()?)))
        .ok_or_else(|| {
            CfdError::Malformed(format!("checkpoint header unrecognized: {header:?}"))
        })?;
    let mut restored = 0usize;
    for record in records {
        // Rule record: a bare encoded RegisterCfds request.
        // Row record: "<id> <encoded Insert request>".
        if let Some((id_digits, payload)) = record
            .split_once(' ')
            .filter(|(id, _)| id.bytes().all(|b| b.is_ascii_digit()))
        {
            let id: u64 = id_digits
                .parse()
                .map_err(|_| CfdError::Malformed(format!("checkpoint row id: {id_digits:?}")))?;
            let Request::Insert { row } = Request::decode(payload)? else {
                return Err(CfdError::Malformed(
                    "checkpoint row record does not hold an insert".into(),
                ));
            };
            backend.restore_row(RowId(id), row)?;
            restored += 1;
        } else {
            let Request::RegisterCfds { text } = Request::decode(record)? else {
                return Err(CfdError::Malformed(
                    "checkpoint rule record does not hold register_cfds".into(),
                ));
            };
            backend.register_cfds(&text)?;
            *rules = Some(text);
        }
    }
    if restored != declared {
        return Err(CfdError::Malformed(format!(
            "checkpoint declares {declared} rows but holds {restored}"
        )));
    }
    backend.restore_arena(arena)?;
    Ok(restored)
}

impl<B: QualityBackend> QualityBackend for Durable<B> {
    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        self.log(&Request::RegisterCfds {
            text: text.to_string(),
        })?;
        let n = self.inner.register_cfds(text)?;
        self.rules = Some(text.to_string());
        Ok(n)
    }

    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        self.log(&Request::Insert { row: row.clone() })?;
        self.inner.insert(row)
    }

    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        self.log(&Request::Delete { row })?;
        self.inner.delete(row)
    }

    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        self.log(&Request::UpdateCell {
            row,
            col,
            value: value.clone(),
        })?;
        self.inner.update_cell(row, col, value)
    }

    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<api::BatchOutcome> {
        self.log(&Request::ApplyBatch {
            batch: batch.clone(),
        })?;
        self.inner.apply_batch(batch)
    }

    fn detect(&mut self) -> CfdResult<detect::ViolationReport> {
        self.inner.detect()
    }

    fn audit(&mut self) -> CfdResult<audit::QualityReport> {
        self.inner.audit()
    }

    fn last_report(&self) -> Option<detect::ViolationReport> {
        self.inner.last_report()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn repair(&mut self) -> CfdResult<RepairSummary> {
        // Repair is deterministic (pinned by the repair-semantics tests),
        // so logging the *request* reproduces its cell edits on replay.
        self.log(&Request::Repair)?;
        self.inner.repair()
    }

    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        self.inner.export_rows()
    }

    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        // Recovery-internal: reached only through `restore_checkpoint`,
        // which runs before the wrapper exists. A direct call would
        // bypass the log, so refuse it.
        let _ = (id, row);
        Err(CfdError::Unsupported(
            "restore_row on a Durable wrapper (checkpoint restore runs at open)".into(),
        ))
    }

    fn next_row_id(&self) -> CfdResult<u64> {
        self.inner.next_row_id()
    }

    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        // Recovery-internal, like `restore_row`: a direct call would move
        // the allocator without a log record.
        let _ = next;
        Err(CfdError::Unsupported(
            "restore_arena on a Durable wrapper (checkpoint restore runs at open)".into(),
        ))
    }

    fn metrics(&self) -> CfdResult<obs::MetricsReport> {
        self.inner.metrics()
    }

    fn trace(&self) -> CfdResult<obs::TraceReport> {
        self.inner.trace()
    }
}
