//! [`Durable`]: the write-ahead-logging backend wrapper.
//!
//! `Durable<B>` wraps any [`QualityBackend`] and appends the wire-encoded
//! form of every mutating request to the WAL **before** handing it to the
//! wrapped backend — log-before-apply. Behind the network tier this
//! composes into log-before-*publish* for free: `ConcurrentEngine`'s
//! single writer thread dispatches the mutation through its backend (the
//! `Durable` wrapper, which logs first) and only then publishes the new
//! epoch, so every state a reader can ever observe is reconstructible
//! from the log.
//!
//! **Replay.** [`Durable::open`] restores the checkpoint (if one exists),
//! then replays the WAL's valid prefix through the same backend surface
//! the records were logged from (`apply_batch` for batches, the
//! single-mutation methods otherwise). Per-record *application* errors
//! are counted and skipped — a request that failed at runtime (say, a
//! delete of a row that never existed) was logged before its failure was
//! known and deterministically re-fails during replay, which is exactly
//! the original outcome. A record that fails to *decode* aborts recovery
//! instead: its frame CRC already passed, so the bytes are what was
//! written and the mismatch means a foreign or incompatible log —
//! continuing would apply a prefix of someone else's history.
//!
//! **Checkpoint.** [`Durable::checkpoint`] persists the full relation
//! (rules + rows with their stable ids, via
//! [`QualityBackend::export_rows`]) into `checkpoint.sdq` — written to a
//! temp file, fsynced, renamed, directory-fsynced. The WAL is **rotated,
//! never truncated in place**: the checkpoint header names the WAL
//! generation that is valid *after* it (`gen=G`), a fresh empty
//! `wal.G.log` is staged before the rename, and the pre-checkpoint log
//! is deleted only once the rename has landed. The rename is therefore
//! the single commit point — a crash on either side of it pairs each
//! checkpoint with exactly the log generation it names, so recovery can
//! never replay mutations the checkpoint already folded in (nor lose
//! ones it didn't). [`Durable::open`] restores the checkpoint, replays
//! only the named generation, and deletes any stale generation files a
//! crash left behind. Replay determinism rests on the backends'
//! sequential id assignment: the same initial state under the same
//! request prefix assigns the same row ids (pinned by the crash recovery
//! property tests).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use api::{Capabilities, MutationBatch, QualityBackend, RepairSummary, Request};
use cfd::{CfdError, CfdResult};
use minidb::{RowId, Value};

use crate::wal::{fsync_dir, scan_bytes_with_cap, Wal, WalTail, MAX_CHECKPOINT_RECORD_BYTES};

/// Generation-0 WAL file name inside the durability directory (the live
/// log until the first checkpoint; see [`wal_file`]).
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.sdq";
/// Temp file a checkpoint is staged in before the install rename.
const CHECKPOINT_TMP: &str = "checkpoint.tmp";
/// Spill-page file name inside the durability directory (used by the
/// server tiers when a memory budget is configured; the file is scratch
/// state, not part of recovery).
pub const SPILL_FILE: &str = "spill.pages";

fn io_err(what: &str, e: io::Error) -> CfdError {
    CfdError::Malformed(format!("{what}: {e}"))
}

/// The WAL file name for generation `gen`. Each checkpoint rotates to
/// the next generation; the checkpoint header records which generation
/// recovery must replay. Generation 0 (no checkpoint yet) is the plain
/// [`WAL_FILE`].
pub fn wal_file(gen: u64) -> String {
    if gen == 0 {
        WAL_FILE.to_string()
    } else {
        format!("wal.{gen}.log")
    }
}

/// Inverse of [`wal_file`]: the generation a directory entry names, if
/// it is a WAL file at all.
fn parse_wal_gen(name: &str) -> Option<u64> {
    if name == WAL_FILE {
        return Some(0);
    }
    let digits = name.strip_prefix("wal.")?.strip_suffix(".log")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Delete every WAL generation file in `dir` except `keep` — stale
/// generations a crash mid-checkpoint left behind. Ones older than the
/// installed checkpoint are already folded into it; newer ones are empty
/// stage files from an uninstalled checkpoint. Failing to delete is a
/// hard error: a later checkpoint could rotate into a stale file's name
/// and a later recovery would then replay foreign history.
fn remove_stale_wal_generations(dir: &Path, keep: u64) -> CfdResult<()> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("list WAL dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("list WAL dir", e))?;
        let name = entry.file_name();
        let Some(gen) = name.to_str().and_then(parse_wal_gen) else {
            continue;
        };
        if gen != keep {
            std::fs::remove_file(entry.path())
                .map_err(|e| io_err("remove stale WAL generation", e))?;
        }
    }
    Ok(())
}

struct DurableObs {
    replays: Arc<obs::Counter>,
    replay_errors: Arc<obs::Counter>,
    checkpoints: Arc<obs::Counter>,
    checkpoint_rows: Arc<obs::Counter>,
}

fn durable_obs() -> &'static DurableObs {
    static OBS: OnceLock<DurableObs> = OnceLock::new();
    OBS.get_or_init(|| DurableObs {
        replays: obs::counter("wal_recoveries_total"),
        replay_errors: obs::counter("wal_replay_record_errors_total"),
        checkpoints: obs::counter("wal_checkpoints_total"),
        checkpoint_rows: obs::counter("wal_checkpoint_rows_total"),
    })
}

/// What [`Durable::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Rows restored from the checkpoint file.
    pub checkpoint_rows: usize,
    /// WAL records replayed (including ones that re-failed).
    pub records_replayed: usize,
    /// Replayed records whose application re-failed (deterministic
    /// re-failures of requests that already failed before the crash).
    pub records_refailed: usize,
    /// Bytes truncated off a torn WAL tail (0 for a clean log).
    pub truncated_bytes: u64,
}

/// A write-ahead-logged [`QualityBackend`] wrapper. See the module docs
/// for the log/replay/checkpoint contract.
#[derive(Debug)]
pub struct Durable<B> {
    inner: B,
    wal: Wal,
    /// The live WAL generation — 0 until the first checkpoint, bumped by
    /// each one (the checkpoint header names the generation to replay).
    gen: u64,
    dir: PathBuf,
    /// The last registered rule text, remembered for checkpoints (rules
    /// travel as their textual notation).
    rules: Option<String>,
    recovery: RecoveryStats,
}

impl<B: QualityBackend> Durable<B> {
    /// Wrap `backend`, restoring any prior state found in `dir` (created
    /// if absent): checkpoint first, then the WAL's valid prefix. A torn
    /// WAL tail is truncated with a loud warning. The backend must be
    /// freshly constructed (empty relation) when `dir` holds prior state
    /// — replay determinism is relative to the logged initial state.
    pub fn open(dir: &Path, mut backend: B) -> CfdResult<Durable<B>> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create WAL dir", e))?;
        let _trace = obs::trace::root("durable.recover");
        durable_obs().replays.inc();
        let mut recovery = RecoveryStats::default();
        let mut rules = None;

        // A crash before the install rename can leave a staged temp
        // checkpoint; it was never committed, so discard it.
        let _ = std::fs::remove_file(dir.join(CHECKPOINT_TMP));

        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let mut gen = 0u64;
        if ckpt_path.exists() {
            let sp = obs::trace::span("durable.restore_checkpoint");
            let restored = restore_checkpoint(&ckpt_path, &mut backend, &mut rules, &mut gen)?;
            recovery.checkpoint_rows = restored;
            sp.attr("rows", restored);
        }
        // Replay ONLY the generation the installed checkpoint names. Any
        // other generation file is a crash leftover: older ones are
        // already folded into the checkpoint (replaying them would
        // double-apply every mutation), newer ones were staged for a
        // checkpoint that never committed.
        remove_stale_wal_generations(dir, gen)?;

        let sp = obs::trace::span("durable.replay_wal");
        let wal_path = dir.join(wal_file(gen));
        let before = std::fs::metadata(&wal_path).map(|m| m.len()).unwrap_or(0);
        let (wal, scan) = Wal::recover(&wal_path).map_err(|e| io_err("recover WAL", e))?;
        // Pin the stale-generation deletions and (on first boot) the WAL
        // file's creation: without this a power loss can durably keep a
        // record appended to a file whose creation was itself lost.
        fsync_dir(dir).map_err(|e| io_err("fsync WAL dir", e))?;
        if let WalTail::Torn { .. } = scan.tail {
            recovery.truncated_bytes = before - scan.valid_bytes;
        }
        for payload in &scan.records {
            let req = Request::decode(payload).map_err(|e| {
                CfdError::Malformed(format!(
                    "WAL record failed to decode ({e}); the log was written by an \
                     incompatible build — refusing to replay past it"
                ))
            })?;
            let (applied, text) = apply_logged(&mut backend, req)?;
            if let Some(text) = text {
                rules = Some(text);
            }
            if !applied {
                recovery.records_refailed += 1;
            }
            recovery.records_replayed += 1;
        }
        sp.attr("records", recovery.records_replayed);
        sp.attr("truncated_bytes", recovery.truncated_bytes);
        drop(sp);

        Ok(Durable {
            inner: backend,
            wal,
            gen,
            dir: dir.to_path_buf(),
            rules,
            recovery,
        })
    }

    /// What recovery found when this wrapper was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current WAL length in bytes.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// The live WAL generation (0 until the first checkpoint; see
    /// [`wal_file`]).
    pub fn wal_generation(&self) -> u64 {
        self.gen
    }

    /// Toggle fsync-per-append (on by default; benchmarks building long
    /// logs turn it off).
    pub fn set_sync(&mut self, sync: bool) {
        self.wal.set_sync(sync);
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutable. Mutations applied directly bypass
    /// the log — only reach in for read-side configuration.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Persist the current relation as a checkpoint and rotate the WAL to
    /// the next generation.
    ///
    /// The install rename is the single commit point. Before it, the old
    /// checkpoint and the old WAL generation are untouched (an error
    /// leaves recovery exactly as it was); after it, the new checkpoint
    /// names the fresh, empty generation it was staged with, so a crash
    /// at *any* point — even between the rename and the old log's
    /// deletion — recovers the checkpoint plus only post-checkpoint
    /// mutations, never a double-applied pre-checkpoint log.
    pub fn checkpoint(&mut self) -> CfdResult<()> {
        let _trace = obs::trace::root("durable.checkpoint");
        let rows = self.inner.export_rows()?;
        let arena = self.inner.next_row_id()?;
        let next_gen = self.gen + 1;
        let tmp = self.dir.join(CHECKPOINT_TMP);
        let target = self.dir.join(CHECKPOINT_FILE);
        {
            let mut out =
                std::fs::File::create(&tmp).map_err(|e| io_err("create checkpoint", e))?;
            let mut buf = String::new();
            buf.push_str(&crate::wal::frame(&format!(
                "ckpt v2 rows={} arena={arena} gen={next_gen}",
                rows.len()
            )));
            if let Some(text) = &self.rules {
                push_checkpoint_record(
                    &mut buf,
                    &Request::RegisterCfds { text: text.clone() }.encode(),
                )?;
            }
            for (id, row) in &rows {
                let insert = Request::Insert { row: row.clone() }.encode();
                push_checkpoint_record(&mut buf, &format!("{} {insert}", id.0))?;
            }
            use std::io::Write;
            out.write_all(buf.as_bytes())
                .map_err(|e| io_err("write checkpoint", e))?;
            out.sync_all().map_err(|e| io_err("sync checkpoint", e))?;
        }
        // Stage the next WAL generation before the commit point, so the
        // file the new checkpoint names already exists; carry the sync
        // policy over. Any stale file under that name is a pre-commit
        // leftover of a failed earlier attempt — safe to clear.
        let next_path = self.dir.join(wal_file(next_gen));
        let _ = std::fs::remove_file(&next_path);
        let mut next_wal = Wal::open(&next_path).map_err(|e| io_err("stage next WAL", e))?;
        next_wal.set_sync(self.wal.sync_enabled());
        fsync_dir(&self.dir).map_err(|e| io_err("fsync WAL dir", e))?;
        // Commit point.
        std::fs::rename(&tmp, &target).map_err(|e| io_err("install checkpoint", e))?;
        fsync_dir(&self.dir).map_err(|e| io_err("fsync WAL dir", e))?;
        // Committed: switch appends to the new generation and drop the
        // old log (its content is folded into the checkpoint). Deletion
        // is best-effort — a leftover is cleaned up at the next open.
        let old_path = self.wal.path().to_path_buf();
        self.wal = next_wal;
        self.gen = next_gen;
        let _ = std::fs::remove_file(&old_path);
        let _ = fsync_dir(&self.dir);
        let o = durable_obs();
        o.checkpoints.inc();
        o.checkpoint_rows.add(rows.len() as u64);
        Ok(())
    }

    /// Append `req`'s wire form to the WAL, mapping I/O failure to a
    /// backend error (the mutation is NOT applied when logging fails).
    fn log(&mut self, req: &Request) -> CfdResult<()> {
        self.wal
            .append(&req.encode())
            .map_err(|e| io_err("WAL append", e))
    }
}

/// Replay one logged request against `backend`. Application errors are
/// deterministic re-failures — counted, not propagated. Returns whether
/// the record applied cleanly, plus the rule text when the record was a
/// successful `RegisterCfds` (the caller remembers it for the next
/// checkpoint).
fn apply_logged<B: QualityBackend>(
    backend: &mut B,
    req: Request,
) -> CfdResult<(bool, Option<String>)> {
    let outcome: Result<Option<String>, CfdError> = match req {
        Request::RegisterCfds { text } => backend.register_cfds(&text).map(move |_| Some(text)),
        Request::Insert { row } => backend.insert(row).map(|_| None),
        Request::Delete { row } => backend.delete(row).map(|_| None),
        Request::UpdateCell { row, col, value } => {
            backend.update_cell(row, col, value).map(|_| None)
        }
        Request::ApplyBatch { batch } => backend.apply_batch(batch).map(|_| None),
        Request::Repair => backend.repair().map(|_| None),
        other => {
            return Err(CfdError::Malformed(format!(
                "WAL contains a non-mutating '{}' record — the log was not written \
                 by this wrapper",
                other.kind_str()
            )))
        }
    };
    match outcome {
        Ok(text) => Ok((true, text)),
        Err(_) => {
            durable_obs().replay_errors.inc();
            Ok((false, None))
        }
    }
}

/// Frame one checkpoint record into `buf`, refusing payloads past the
/// checkpoint scan cap — a record the restore scan would reject as torn
/// must never be written (a failed checkpoint beats an unreadable one).
fn push_checkpoint_record(buf: &mut String, payload: &str) -> CfdResult<()> {
    if payload.len() > MAX_CHECKPOINT_RECORD_BYTES {
        return Err(CfdError::Malformed(format!(
            "checkpoint record of {} bytes exceeds the {MAX_CHECKPOINT_RECORD_BYTES}-byte cap",
            payload.len()
        )));
    }
    buf.push_str(&crate::wal::frame(payload));
    Ok(())
}

/// Restore `path`'s checkpoint into `backend` (which must be empty).
/// Returns the number of rows restored; stores the rule text and the WAL
/// generation the checkpoint names (the only generation replay may use).
fn restore_checkpoint<B: QualityBackend>(
    path: &Path,
    backend: &mut B,
    rules: &mut Option<String>,
    gen: &mut u64,
) -> CfdResult<usize> {
    if !backend.is_empty() {
        return Err(CfdError::Malformed(
            "checkpoint restore requires a freshly constructed (empty) backend".into(),
        ));
    }
    let data = std::fs::read(path).map_err(|e| io_err("read checkpoint", e))?;
    // Checkpoint row records are WAL-cap payloads plus an id prefix, so
    // they scan under the (slightly larger) checkpoint cap.
    let scan = scan_bytes_with_cap(&data, MAX_CHECKPOINT_RECORD_BYTES);
    if let WalTail::Torn { offset, reason } = &scan.tail {
        return Err(CfdError::Malformed(format!(
            "checkpoint {} corrupt at byte {offset}: {reason}",
            path.display()
        )));
    }
    let mut records = scan.records.iter();
    let header = records
        .next()
        .ok_or_else(|| CfdError::Malformed("checkpoint is empty".into()))?;
    // Header: `ckpt v2 rows=<N> arena=<M> gen=<G>`. `arena` is the
    // id-allocator position at checkpoint time — it can exceed the last
    // live id (ids of deleted rows are never reused), and replay of the
    // WAL suffix is only id-deterministic if allocation resumes from
    // exactly there. `gen` is the WAL generation this checkpoint pairs
    // with: replaying any other generation would double-apply folded-in
    // mutations.
    let (declared, arena, named_gen) = header
        .strip_prefix("ckpt v2 rows=")
        .and_then(|rest| rest.split_once(" arena="))
        .and_then(|(n, rest)| {
            let (m, g) = rest.split_once(" gen=")?;
            Some((
                n.parse::<usize>().ok()?,
                m.parse::<u64>().ok()?,
                g.parse::<u64>().ok()?,
            ))
        })
        .ok_or_else(|| {
            CfdError::Malformed(format!("checkpoint header unrecognized: {header:?}"))
        })?;
    *gen = named_gen;
    let mut restored = 0usize;
    for record in records {
        // Rule record: a bare encoded RegisterCfds request.
        // Row record: "<id> <encoded Insert request>".
        if let Some((id_digits, payload)) = record
            .split_once(' ')
            .filter(|(id, _)| id.bytes().all(|b| b.is_ascii_digit()))
        {
            let id: u64 = id_digits
                .parse()
                .map_err(|_| CfdError::Malformed(format!("checkpoint row id: {id_digits:?}")))?;
            let Request::Insert { row } = Request::decode(payload)? else {
                return Err(CfdError::Malformed(
                    "checkpoint row record does not hold an insert".into(),
                ));
            };
            backend.restore_row(RowId(id), row)?;
            restored += 1;
        } else {
            let Request::RegisterCfds { text } = Request::decode(record)? else {
                return Err(CfdError::Malformed(
                    "checkpoint rule record does not hold register_cfds".into(),
                ));
            };
            backend.register_cfds(&text)?;
            *rules = Some(text);
        }
    }
    if restored != declared {
        return Err(CfdError::Malformed(format!(
            "checkpoint declares {declared} rows but holds {restored}"
        )));
    }
    backend.restore_arena(arena)?;
    Ok(restored)
}

impl<B: QualityBackend> QualityBackend for Durable<B> {
    fn capabilities(&self) -> Capabilities {
        self.inner.capabilities()
    }

    fn register_cfds(&mut self, text: &str) -> CfdResult<usize> {
        self.log(&Request::RegisterCfds {
            text: text.to_string(),
        })?;
        let n = self.inner.register_cfds(text)?;
        self.rules = Some(text.to_string());
        Ok(n)
    }

    fn insert(&mut self, row: Vec<Value>) -> CfdResult<RowId> {
        self.log(&Request::Insert { row: row.clone() })?;
        self.inner.insert(row)
    }

    fn delete(&mut self, row: RowId) -> CfdResult<Vec<Value>> {
        self.log(&Request::Delete { row })?;
        self.inner.delete(row)
    }

    fn update_cell(&mut self, row: RowId, col: usize, value: Value) -> CfdResult<Value> {
        self.log(&Request::UpdateCell {
            row,
            col,
            value: value.clone(),
        })?;
        self.inner.update_cell(row, col, value)
    }

    fn apply_batch(&mut self, batch: MutationBatch) -> CfdResult<api::BatchOutcome> {
        self.log(&Request::ApplyBatch {
            batch: batch.clone(),
        })?;
        self.inner.apply_batch(batch)
    }

    fn detect(&mut self) -> CfdResult<detect::ViolationReport> {
        self.inner.detect()
    }

    fn audit(&mut self) -> CfdResult<audit::QualityReport> {
        self.inner.audit()
    }

    fn last_report(&self) -> Option<detect::ViolationReport> {
        self.inner.last_report()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn repair(&mut self) -> CfdResult<RepairSummary> {
        // Repair is deterministic (pinned by the repair-semantics tests),
        // so logging the *request* reproduces its cell edits on replay.
        self.log(&Request::Repair)?;
        self.inner.repair()
    }

    fn export_rows(&self) -> CfdResult<Vec<(RowId, Vec<Value>)>> {
        self.inner.export_rows()
    }

    fn restore_row(&mut self, id: RowId, row: Vec<Value>) -> CfdResult<()> {
        // Recovery-internal: reached only through `restore_checkpoint`,
        // which runs before the wrapper exists. A direct call would
        // bypass the log, so refuse it.
        let _ = (id, row);
        Err(CfdError::Unsupported(
            "restore_row on a Durable wrapper (checkpoint restore runs at open)".into(),
        ))
    }

    fn next_row_id(&self) -> CfdResult<u64> {
        self.inner.next_row_id()
    }

    fn restore_arena(&mut self, next: u64) -> CfdResult<()> {
        // Recovery-internal, like `restore_row`: a direct call would move
        // the allocator without a log record.
        let _ = next;
        Err(CfdError::Unsupported(
            "restore_arena on a Durable wrapper (checkpoint restore runs at open)".into(),
        ))
    }

    fn metrics(&self) -> CfdResult<obs::MetricsReport> {
        self.inner.metrics()
    }

    fn trace(&self) -> CfdResult<obs::TraceReport> {
        self.inner.trace()
    }
}
