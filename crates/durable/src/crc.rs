//! CRC-32 (ISO-HDLC / zlib polynomial), table-driven.
//!
//! The WAL frames every record with this checksum so a torn or bit-rotted
//! line is *detected*, never replayed. The implementation is the standard
//! reflected table algorithm — 256-entry table built once at startup, one
//! table lookup per byte — matching the `crc32` every zlib/PNG/ethernet
//! stack computes, so frames are checkable with stock tooling.

use std::sync::OnceLock;

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"semandaq wal record".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
