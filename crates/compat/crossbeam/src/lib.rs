//! Offline stand-in for the `crossbeam` surface this workspace uses:
//! [`scope`] with crossbeam's `FnOnce(&Scope) -> R` shape, implemented over
//! `std::thread::scope`. A panicking worker propagates when the scope joins
//! (crossbeam reports it as `Err`; every call site `.expect(..)`s that `Err`,
//! so propagation is observationally equivalent).

#![warn(missing_docs)]

use std::thread::Scope as StdScope;

/// Handle passed to the closure of [`scope`]; lets workers spawn siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope StdScope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope again, mirroring
    /// crossbeam's `|s|` parameter (commonly ignored as `|_|`).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// workers are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        let data = [1usize, 2, 3, 4];
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    counter.fetch_add(data.len(), Ordering::Relaxed);
                });
            }
        })
        .expect("workers do not panic");
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }
}
