//! Offline stand-in for the `proptest` surface this workspace uses.
//!
//! Supports exactly the idioms in the integration tests: `Strategy` with
//! `prop_map`, integer-range and tuple strategies, `Just`,
//! [`collection::vec`], weighted/unweighted `prop_oneof!`,
//! [`string::string_regex`] for `[class]{m,n}` patterns, the `proptest!`
//! test macro with `#![proptest_config(..)]`, and the `prop_assert*` /
//! `prop_assume!` family.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG and failures are reported without shrinking (the failing
//! values are printed via `Debug` where available at the assertion site).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional glob import used by proptest tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Build a weighted union of strategies: `prop_oneof![2 => a, 1 => b]` or an
/// unweighted list `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Skip the current case unless `cond` holds (counts as a pass; upstream
/// proptest would redraw, which only affects how many effective cases run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests: a block of `#[test] fn name(arg in strategy, ..)`
/// items, optionally preceded by `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg($config:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &$strat,
                            &mut rng,
                        );
                    )*
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property '{}' failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}
