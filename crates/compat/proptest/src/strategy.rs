//! The [`Strategy`] trait and combinators (generation only, no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in heterogeneous collections.
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Union<V> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_map_compose() {
        let mut rng = TestRng::from_name("ranges");
        let s = (0usize..3).prop_map(|i| format!("a{i}"));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(["a0", "a1", "a2"].contains(&v.as_str()));
        }
    }

    #[test]
    fn union_respects_zero_weight_arms() {
        let mut rng = TestRng::from_name("union");
        let s: Union<u8> = Union::new(vec![(1, boxed(0u8..1)), (0, boxed(200u8..201))]);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng), 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::from_name("tuples");
        let s = ((0usize..2), (10u8..12), (0u64..=0));
        for _ in 0..20 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 2 && (10..12).contains(&b) && c == 0);
        }
    }
}
