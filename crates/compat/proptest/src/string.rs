//! String strategies: [`string_regex`] for the character-class patterns the
//! workspace tests use (`[chars]{min,max}`, e.g. `"[a-z]{2,8}"`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Error returned for unsupported patterns.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Strategy producing strings matching a `[class]{min,max}` pattern.
pub struct RegexStrategy {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let span = (self.max - self.min + 1) as u64;
        let len = self.min + (rng.next_u64() % span) as usize;
        (0..len)
            .map(|_| self.alphabet[(rng.next_u64() % self.alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Build a generator for `pattern`, which must have the shape
/// `[class]{min,max}` — a single character class (ranges like `a-z` and
/// literal characters) with a bounded repetition. This covers every pattern
/// used in the workspace; anything else yields an [`Error`].
pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
    let err = || Error(pattern.to_string());
    let rest = pattern.strip_prefix('[').ok_or_else(err)?;
    let class_end = rest.find(']').ok_or_else(err)?;
    let class = &rest[..class_end];
    let quant = rest[class_end + 1..]
        .strip_prefix('{')
        .and_then(|q| q.strip_suffix('}'))
        .ok_or_else(err)?;
    let (min_s, max_s) = quant.split_once(',').ok_or_else(err)?;
    let min: usize = min_s.trim().parse().map_err(|_| err())?;
    let max: usize = max_s.trim().parse().map_err(|_| err())?;
    if min > max {
        return Err(err());
    }

    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            if lo > hi {
                return Err(err());
            }
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    if alphabet.is_empty() {
        return Err(err());
    }
    Ok(RegexStrategy { alphabet, min, max })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_literal() {
        let s = string_regex("[a-c ]{0,8}").unwrap();
        let mut rng = TestRng::from_name("regex");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() <= 8);
            assert!(v.chars().all(|c| matches!(c, 'a'..='c' | ' ')), "{v:?}");
        }
    }

    #[test]
    fn nonzero_minimum_respected() {
        let s = string_regex("[a-z]{2,8}").unwrap();
        let mut rng = TestRng::from_name("regex2");
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=8).contains(&v.len()));
        }
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(string_regex("(a|b)+").is_err());
        assert!(string_regex("[z-a]{1,2}").is_err());
    }
}
