//! Test-runner plumbing: configuration, case errors, and the deterministic
//! RNG behind every `proptest!` block.

use std::fmt;

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case failed.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion with a rendered message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> TestCaseError {
        TestCaseError(s)
    }
}

/// Deterministic generator (SplitMix64) seeded from the property name, so a
/// failing property reproduces under `cargo test <name>`.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a property name (FNV-1a of the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
