//! Collection strategies: `collection::vec(element, size)`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification: exact, half-open, or inclusive.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_specs() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..30 {
            assert_eq!(vec(0u8..3, 4).generate(&mut rng).len(), 4);
            let open = vec(0u8..3, 1..5).generate(&mut rng).len();
            assert!((1..5).contains(&open));
            let incl = vec(0u8..3, 1..=5).generate(&mut rng).len();
            assert!((1..=5).contains(&incl));
        }
    }
}
