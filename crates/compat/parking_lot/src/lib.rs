//! Offline stand-in for the `parking_lot` surface this workspace uses:
//! [`Mutex`] with parking_lot's poison-free `lock()` signature, implemented
//! over `std::sync::Mutex` (a poisoned lock panics, which matches the
//! "worker panics abort the operation" expectation at the call sites).

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, blocking. Panics if a holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex holder panicked")
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
