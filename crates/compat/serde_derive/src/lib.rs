//! Derive macros for the offline `serde` subset.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to empty impls of
//! the marker traits in the sibling `serde` crate. Only non-generic types are
//! supported — which covers every derive site in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name following the `struct` / `enum` / `union` keyword.
fn type_name(input: TokenStream) -> String {
    let mut saw_kw = false;
    for tt in input {
        match tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if saw_kw {
                    return s;
                }
                if s == "struct" || s == "enum" || s == "union" {
                    saw_kw = true;
                }
            }
            _ => continue,
        }
    }
    panic!("serde_derive: could not find a type name in the derive input");
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derive the `Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Derive the `Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
