//! Offline stand-in for the `criterion` surface this workspace uses:
//! [`Criterion`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros (benches must set
//! `harness = false`, as with real criterion).
//!
//! Measurement model: each benchmark runs one warm-up iteration, then
//! `sample_size` timed iterations, and prints the mean wall-clock time per
//! iteration. There is no statistical analysis — the goal is a functional,
//! dependency-free `cargo bench` that reports comparable numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted for API compatibility; the
/// offline runner always times the routine alone, per batch of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with fresh input from `setup` each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn ns_per_iter(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.iterations.max(1) as f64
    }
}

fn run_one(label: &str, sample_size: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        iterations: sample_size.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let ns = b.ns_per_iter();
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("{label:<60} {human:>12}/iter ({} iters)", b.iterations);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Run an unparameterized benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.sample_size, |b| f(b));
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, |b| f(b));
        self
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
