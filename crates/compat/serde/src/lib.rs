//! Offline stand-in for the `serde` facade.
//!
//! The workspace derives `Serialize` / `Deserialize` on its model types but
//! never drives an actual serializer (there is no `serde_json` in the tree),
//! so marker traits are sufficient. The derive macros live in the sibling
//! `serde_derive` crate and expand to empty impls of these traits.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// Upstream `serde::Serialize` has a required `serialize` method; nothing in
/// this workspace calls it, so the offline subset keeps the trait empty.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize {}
