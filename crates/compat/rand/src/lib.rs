//! Offline stand-in for the `rand` 0.8 API surface this workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256\*\* seeded via SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer ranges and [`Rng::gen_bool`].
//!
//! Determinism is the only contract the workloads rely on (every generator
//! is seeded and the tests assert reproducibility); statistical quality of
//! xoshiro256\*\* is far beyond what noise injection needs.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from a `u64` (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for the small spans used here and
                // irrelevant to the determinism contract.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256\*\* generator (the role `StdRng` plays in
    /// rand 0.8: a good default, seedable, `Clone`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let v = rng.gen_range(0u8..3);
        assert!(v < 3);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((3_500..6_500).contains(&hits), "wildly skewed: {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
