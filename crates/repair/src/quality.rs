//! Repair-quality scoring against ground truth ([8]'s evaluation
//! methodology; experiment E5): given the dirty, repaired, and clean
//! versions of a table, compute precision/recall at cell level — both
//! location-only (did we touch a truly dirty cell?) and value-exact (did we
//! restore the true value?).

use minidb::Table;

/// Precision/recall of a repair run.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairQuality {
    /// Cells that were truly dirty (dirty ≠ clean).
    pub error_cells: usize,
    /// Cells the repair changed (repaired ≠ dirty).
    pub changed_cells: usize,
    /// Changed cells that were truly dirty.
    pub located: usize,
    /// Changed cells restored to the exact clean value.
    pub exact: usize,
    /// `exact / changed` (1.0 when nothing changed).
    pub precision: f64,
    /// `exact / error_cells` (1.0 when nothing was dirty).
    pub recall: f64,
    /// Location-only precision: `located / changed`.
    pub precision_loc: f64,
    /// Location-only recall: `located_errors_fixed / error_cells` where a
    /// dirty cell counts as located when the repair changed it at all.
    pub recall_loc: f64,
}

impl RepairQuality {
    /// Harmonic mean of value-exact precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Score a repair. The three tables must share row ids (same generation
/// lineage); rows deleted during repair count their cells as changed but
/// never exact.
pub fn score_repair(dirty: &Table, repaired: &Table, clean: &Table) -> RepairQuality {
    let arity = clean.schema().arity();
    let mut error_cells = 0usize;
    let mut changed = 0usize;
    let mut located = 0usize;
    let mut exact = 0usize;
    for (id, dirty_row) in dirty.iter() {
        let clean_row = clean.get(id).ok();
        let rep_row = repaired.get(id).ok();
        for c in 0..arity {
            let d = &dirty_row[c];
            let cl = clean_row.map(|r| &r[c]);
            let rp = rep_row.map(|r| &r[c]);
            let is_error = cl.is_some_and(|v| !v.strong_eq(d));
            if is_error {
                error_cells += 1;
            }
            let is_changed = match rp {
                Some(v) => !v.strong_eq(d),
                None => true, // row deleted by repair
            };
            if is_changed {
                changed += 1;
                if is_error {
                    located += 1;
                }
                if let (Some(v), Some(cv)) = (rp, cl) {
                    if v.strong_eq(cv) && is_error {
                        exact += 1;
                    }
                }
            }
        }
    }
    let ratio = |num: usize, den: usize| {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    };
    RepairQuality {
        error_cells,
        changed_cells: changed,
        located,
        exact,
        precision: ratio(exact, changed),
        recall: ratio(exact, error_cells),
        precision_loc: ratio(located, changed),
        recall_loc: ratio(located, error_cells),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Schema, Value};

    fn t(rows: &[[&str; 2]]) -> Table {
        let mut t = Table::new("t", Schema::of_strings(&["a", "b"]));
        for r in rows {
            t.insert(r.iter().map(|v| Value::str(*v)).collect())
                .unwrap();
        }
        t
    }

    #[test]
    fn perfect_repair_scores_one() {
        let clean = t(&[["x", "y"], ["p", "q"]]);
        let dirty = t(&[["x", "BAD"], ["p", "q"]]);
        let repaired = clean.clone();
        let q = score_repair(&dirty, &repaired, &clean);
        assert_eq!(q.error_cells, 1);
        assert_eq!(q.changed_cells, 1);
        assert_eq!(q.exact, 1);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn wrong_value_right_location() {
        let clean = t(&[["x", "y"]]);
        let dirty = t(&[["x", "BAD"]]);
        let repaired = t(&[["x", "ALSO_BAD"]]);
        let q = score_repair(&dirty, &repaired, &clean);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.precision_loc, 1.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.recall_loc, 1.0);
    }

    #[test]
    fn overzealous_repair_hurts_precision() {
        let clean = t(&[["x", "y"]]);
        let dirty = t(&[["x", "BAD"]]);
        // fixed the error and gratuitously changed the clean cell
        let repaired = t(&[["CHANGED", "y"]]);
        let q = score_repair(&dirty, &repaired, &clean);
        assert_eq!(q.changed_cells, 2);
        assert_eq!(q.exact, 1);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn untouched_dirty_data_scores_zero_recall() {
        let clean = t(&[["x", "y"]]);
        let dirty = t(&[["x", "BAD"]]);
        let repaired = dirty.clone();
        let q = score_repair(&dirty, &repaired, &clean);
        assert_eq!(q.changed_cells, 0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.precision, 1.0, "vacuous precision");
    }
}
