//! The reusable plan/resolve core of BatchRepair.
//!
//! Historically the detect→resolve round loop lived inside `batch.rs`,
//! hard-wired to a `minidb::Database` plus a snapshot cache. Sharded
//! repair needs the *same* loop — the resolution semantics of [8] must be
//! byte-identical whether the relation lives in one heap table or is
//! partitioned across cluster shards — so the loop is factored over a
//! small storage surface, [`RepairStore`]:
//!
//! * `detect` — the round's violation report (single-node: the cached
//!   columnar detect; cluster: the scatter/gather exchange merge). The
//!   loop `normalized()`s the report, which is exactly why both engines
//!   drive identical resolutions: their reports are `normalized()`-equal
//!   by the detection equivalence properties.
//! * `row` / `set_cell` — point reads and the cell-write that keeps
//!   derived state (cached snapshots, shard placement) in lock-step.
//! * `value_counts` — distinct values with occurrence counts for the
//!   active-domain pool, counted over dictionary codes instead of a
//!   per-round row walk (see [`active_domains`]).
//!
//! [`repair_rounds`] then is the whole algorithm: constant violations
//! first (they establish pins), variable groups merged into global
//! equivalence classes ([`crate::eqclass`]) with cost-ordered target
//! values, LHS breaks when pins conflict, to fixpoint under an iteration
//! bound. Everything observable — the change list, its order, the costs —
//! depends only on the normalized reports and the store's point reads, so
//! two stores over the same logical relation produce the same repair.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use cfd::{BoundCfd, Cfd, CfdResult, Pattern};
use detect::violation::{ViolationKind, ViolationReport};
use minidb::{RowId, Schema, Value};

use crate::eqclass::{CellRef, EqClasses};

/// Global-registry handles for the repair loop's telemetry. After every
/// run, the `repair_rounds_total` delta equals [`RepairResult::iterations`]
/// and the `repair_changes_total` delta equals the change-list length
/// (pinned by `tests/metrics_invariants.rs`).
struct RepairObs {
    runs: Arc<obs::Counter>,
    rounds: Arc<obs::Counter>,
    changes: Arc<obs::Counter>,
    changes_per_round: Arc<obs::Histogram>,
    resolve_ns: Arc<obs::Histogram>,
}

fn repair_obs() -> &'static RepairObs {
    static OBS: OnceLock<RepairObs> = OnceLock::new();
    OBS.get_or_init(|| RepairObs {
        runs: obs::counter("repair_runs_total"),
        rounds: obs::counter("repair_rounds_total"),
        changes: obs::counter("repair_changes_total"),
        changes_per_round: obs::histogram("repair_changes_per_round"),
        resolve_ns: obs::histogram("repair_resolve_ns"),
    })
}

/// Why a cell was changed.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeReason {
    /// Assigned the RHS constant of a constant CFD.
    ConstantRhs {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Changed an LHS cell so a constant CFD's pattern no longer applies.
    ConstantLhsBreak {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Equalized the RHS of a variable CFD's violating group.
    VariableMerge {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Removed a tuple from a violating group by breaking its LHS key
    /// (used when pins conflict; introduces a fresh sentinel value).
    LhsBreak {
        /// Violated CFD index.
        cfd_idx: usize,
    },
}

/// One applied cell modification.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Row.
    pub row: RowId,
    /// Column index.
    pub col: usize,
    /// Value before.
    pub old: Value,
    /// Value after.
    pub new: Value,
    /// Cost charged by the model.
    pub cost: f64,
    /// Why.
    pub reason: ChangeReason,
    /// Iteration in which the change was applied.
    pub iteration: usize,
}

/// Outcome of a repair run.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResult {
    /// All applied changes, in order.
    pub changes: Vec<CellChange>,
    /// Iterations used.
    pub iterations: usize,
    /// Sum of change costs.
    pub total_cost: f64,
    /// Violations that could not be resolved within the bound (empty on
    /// the workloads in this repo; never silently dropped).
    pub residual: ViolationReport,
}

impl RepairResult {
    /// Net changed cells (last change per cell wins).
    pub fn changed_cells(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for c in &self.changes {
            set.insert((c.row, c.col));
        }
        set.len()
    }
}

/// Repair configuration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Iteration bound for the detect→resolve loop.
    pub max_iterations: usize,
    /// Cell confidence weights.
    pub weights: crate::cost::WeightModel,
    /// Use the similarity term of the cost model; `false` switches to 0/1
    /// costs (ablation A2).
    pub use_similarity: bool,
    /// Worker count for candidate-cost evaluation in the resolve phase;
    /// `None` defers to `SDQ_DETECT_THREADS` / available parallelism (the
    /// same knob and pool as morsel-driven detection). Cost scans below
    /// [`PARALLEL_CANDIDATES`] candidates stay serial regardless.
    pub threads: Option<usize>,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig {
            max_iterations: 32,
            weights: crate::cost::WeightModel::uniform(),
            use_similarity: true,
            threads: None,
        }
    }
}

/// Candidate pools smaller than this are cost-scanned serially — below it
/// the pool fan-out costs more than the scan.
pub const PARALLEL_CANDIDATES: usize = 64;

/// Evaluate `cost(i)` for every candidate index in `0..n`, fanning out over
/// the shared morsel pool when the pool is large enough to pay for it.
/// Results are positional, so the caller's serial reduce (strict `<`,
/// first-seen minimum wins) is order-identical to the old inline loop.
fn candidate_costs<F>(cfg: &RepairConfig, n: usize, cost: F) -> Vec<Option<f64>>
where
    F: Fn(usize) -> Option<f64> + Sync,
{
    let workers = colstore::morsel::resolve_threads(cfg.threads);
    if n < PARALLEL_CANDIDATES || workers <= 1 {
        return (0..n).map(cost).collect();
    }
    colstore::morsel::run_morsels(workers, n, cost)
        .into_iter()
        .map(|c| c.flatten())
        .collect()
}

/// The distinct values of one column with their live occurrence counts —
/// the per-column entry of [`RepairStore::value_counts`].
pub type ColumnCounts = Vec<(Value, u64)>;

/// The storage surface the repair loop runs against: one logical relation
/// with point reads, lock-step cell writes, violation detection and
/// dictionary-backed value statistics. Implemented by the single-node
/// table + snapshot-cache store (`batch_repair`) and by the sharded
/// cluster (`ShardedQualityServer::repair`).
pub trait RepairStore {
    /// Schema of the audited relation.
    fn schema(&self) -> CfdResult<Schema>;

    /// Live row count.
    fn len(&self) -> usize;

    /// True when the relation holds no live rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current values of one row (`None` when the row is not live).
    fn row(&self, id: RowId) -> Option<Vec<Value>>;

    /// Overwrite one cell, keeping every derived structure (cached
    /// snapshots, shard state) in lock-step; returns the previous value.
    fn set_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value>;

    /// Detect current violations of `cfds` (the loop normalizes the
    /// report itself).
    fn detect(&mut self, cfds: &[Cfd]) -> CfdResult<ViolationReport>;

    /// Distinct values with live occurrence counts for each column in
    /// `cols` — the raw material of the active-domain pool.
    /// Implementations count over dictionary codes (one add per row, one
    /// decode per *distinct* value), not over cloned row values.
    fn value_counts(&mut self, cols: &[usize]) -> CfdResult<Vec<(usize, ColumnCounts)>>;
}

/// Run the detect→resolve loop of [8] against `store` — see the module
/// docs. The change sequence is deterministic given the store's data:
/// reports are normalized before resolution, and candidate orderings are
/// value-sorted.
pub fn repair_rounds<S: RepairStore>(
    store: &mut S,
    cfds: &[Cfd],
    cfg: &RepairConfig,
) -> CfdResult<RepairResult> {
    let schema = store.schema()?;
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(&schema))
        .collect::<CfdResult<_>>()?;
    // The domain pool only ever serves constant-patterned LHS breaks, so
    // it is scoped to the union of the LHS columns (all inside the
    // detection projection — the store's dictionaries cover them).
    let lhs_cols: Vec<usize> = {
        let mut v: Vec<usize> = bound
            .iter()
            .flat_map(|b| b.lhs_cols.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut eq = EqClasses::new();
    let mut changes: Vec<CellChange> = Vec::new();
    let mut iterations = 0usize;

    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        let round_span = obs::trace::span("repair.round");
        round_span.attr("round", iter);
        // Normalized order makes the whole repair deterministic (hash maps
        // inside detection would otherwise reorder resolutions), and keeps
        // the resolution sequence independent of snapshot row order — the
        // patched snapshot swap-removes, a fresh encode scans arena order,
        // and the cluster merge walks shards in partial-arrival order.
        let report = store.detect(cfds)?.normalized();
        if report.is_empty() {
            break;
        }
        // Resolve time only — the detect above is timed by the engine's
        // own instrumentation (cached columnar scan or cluster exchange).
        let resolve_t0 = Instant::now();
        let changes_before = changes.len();
        let consts: Vec<_> = report
            .violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::SingleTuple { .. }))
            .cloned()
            .collect();
        // The domain pool only feeds constant-violation resolution, so a
        // round without constant violations (variable-only rule sets, or
        // every round once the constants drain) skips the counting — in
        // the cluster that is a whole cross-shard dictionary merge saved.
        let domains = if consts.is_empty() {
            HashMap::new()
        } else {
            active_domains(store, &lhs_cols)?
        };
        // Constant violations first (they establish pins); variable
        // violations are handled in the same iteration when the constants
        // are done or stuck — a few unresolvable constants must not starve
        // group resolution.
        let mut const_progress = false;
        for v in &consts {
            let ViolationKind::SingleTuple { row } = v.kind else {
                unreachable!("filtered")
            };
            const_progress |= resolve_constant(
                store,
                &bound,
                v.cfd_idx,
                row,
                &mut eq,
                cfg,
                &domains,
                iter,
                &mut changes,
            )?;
        }
        let mut var_progress = false;
        if consts.is_empty() || !const_progress {
            for v in &report.violations {
                let ViolationKind::MultiTuple { key: _, rows } = &v.kind else {
                    continue;
                };
                var_progress |= resolve_variable(
                    store,
                    &bound,
                    v.cfd_idx,
                    rows,
                    &mut eq,
                    cfg,
                    iter,
                    &mut changes,
                )?;
            }
        }
        let o = repair_obs();
        o.resolve_ns.record(resolve_t0.elapsed().as_nanos() as u64);
        o.changes_per_round
            .record((changes.len() - changes_before) as u64);
        round_span.attr("changes", changes.len() - changes_before);
        if !const_progress && !var_progress {
            break; // defensive: avoid spinning without effect
        }
    }

    let residual = store.detect(cfds)?;
    let o = repair_obs();
    o.runs.inc();
    o.rounds.add(iterations as u64);
    o.changes.add(changes.len() as u64);
    let total_cost = changes.iter().map(|c| c.cost).sum();
    Ok(RepairResult {
        changes,
        iterations,
        total_cost,
        residual,
    })
}

/// Distinct values per column (the "active domain" candidate pool), off
/// the store's dictionary statistics — no per-round row walk, no per-cell
/// `Value` hashing.
///
/// Two filters keep repair artifacts and noise out of the pool: fresh
/// sentinels from earlier LHS breaks are excluded (they are not domain
/// values), and values must reach a small support threshold — typo-corrupt
/// cells are almost always unique, and without the threshold the
/// similarity term of the cost model would happily "fix" an LHS by
/// assigning a nearby typo variant.
fn active_domains<S: RepairStore>(
    store: &mut S,
    cols: &[usize],
) -> CfdResult<HashMap<usize, Vec<Value>>> {
    let min_support = 2.max(store.len() / 1000) as u64;
    Ok(store
        .value_counts(cols)?
        .into_iter()
        .map(|(c, counted)| {
            let mut v: Vec<Value> = counted
                .into_iter()
                .filter(|(v, n)| *n >= min_support && !v.is_null() && !is_fresh(v))
                .map(|(v, _)| v)
                .collect();
            v.sort_by(|a, b| a.total_cmp(b));
            (c, v)
        })
        .collect())
}

fn change_cost(cfg: &RepairConfig, row: RowId, col: usize, old: &Value, new: &Value) -> f64 {
    if cfg.use_similarity {
        cfg.weights.change_cost(row, col, old, new)
    } else {
        cfg.weights.weight(row, col) * crate::cost::uniform_cost(old, new)
    }
}

/// Would `row_vals` single-violate any constant CFD?
fn const_violates(bound: &[BoundCfd], row_vals: &[Value]) -> bool {
    bound.iter().any(|b| b.single_tuple_violation(row_vals))
}

#[allow(clippy::too_many_arguments)]
fn resolve_constant<S: RepairStore>(
    store: &mut S,
    bound: &[BoundCfd],
    cfd_idx: usize,
    row: RowId,
    eq: &mut EqClasses,
    cfg: &RepairConfig,
    domains: &HashMap<usize, Vec<Value>>,
    iter: usize,
    changes: &mut Vec<CellChange>,
) -> CfdResult<bool> {
    let b = &bound[cfd_idx];
    let Some(current) = store.row(row) else {
        return Ok(false); // row vanished
    };
    if !b.single_tuple_violation(&current) {
        return Ok(false); // already resolved by an earlier change
    }
    let a = b
        .cfd
        .rhs_pat
        .constant()
        .expect("constant CFD has constant RHS")
        .clone();
    let rhs_cell = CellRef::new(row, b.rhs_col);

    // Candidate 1: assign the RHS constant (unless pinned elsewhere or it
    // would trip another constant rule).
    let mut best: Option<(f64, usize, Value, ChangeReason)> = None;
    let rhs_pin = eq.pinned(rhs_cell);
    let rhs_allowed = rhs_pin.as_ref().is_none_or(|p| p.strong_eq(&a));
    if rhs_allowed {
        let mut sim = current.clone();
        sim[b.rhs_col] = a.clone();
        if !const_violates(bound, &sim) {
            let cost = change_cost(cfg, row, b.rhs_col, &current[b.rhs_col], &a);
            best = Some((
                cost,
                b.rhs_col,
                a.clone(),
                ChangeReason::ConstantRhs { cfd_idx },
            ));
        }
    }

    // Candidates 2..k: break a constant-patterned LHS cell. Candidate
    // costs (simulate + cost model, no store access) fan out over the
    // morsel pool; the reduce below walks pool order, so the chosen
    // candidate is exactly the serial loop's.
    for (j, pat) in b.cfd.lhs_pat.iter().enumerate() {
        let Pattern::Const(c) = pat else { continue };
        let col = b.lhs_cols[j];
        if eq.pinned(CellRef::new(row, col)).is_some() {
            continue; // pinned LHS cells are not breakable
        }
        let Some(pool) = domains.get(&col) else {
            continue;
        };
        let costs = candidate_costs(cfg, pool.len(), |i| {
            let v = &pool[i];
            if v.strong_eq(c) || v.strong_eq(&current[col]) {
                return None;
            }
            let mut sim = current.clone();
            sim[col] = v.clone();
            if const_violates(bound, &sim) {
                return None;
            }
            Some(change_cost(cfg, row, col, &current[col], v))
        });
        for (v, cost) in pool.iter().zip(costs) {
            let Some(cost) = cost else { continue };
            if best.as_ref().is_none_or(|(bc, ..)| cost < *bc) {
                best = Some((
                    cost,
                    col,
                    v.clone(),
                    ChangeReason::ConstantLhsBreak { cfd_idx },
                ));
            }
        }
    }

    // Last resort chain: force the RHS constant even if simulation
    // complains (a later iteration deals with the fallout); when the RHS is
    // pinned to something else, first try a fresh-sentinel LHS break, and
    // if every constant-patterned LHS cell is pinned too, overwrite the
    // stale RHS pin — a pin recorded for a pattern that no longer matches
    // must not deadlock the repair.
    let (cost, col, new_val, reason) = match best {
        Some(t) => t,
        None => {
            let unpinned_lhs = b.cfd.lhs_pat.iter().enumerate().find(|(j, p)| {
                !p.is_wild() && eq.pinned(CellRef::new(row, b.lhs_cols[*j])).is_none()
            });
            match (rhs_allowed, unpinned_lhs) {
                (true, _) | (false, None) => {
                    let cost = change_cost(cfg, row, b.rhs_col, &current[b.rhs_col], &a);
                    (
                        cost,
                        b.rhs_col,
                        a.clone(),
                        ChangeReason::ConstantRhs { cfd_idx },
                    )
                }
                (false, Some((j, _))) => {
                    let col = b.lhs_cols[j];
                    let fresh = fresh_value(row, col);
                    (
                        cfg.weights.weight(row, col),
                        col,
                        fresh,
                        ChangeReason::LhsBreak { cfd_idx },
                    )
                }
            }
        }
    };

    let old = store.set_cell(row, col, new_val.clone())?;
    // Constant assignments pin the cell's *class* ([8]: everything that
    // must equal this cell inherits the forced value). Fresh sentinels are
    // detached first — an LHS break severs the equality links through the
    // broken cell, and pinning without detaching would poison every cell
    // ever merged with it.
    match reason {
        ChangeReason::ConstantRhs { .. } => {
            eq.repin(CellRef::new(row, col), new_val.clone());
        }
        ChangeReason::LhsBreak { .. } => {
            let cell = CellRef::new(row, col);
            eq.detach(cell);
            eq.repin(cell, new_val.clone());
        }
        _ => {}
    }
    changes.push(CellChange {
        row,
        col,
        old,
        new: new_val,
        cost,
        reason,
        iteration: iter,
    });
    Ok(true)
}

#[allow(clippy::too_many_arguments)]
fn resolve_variable<S: RepairStore>(
    store: &mut S,
    bound: &[BoundCfd],
    cfd_idx: usize,
    members: &[(RowId, Value)],
    eq: &mut EqClasses,
    cfg: &RepairConfig,
    iter: usize,
    changes: &mut Vec<CellChange>,
) -> CfdResult<bool> {
    let b = &bound[cfd_idx];
    // Re-verify the group against current data.
    let mut current: Vec<(RowId, Value)> = Vec::with_capacity(members.len());
    let mut key: Option<Vec<Value>> = None;
    for (row, _) in members {
        let Some(vals) = store.row(*row) else {
            continue;
        };
        if !b.lhs_matches(&vals) {
            continue;
        }
        let k = b.lhs_key(&vals);
        match &key {
            None => key = Some(k),
            Some(existing) if *existing == k => {}
            Some(_) => continue, // moved to another group since detection
        }
        let rhs = vals[b.rhs_col].clone();
        if rhs.is_null() {
            continue;
        }
        current.push((*row, rhs));
    }
    if !detect::native::group_violates(&current) {
        return Ok(false);
    }

    // Merge the group's RHS cells into one equivalence class ([8]): cells
    // linked through *any* CFD's group must take one value — for the
    // cluster these are the **global** classes built over the exchange's
    // merged per-group partials, so members on different shards still
    // land in one class. Merges that would join conflicting pinned
    // classes are refused; those members resolve via LHS breaks below.
    let cells: Vec<CellRef> = current
        .iter()
        .map(|(r, _)| CellRef::new(*r, b.rhs_col))
        .collect();
    for w in cells.windows(2) {
        let _ = eq.merge(w[0], w[1]);
    }
    let pins: Vec<Option<Value>> = cells.iter().map(|c| eq.pinned(*c)).collect();

    // Candidate values come from the whole class (so that groups of other
    // CFDs sharing these cells pull toward one global choice), with the
    // current group's values always included. Fresh sentinels are never
    // targets: they mean "unknown, flagged for review".
    let class_values: Vec<(RowId, Value)> = {
        let mut vals: Vec<(RowId, Value)> = eq
            .members(cells[0])
            .into_iter()
            .filter(|c| c.col == b.rhs_col)
            .filter_map(|c| store.row(c.row).map(|r| (c.row, r[b.rhs_col].clone())))
            .filter(|(_, v)| !v.is_null())
            .collect();
        vals.extend(current.iter().cloned());
        vals.sort_by_key(|(r, _)| *r);
        vals.dedup_by_key(|(r, _)| *r);
        vals
    };

    let usable_pins: Vec<&Value> = pins.iter().flatten().filter(|p| !is_fresh(p)).collect();
    let target = if !usable_pins.is_empty() {
        // A pinned constant wins (majority vote among non-sentinel pins).
        let mut votes: HashMap<&Value, usize> = HashMap::new();
        for p in &usable_pins {
            *votes.entry(p).or_default() += 1;
        }
        let mut vote_list: Vec<(&Value, usize)> = votes.into_iter().collect();
        vote_list.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.render().cmp(&b.0.render())));
        vote_list[0].0.clone()
    } else {
        let mut candidates: Vec<&Value> = class_values
            .iter()
            .map(|(_, v)| v)
            .filter(|v| !is_fresh(v))
            .collect();
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup_by(|a, b| a.strong_eq(b));
        // Per-candidate class cost is pure (no store access), so the scan
        // fans out over the morsel pool; the serial reduce preserves the
        // sorted-candidate first-seen-minimum tie-break exactly.
        let totals = candidate_costs(cfg, candidates.len(), |i| {
            Some(
                class_values
                    .iter()
                    .map(|(r, v)| change_cost(cfg, *r, b.rhs_col, v, candidates[i]))
                    .sum(),
            )
        });
        let mut best: Option<(f64, Value)> = None;
        for (cand, total) in candidates.iter().zip(totals) {
            let total = total.expect("every candidate cost computed");
            if best.as_ref().is_none_or(|(bc, _)| total < *bc) {
                best = Some((total, (*cand).clone()));
            }
        }
        match best {
            Some((_, t)) => t,
            // Every usable value is a sentinel: keep the smallest as the
            // nominal target; incompatible members LHS-break out below.
            None => {
                let mut vals: Vec<&Value> = current.iter().map(|(_, v)| v).collect();
                vals.sort_by_key(|a| a.render());
                (*vals.first().expect("group is nonempty")).clone()
            }
        }
    };

    let mut progressed = false;
    for ((row, val), pin) in current.iter().zip(pins) {
        if val.strong_eq(&target) {
            continue;
        }
        // A pin incompatible with the target means this member cannot take
        // the class value — it leaves the group via an LHS break instead.
        // (Triggering a constant rule is fine: the next iteration's
        // constant pass cascades the fix, and pins bound the recursion.)
        let compatible = pin.as_ref().is_none_or(|p| p.strong_eq(&target));
        if compatible {
            let cost = change_cost(cfg, *row, b.rhs_col, val, &target);
            let old = store.set_cell(*row, b.rhs_col, target.clone())?;
            changes.push(CellChange {
                row: *row,
                col: b.rhs_col,
                old,
                new: target.clone(),
                cost,
                reason: ChangeReason::VariableMerge { cfd_idx },
                iteration: iter,
            });
            progressed = true;
        } else {
            // Leave the group: break the LHS key with a fresh sentinel on
            // the first unpinned LHS cell.
            let Some((j, _)) = b
                .lhs_cols
                .iter()
                .enumerate()
                .find(|(_, &col)| eq.pinned(CellRef::new(*row, col)).is_none())
            else {
                continue; // fully pinned: residual, reported honestly
            };
            let col = b.lhs_cols[j];
            let fresh = fresh_value(*row, col);
            let cost = cfg.weights.weight(*row, col);
            let old = store.set_cell(*row, col, fresh.clone())?;
            // Sentinel cells are detached from their class (the break
            // severs the equality links through this cell) and pinned so
            // later merges cannot overwrite "unknown, needs review".
            let cell = CellRef::new(*row, col);
            eq.detach(cell);
            eq.repin(cell, fresh.clone());
            changes.push(CellChange {
                row: *row,
                col,
                old,
                new: fresh,
                cost,
                reason: ChangeReason::LhsBreak { cfd_idx },
                iteration: iter,
            });
            progressed = true;
        }
    }
    Ok(progressed)
}

/// Fresh sentinel value for LHS breaks — never collides with real data and
/// flags the cell for human review (the demo's "pop-up" would surface it).
pub fn fresh_value(row: RowId, col: usize) -> Value {
    Value::str(format!("\u{22a5}fix{}c{}", row.0, col))
}

/// Is this value a fresh sentinel produced by [`fresh_value`]?
pub fn is_fresh(v: &Value) -> bool {
    matches!(v, Value::Str(s) if s.starts_with('\u{22a5}'))
}
