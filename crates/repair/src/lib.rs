//! # repair — the Semandaq Data Cleanser
//!
//! Cost-based CFD repair by attribute-value modification (Cong, Fan,
//! Geerts, Jia, Ma — VLDB 2007, the paper's reference [8]):
//!
//! * [`cost`] — `w(t,A) · DL(v, v')/max(|v|,|v'|)` change costs;
//! * [`eqclass`] — union-find equivalence classes over cells with pins;
//! * [`rounds`] — the engine-agnostic detect → resolve round loop over a
//!   [`RepairStore`] (point reads, lock-step cell writes, detection,
//!   dictionary-backed domain statistics) — shared by the single-node
//!   batch repair and the sharded cluster's cross-shard repair;
//! * [`batch::batch_repair`] — BatchRepair: the round loop bound to one
//!   `minidb` relation with a cached columnar snapshot, mixing
//!   constant-rule pinning, LHS breaking, and group merging;
//! * [`incremental::incremental_repair`] — IncRepair for deltas against a
//!   clean database (the Data Monitor's repair engine);
//! * [`alternatives`] — ranked candidate fixes per cell (Fig 5's pop-up);
//! * [`quality`] — precision/recall scoring against ground truth (E5).

#![warn(missing_docs)]

pub mod alternatives;
pub mod batch;
pub mod cost;
pub mod eqclass;
pub mod incremental;
pub mod quality;
pub mod rounds;

pub use alternatives::{alternatives_for, Alternative};
pub use batch::{
    batch_repair, batch_repair_with_cache, repair_and_verify, CellChange, ChangeReason,
    RepairConfig, RepairResult,
};
pub use cost::{damerau_levenshtein, normalized_distance, WeightModel};
pub use eqclass::{CellRef, EqClasses};
pub use incremental::incremental_repair;
pub use quality::{score_repair, RepairQuality};
pub use rounds::{repair_rounds, ColumnCounts, RepairStore};
