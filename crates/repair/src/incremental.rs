//! IncRepair ([8] §6): repairing a delta against an already-clean database.
//!
//! When the bulk of the data is known clean and a batch of new/updated
//! tuples arrives (the Data Monitor scenario), only the delta needs
//! repairing — and the clean data acts as ground truth: a delta tuple that
//! disagrees with its LHS-group adopts the group's established RHS value.

use std::collections::HashMap;

use cfd::{BoundCfd, Cfd, CfdResult, Pattern};
use minidb::{Database, DbError, RowId, Value};

use crate::batch::{CellChange, ChangeReason, RepairConfig, RepairResult};
use crate::cost::normalized_distance;

fn db_err(e: DbError) -> cfd::CfdError {
    cfd::CfdError::Malformed(format!("incremental repair failed: {e}"))
}

/// Per-variable-CFD consensus index over the clean part of the data:
/// LHS key → established RHS value.
struct Consensus {
    map: HashMap<Vec<Value>, Value>,
}

/// Repair only the rows in `delta`, assuming every other row satisfies
/// `cfds`. Processes delta rows in order; earlier repaired rows join the
/// consensus for later ones.
pub fn incremental_repair(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    delta: &[RowId],
    cfg: &RepairConfig,
) -> CfdResult<RepairResult> {
    let schema = db.table(relation).map_err(db_err)?.schema().clone();
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(&schema))
        .collect::<CfdResult<_>>()?;
    let delta_set: std::collections::HashSet<RowId> = delta.iter().copied().collect();

    // Build consensus indexes from the clean rows.
    let mut consensus: Vec<Option<Consensus>> = Vec::with_capacity(bound.len());
    {
        let table = db.table(relation).map_err(db_err)?;
        for b in &bound {
            if !b.cfd.rhs_pat.is_wild() {
                consensus.push(None);
                continue;
            }
            let mut map: HashMap<Vec<Value>, Value> = HashMap::new();
            for (id, row) in table.iter() {
                if delta_set.contains(&id) || !b.lhs_matches(row) {
                    continue;
                }
                let rhs = &row[b.rhs_col];
                if rhs.is_null() {
                    continue;
                }
                map.insert(b.lhs_key(row), rhs.clone());
            }
            consensus.push(Some(Consensus { map }));
        }
    }

    let mut changes: Vec<CellChange> = Vec::new();
    let mut iterations = 0usize;
    for &row in delta {
        // Per-tuple fixpoint: constants and group consensus interact.
        for round in 0..8 {
            iterations = iterations.max(round + 1);
            let mut changed = false;
            for (cfd_idx, b) in bound.iter().enumerate() {
                let current: Vec<Value> = match db.table(relation).map_err(db_err)?.get(row) {
                    Ok(r) => r.to_vec(),
                    Err(_) => break,
                };
                if let Some(a) = b.cfd.rhs_pat.constant() {
                    if b.single_tuple_violation(&current) {
                        let old = db
                            .update_cell(relation, row, b.rhs_col, a.clone())
                            .map_err(db_err)?;
                        let cost =
                            cfg.weights.weight(row, b.rhs_col) * normalized_distance(&old, a);
                        changes.push(CellChange {
                            row,
                            col: b.rhs_col,
                            old,
                            new: a.clone(),
                            cost,
                            reason: ChangeReason::ConstantRhs { cfd_idx },
                            iteration: round,
                        });
                        changed = true;
                    }
                    continue;
                }
                // Variable CFD: adopt the consensus value of the group.
                if !b.lhs_matches(&current) {
                    continue;
                }
                let Some(Some(cons)) = consensus.get(cfd_idx) else {
                    continue;
                };
                let key = b.lhs_key(&current);
                if let Some(v) = cons.map.get(&key) {
                    let mine = &current[b.rhs_col];
                    if !mine.is_null() && !mine.strong_eq(v) {
                        // Check the consensus value does not trip a constant
                        // rule for this tuple; if it does, the constant wins
                        // next round.
                        let mut sim = current.clone();
                        sim[b.rhs_col] = v.clone();
                        if bound.iter().any(|cb| cb.single_tuple_violation(&sim)) {
                            continue;
                        }
                        let old = db
                            .update_cell(relation, row, b.rhs_col, v.clone())
                            .map_err(db_err)?;
                        let cost =
                            cfg.weights.weight(row, b.rhs_col) * normalized_distance(&old, v);
                        changes.push(CellChange {
                            row,
                            col: b.rhs_col,
                            old,
                            new: v.clone(),
                            cost,
                            reason: ChangeReason::VariableMerge { cfd_idx },
                            iteration: round,
                        });
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // The (repaired) row now joins the consensus for subsequent rows.
        let final_row: Vec<Value> = db
            .table(relation)
            .map_err(db_err)?
            .get(row)
            .map_err(db_err)?
            .to_vec();
        for (cfd_idx, b) in bound.iter().enumerate() {
            if let Some(Some(cons)) = consensus.get_mut(cfd_idx).map(Option::as_mut) {
                if b.lhs_matches(&final_row) && !final_row[b.rhs_col].is_null() {
                    cons.map
                        .entry(b.lhs_key(&final_row))
                        .or_insert_with(|| final_row[b.rhs_col].clone());
                }
            }
        }
    }

    // Honest residual: re-detect over the whole table (delta rows might
    // still disagree with each other on keys absent from the clean part).
    let residual = detect::detect_native(db.table(relation).map_err(db_err)?, cfds)?;
    let total_cost = changes.iter().map(|c| c.cost).sum();
    Ok(RepairResult {
        changes,
        iterations,
        total_cost,
        residual,
    })
}

/// Convenience used by the Data Monitor: consensus-checking uses the LHS
/// pattern of `b`, which must be constant-free or matched (helper exposed
/// for tests).
pub fn is_constant_pattern(p: &Pattern) -> bool {
    !p.is_wild()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{dirty_customers, generate_customers, CustomerConfig};
    use detect::detect_native;

    #[test]
    fn dirty_inserts_into_clean_db_are_repaired() {
        // Start from a clean database…
        let clean = generate_customers(&CustomerConfig {
            rows: 200,
            ..CustomerConfig::default()
        });
        let mut db = Database::new();
        db.register_table(clean.clone());
        let cfds = datagen::canonical_cfds();
        // …insert dirty copies of existing rows (wrong CITY for their zip).
        let donor: Vec<Value> = clean.iter().next().unwrap().1.to_vec();
        let mut dirty_row = donor.clone();
        dirty_row[2] = Value::str("WRONGCITY");
        let id = db.insert_row("customer", dirty_row).unwrap();
        let r = incremental_repair(&mut db, "customer", &cfds, &[id], &RepairConfig::default())
            .unwrap();
        assert!(r.residual.is_empty(), "{:?}", r.residual.violations);
        // The delta tuple adopted the group's city.
        let fixed = db.table("customer").unwrap().get(id).unwrap();
        assert_eq!(fixed[2], donor[2]);
    }

    #[test]
    fn constant_violations_in_delta_are_fixed() {
        let clean = generate_customers(&CustomerConfig {
            rows: 100,
            ..CustomerConfig::default()
        });
        let mut db = Database::new();
        db.register_table(clean.clone());
        let cfds = datagen::canonical_cfds();
        let donor: Vec<Value> = clean.iter().next().unwrap().1.to_vec();
        // Break the CC → CNT binding.
        let mut dirty_row = donor.clone();
        dirty_row[1] = Value::str("XX"); // CNT
        let id = db.insert_row("customer", dirty_row).unwrap();
        let r = incremental_repair(&mut db, "customer", &cfds, &[id], &RepairConfig::default())
            .unwrap();
        assert!(r.residual.is_empty(), "{:?}", r.residual.violations);
        let fixed = db.table("customer").unwrap().get(id).unwrap();
        assert_eq!(fixed[1], donor[1]);
    }

    #[test]
    fn delta_rows_agree_with_each_other_via_rolling_consensus() {
        let clean = generate_customers(&CustomerConfig {
            rows: 100,
            ..CustomerConfig::default()
        });
        let mut db = Database::new();
        db.register_table(clean.clone());
        let cfds = datagen::canonical_cfds();
        // Two inserts in a brand-new group (zip unseen in clean data) that
        // disagree on CITY; the first repaired row sets the consensus.
        let mk = |city: &str| {
            vec![
                Value::str("x"),
                Value::str("UK"),
                Value::str(city),
                Value::str("ZZ9 9ZZ"),
                Value::str("High St"),
                Value::str("44"),
                Value::str("4410"),
            ]
        };
        let id1 = db.insert_row("customer", mk("EDI")).unwrap();
        let id2 = db.insert_row("customer", mk("LDN")).unwrap();
        let r = incremental_repair(
            &mut db,
            "customer",
            &cfds,
            &[id1, id2],
            &RepairConfig::default(),
        )
        .unwrap();
        assert!(r.residual.is_empty(), "{:?}", r.residual.violations);
        let t = db.table("customer").unwrap();
        assert_eq!(t.get(id1).unwrap()[2], t.get(id2).unwrap()[2]);
    }

    #[test]
    fn clean_delta_is_untouched() {
        let d = dirty_customers(100, 0.0, 9);
        let mut db = d.db.clone();
        let ids: Vec<RowId> = db.table("customer").unwrap().row_ids();
        let delta = vec![ids[0], ids[1]];
        let r = incremental_repair(
            &mut db,
            "customer",
            &d.cfds,
            &delta,
            &RepairConfig::default(),
        )
        .unwrap();
        assert!(r.changes.is_empty());
        assert!(detect_native(db.table("customer").unwrap(), &d.cfds)
            .unwrap()
            .is_empty());
    }
}
