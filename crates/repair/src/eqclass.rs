//! Equivalence classes over cells (union-find), the core data structure of
//! the repair algorithm of [8]: cells that must end up equal (because a
//! variable CFD links them) are merged into one class; a class may be
//! *pinned* to a constant when a constant CFD forces its value.

use std::collections::HashMap;

use minidb::{RowId, Value};

/// A cell coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellRef {
    /// Row id.
    pub row: RowId,
    /// Column index.
    pub col: usize,
}

impl CellRef {
    /// Construct a cell reference.
    pub fn new(row: RowId, col: usize) -> CellRef {
        CellRef { row, col }
    }
}

/// Union-find over cells with per-class pin state.
#[derive(Debug, Clone, Default)]
pub struct EqClasses {
    ids: HashMap<CellRef, usize>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    pin: Vec<Option<Value>>,
}

/// Result of a merge or pin attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum PinOutcome {
    /// Applied cleanly.
    Ok,
    /// The class was already pinned to a conflicting constant; the existing
    /// pin is kept and returned.
    Conflict(Value),
}

impl EqClasses {
    /// Empty structure.
    pub fn new() -> EqClasses {
        EqClasses::default()
    }

    fn id_of(&mut self, cell: CellRef) -> usize {
        if let Some(&i) = self.ids.get(&cell) {
            return i;
        }
        let i = self.parent.len();
        self.ids.insert(cell, i);
        self.parent.push(i);
        self.rank.push(0);
        self.pin.push(None);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]]; // path halving
            i = self.parent[i];
        }
        i
    }

    /// Representative of the cell's class (cells start in singletons).
    pub fn root(&mut self, cell: CellRef) -> usize {
        let i = self.id_of(cell);
        self.find(i)
    }

    /// Are two cells in the same class?
    pub fn same(&mut self, a: CellRef, b: CellRef) -> bool {
        self.root(a) == self.root(b)
    }

    /// Merge the classes of `a` and `b`. If both are pinned to different
    /// constants, the merge is **refused** and `Conflict` returned (the
    /// caller must resolve by changing an LHS cell instead).
    pub fn merge(&mut self, a: CellRef, b: CellRef) -> PinOutcome {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra == rb {
            return PinOutcome::Ok;
        }
        match (&self.pin[ra], &self.pin[rb]) {
            (Some(x), Some(y)) if !x.strong_eq(y) => {
                return PinOutcome::Conflict(x.clone());
            }
            _ => {}
        }
        let pin = self.pin[ra].clone().or_else(|| self.pin[rb].clone());
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.pin[hi] = pin;
        PinOutcome::Ok
    }

    /// Pin a cell's class to a constant.
    pub fn pin(&mut self, cell: CellRef, value: Value) -> PinOutcome {
        let r = self.root(cell);
        match &self.pin[r] {
            Some(x) if !x.strong_eq(&value) => PinOutcome::Conflict(x.clone()),
            _ => {
                self.pin[r] = Some(value);
                PinOutcome::Ok
            }
        }
    }

    /// The pinned constant of the cell's class, if any.
    pub fn pinned(&mut self, cell: CellRef) -> Option<Value> {
        let r = self.root(cell);
        self.pin[r].clone()
    }

    /// Overwrite the class pin unconditionally. Used when a previously
    /// recorded pin has gone stale (the rule that forced it no longer
    /// applies after other repairs changed the tuple's LHS).
    pub fn repin(&mut self, cell: CellRef, value: Value) {
        let r = self.root(cell);
        self.pin[r] = Some(value);
    }

    /// Detach `cell` into a fresh singleton class, leaving its old class
    /// (and that class's pin) untouched. An LHS break separates a tuple
    /// from its group, so equality links through the broken cell no longer
    /// hold — without detaching, pinning the sentinel would poison every
    /// cell that was ever merged with this one.
    pub fn detach(&mut self, cell: CellRef) {
        let i = self.parent.len();
        self.parent.push(i);
        self.rank.push(0);
        self.pin.push(None);
        self.ids.insert(cell, i);
    }

    /// Number of registered cells.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// No cells registered yet?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// All registered cells in the same class as `cell` (including itself).
    pub fn members(&mut self, cell: CellRef) -> Vec<CellRef> {
        let root = self.root(cell);
        let cells: Vec<CellRef> = self.ids.keys().copied().collect();
        let mut out: Vec<CellRef> = cells
            .into_iter()
            .filter(|c| self.root(*c) == root)
            .collect();
        out.sort();
        out
    }

    /// Group all registered cells by class root.
    pub fn classes(&mut self) -> HashMap<usize, Vec<CellRef>> {
        let cells: Vec<CellRef> = self.ids.keys().copied().collect();
        let mut out: HashMap<usize, Vec<CellRef>> = HashMap::new();
        for c in cells {
            let r = self.root(c);
            out.entry(r).or_default().push(c);
        }
        for v in out.values_mut() {
            v.sort();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(r: u64, col: usize) -> CellRef {
        CellRef::new(RowId(r), col)
    }

    #[test]
    fn singletons_until_merged() {
        let mut eq = EqClasses::new();
        assert!(!eq.same(c(0, 1), c(0, 2)));
        assert_eq!(eq.merge(c(0, 1), c(0, 2)), PinOutcome::Ok);
        assert!(eq.same(c(0, 1), c(0, 2)));
    }

    #[test]
    fn pins_propagate_through_merges() {
        let mut eq = EqClasses::new();
        eq.pin(c(1, 0), Value::str("UK"));
        eq.merge(c(1, 0), c(2, 0));
        assert_eq!(eq.pinned(c(2, 0)), Some(Value::str("UK")));
    }

    #[test]
    fn conflicting_pins_refuse_merge() {
        let mut eq = EqClasses::new();
        eq.pin(c(1, 0), Value::str("UK"));
        eq.pin(c(2, 0), Value::str("US"));
        let out = eq.merge(c(1, 0), c(2, 0));
        assert!(matches!(out, PinOutcome::Conflict(_)));
        assert!(
            !eq.same(c(1, 0), c(2, 0)),
            "conflicting merge must not happen"
        );
    }

    #[test]
    fn pin_conflict_on_same_class() {
        let mut eq = EqClasses::new();
        eq.pin(c(1, 0), Value::str("UK"));
        assert_eq!(eq.pin(c(1, 0), Value::str("UK")), PinOutcome::Ok);
        assert!(matches!(
            eq.pin(c(1, 0), Value::str("US")),
            PinOutcome::Conflict(_)
        ));
    }

    #[test]
    fn classes_enumerates_groups() {
        let mut eq = EqClasses::new();
        eq.merge(c(0, 0), c(1, 0));
        eq.merge(c(1, 0), c(2, 0));
        eq.root(c(9, 9)); // singleton
        let classes = eq.classes();
        assert_eq!(classes.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = classes.values().map(Vec::len).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 3]);
    }

    #[test]
    fn transitive_merges_keep_single_root() {
        let mut eq = EqClasses::new();
        for i in 0..50 {
            eq.merge(c(i, 0), c(i + 1, 0));
        }
        let r = eq.root(c(0, 0));
        for i in 0..=50 {
            assert_eq!(eq.root(c(i, 0)), r);
        }
    }
}
