//! BatchRepair: the cost-greedy, equivalence-class repair of [8], bound to
//! a single-node `minidb` relation.
//!
//! Each iteration detects the current violations and resolves them by
//! attribute-value modifications:
//!
//! * **constant CFDs** — either assign the RHS constant (pinning the cell's
//!   class) or, when cheaper / forced by a conflicting pin, change a
//!   constant-patterned LHS cell so the pattern no longer applies;
//! * **variable CFDs** — merge the RHS cells of the violating group into
//!   one equivalence class and assign the weighted-cheapest target value;
//!   members whose class is pinned to a conflicting constant leave the
//!   group via an LHS break instead.
//!
//! The detect→resolve loop itself lives in [`crate::rounds`] (shared with
//! the sharded cluster's repair); this module supplies its single-node
//! [`RepairStore`]: detection over a cached, epoch-versioned columnar
//! snapshot, cell writes that patch the snapshot in lock-step, and
//! active-domain statistics counted straight over the snapshot's
//! dictionary codes — after the first encode, no repair phase walks the
//! heap table again. Reports are `normalized()`, so the resolution order —
//! and therefore the repair output — is identical to the historical
//! `detect_native`-per-round implementation.

pub use crate::rounds::{
    fresh_value, is_fresh, CellChange, ChangeReason, RepairConfig, RepairResult,
};

use cfd::{Cfd, CfdResult};
use colstore::{detect_cached, SnapshotCache};
use detect::ViolationReport;
use minidb::{Database, DbError, RowId, Schema, Table, Value};

use crate::rounds::{repair_rounds, ColumnCounts, RepairStore};

fn db_err(e: DbError) -> cfd::CfdError {
    cfd::CfdError::Malformed(format!("repair failed: {e}"))
}

/// The single-node [`RepairStore`]: one `minidb` relation plus the
/// caller's snapshot cache. Every cell write patches the cached snapshot
/// (`note_set_cell`), every detect rides it (`detect_cached`), and the
/// domain pool is counted over its dictionary codes — the store does zero
/// full-table scans after the initial encode.
struct TableStore<'a> {
    db: &'a mut Database,
    relation: &'a str,
    cache: &'a mut SnapshotCache,
}

impl TableStore<'_> {
    fn table(&self) -> CfdResult<&Table> {
        self.db.table(self.relation).map_err(db_err)
    }
}

impl RepairStore for TableStore<'_> {
    fn schema(&self) -> CfdResult<Schema> {
        Ok(self.table()?.schema().clone())
    }

    fn len(&self) -> usize {
        self.db.table(self.relation).map(Table::len).unwrap_or(0)
    }

    fn row(&self, id: RowId) -> Option<Vec<Value>> {
        self.db
            .table(self.relation)
            .ok()?
            .get(id)
            .ok()
            .map(<[Value]>::to_vec)
    }

    fn set_cell(&mut self, id: RowId, col: usize, value: Value) -> CfdResult<Value> {
        let old = self
            .db
            .update_cell(self.relation, id, col, value)
            .map_err(db_err)?;
        let table = self.db.table(self.relation).map_err(db_err)?;
        self.cache.note_set_cell(table, id, col);
        Ok(old)
    }

    fn detect(&mut self, cfds: &[Cfd]) -> CfdResult<ViolationReport> {
        let table = self.db.table(self.relation).map_err(db_err)?;
        detect_cached(self.cache, table, cfds)
    }

    fn value_counts(&mut self, cols: &[usize]) -> CfdResult<Vec<(usize, ColumnCounts)>> {
        // The loop detects before it pools domains, so the cache already
        // holds a snapshot covering the CFD columns (cols ⊆ that
        // projection) at the current epoch — this is a cache hit, never an
        // encode.
        let table = self.db.table(self.relation).map_err(db_err)?;
        let snap = self.cache.snapshot_projected(table, cols);
        Ok(cols
            .iter()
            .map(|&c| (c, snap.column(c).value_counts()))
            .collect())
    }
}

/// Run BatchRepair on `db.relation` under `cfds` with a private snapshot
/// cache (see [`batch_repair_with_cache`] to share one with a caller that
/// also detects over the relation, e.g. `QualityServer`).
pub fn batch_repair(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
) -> CfdResult<RepairResult> {
    let mut cache = SnapshotCache::new();
    batch_repair_with_cache(db, relation, cfds, cfg, &mut cache)
}

/// [`batch_repair`] against a caller-owned [`SnapshotCache`]: each round's
/// detection runs over the cached snapshot, patched cell-by-cell as the
/// resolvers edit the table — `detect_native` is off the main path. On
/// return the cache is synced to the repaired table, so a following
/// columnar detect pays zero encode work.
pub fn batch_repair_with_cache(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
    cache: &mut SnapshotCache,
) -> CfdResult<RepairResult> {
    db.table(relation).map_err(db_err)?; // fail early on a bad relation
    let mut store = TableStore {
        db,
        relation,
        cache,
    };
    repair_rounds(&mut store, cfds, cfg)
}

/// Convenience: repair and then verify over the repair-synced snapshot;
/// returns the result plus the post-repair violation total (violation
/// records: single rows + violating groups). The verification detect rides
/// the same cache the repair loop patched, so it pays zero encode work —
/// no fresh full-table rescan.
pub fn repair_and_verify(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
) -> CfdResult<(RepairResult, u64)> {
    let mut cache = SnapshotCache::new();
    let result = batch_repair_with_cache(db, relation, cfds, cfg, &mut cache)?;
    let report = detect_cached(&mut cache, db.table(relation).map_err(db_err)?, cfds)?;
    Ok((result, report.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dirty_customers;
    use detect::detect_native;

    #[test]
    fn repairs_dirty_customers_to_zero_violations() {
        let mut d = dirty_customers(300, 0.05, 77);
        let (result, remaining) =
            repair_and_verify(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert_eq!(remaining, 0, "residual: {:?}", result.residual.violations);
        assert!(result.residual.is_empty());
        assert!(!result.changes.is_empty());
    }

    #[test]
    fn clean_data_is_untouched() {
        let mut d = dirty_customers(200, 0.0, 5);
        let r = batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert!(r.changes.is_empty());
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn repair_is_deterministic() {
        let run = || {
            let mut d = dirty_customers(150, 0.06, 99);
            batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn repair_rounds_do_zero_extra_encodes() {
        // Every phase of a repair — the per-round detects, the domain
        // pooling, the final residual check and the verify — must ride the
        // one snapshot encoded up front; cell edits patch it in lock-step.
        let mut d = dirty_customers(400, 0.05, 88);
        let mut cache = SnapshotCache::new();
        detect_cached(&mut cache, d.db.table("customer").unwrap(), &d.cfds).unwrap();
        assert_eq!(cache.encodes(), 1, "warm-up detect pays the one encode");
        let r = batch_repair_with_cache(
            &mut d.db,
            "customer",
            &d.cfds,
            &RepairConfig::default(),
            &mut cache,
        )
        .unwrap();
        assert!(r.residual.is_empty());
        assert!(!r.changes.is_empty());
        assert_eq!(
            cache.encodes(),
            1,
            "repair rounds (incl. active-domain pooling) must not re-encode"
        );
        // The post-repair verify rides the synced cache too.
        let report = detect_cached(&mut cache, d.db.table("customer").unwrap(), &d.cfds).unwrap();
        assert!(report.is_empty());
        assert_eq!(cache.encodes(), 1, "verify is encode-free");
    }

    #[test]
    fn similarity_cost_prefers_typo_fixes() {
        // A UK group where one street has a one-char typo: the cheap target
        // is the majority (correct) spelling.
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute(
            "INSERT INTO customer VALUES \
             ('a','UK','EDI','EH4','Mayfield Rd','44','131'), \
             ('b','UK','EDI','EH4','Mayfield Rd','44','131'), \
             ('c','UK','EDI','EH4','Mayfeild Rd','44','131')",
        )
        .unwrap();
        let cfds = cfd::parse::parse_cfds("customer: [CNT='UK', ZIP=_] -> [STR=_]").unwrap();
        let r = batch_repair(&mut db, "customer", &cfds, &RepairConfig::default()).unwrap();
        assert!(r.residual.is_empty());
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.changes[0].new, Value::str("Mayfield Rd"));
        assert_eq!(r.changes[0].row, RowId(2));
    }

    #[test]
    fn constant_rule_pins_rhs_and_repairs() {
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute("INSERT INTO customer VALUES ('a','US','EDI','EH4','High St','44','131')")
            .unwrap();
        let cfds = cfd::parse::parse_cfds("customer: [CC='44'] -> [CNT='UK']").unwrap();
        let r = batch_repair(&mut db, "customer", &cfds, &RepairConfig::default()).unwrap();
        assert!(r.residual.is_empty());
        assert_eq!(r.changes.len(), 1);
        // Cheapest fix: CNT US → UK (distance 1/2) beats changing CC.
        assert_eq!(r.changes[0].new, Value::str("UK"));
        assert!(matches!(
            r.changes[0].reason,
            ChangeReason::ConstantRhs { .. }
        ));
    }

    #[test]
    fn conflicting_constant_rules_break_lhs() {
        // Both rules fire on the same tuple with different RHS constants;
        // resolution must modify an LHS attribute instead of ping-ponging.
        let mut db = Database::new();
        db.execute("CREATE TABLE r (A TEXT, B TEXT, C TEXT)")
            .unwrap();
        db.execute("INSERT INTO r VALUES ('a1','b1','x')").unwrap();
        // also provide alternative domain values
        db.execute("INSERT INTO r VALUES ('a2','b2','y')").unwrap();
        let cfds = cfd::parse::parse_cfds(
            "r: [A='a1'] -> [C='c1']\n\
             r: [B='b1'] -> [C='c2']",
        )
        .unwrap();
        let r = batch_repair(&mut db, "r", &cfds, &RepairConfig::default()).unwrap();
        assert!(
            r.residual.is_empty(),
            "residual: {:?}",
            r.residual.violations
        );
        // Verify final state satisfies both rules.
        let final_report = detect_native(db.table("r").unwrap(), &cfds).unwrap();
        assert!(final_report.is_empty());
    }

    #[test]
    fn ablation_similarity_off_changes_choices() {
        let build = || {
            let mut db = Database::new();
            db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
            db.execute(
                "INSERT INTO customer VALUES \
                 ('a','UK','EDI','EH4','Mayfield Rd','44','131'), \
                 ('b','UK','EDI','EH4','Mayfeild Rd','44','131')",
            )
            .unwrap();
            db
        };
        let cfds = cfd::parse::parse_cfds("customer: [CNT='UK', ZIP=_] -> [STR=_]").unwrap();
        let mut with_sim = build();
        let r1 = batch_repair(&mut with_sim, "customer", &cfds, &RepairConfig::default()).unwrap();
        let mut no_sim = build();
        let cfg = RepairConfig {
            use_similarity: false,
            ..RepairConfig::default()
        };
        let r2 = batch_repair(&mut no_sim, "customer", &cfds, &cfg).unwrap();
        // Both repair fully…
        assert!(r1.residual.is_empty() && r2.residual.is_empty());
        // …but the similarity-aware run is strictly cheaper than 0/1 cost.
        assert!(r1.total_cost < r2.total_cost);
    }
}
