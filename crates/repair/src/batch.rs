//! BatchRepair: the cost-greedy, equivalence-class repair of [8].
//!
//! Each iteration detects the current violations and resolves them by
//! attribute-value modifications:
//!
//! * **constant CFDs** — either assign the RHS constant (pinning the cell's
//!   class) or, when cheaper / forced by a conflicting pin, change a
//!   constant-patterned LHS cell so the pattern no longer applies;
//! * **variable CFDs** — merge the RHS cells of the violating group into
//!   one equivalence class and assign the weighted-cheapest target value;
//!   members whose class is pinned to a conflicting constant leave the
//!   group via an LHS break instead.
//!
//! Constant violations are drained before variable ones (pins first), and
//! the loop runs to fixpoint under an iteration bound; anything left is
//! reported honestly as `residual` (on consistent CFD sets and the
//! workloads in this repository the loop converges in a handful of
//! iterations — the integration tests assert empty residuals).
//!
//! The detect half of each round runs on a columnar [`SnapshotCache`]
//! kept in lock-step with the loop's own cell edits: the first round pays
//! one snapshot encode, every later round re-detects over the *patched*
//! snapshot (each applied change re-encodes exactly one cell) instead of
//! re-scanning the table from scratch. Reports are `normalized()`, so the
//! resolution order — and therefore the repair output — is identical to
//! the historical `detect_native`-per-round implementation.

use std::collections::HashMap;

use cfd::{BoundCfd, Cfd, CfdResult, Pattern};
use colstore::{detect_cached, SnapshotCache};
use detect::violation::{ViolationKind, ViolationReport};
use detect::IncrementalDetector;
use minidb::{Database, DbError, RowId, Value};

use crate::cost::WeightModel;
use crate::eqclass::{CellRef, EqClasses};

fn db_err(e: DbError) -> cfd::CfdError {
    cfd::CfdError::Malformed(format!("repair failed: {e}"))
}

/// Why a cell was changed.
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeReason {
    /// Assigned the RHS constant of a constant CFD.
    ConstantRhs {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Changed an LHS cell so a constant CFD's pattern no longer applies.
    ConstantLhsBreak {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Equalized the RHS of a variable CFD's violating group.
    VariableMerge {
        /// Violated CFD index.
        cfd_idx: usize,
    },
    /// Removed a tuple from a violating group by breaking its LHS key
    /// (used when pins conflict; introduces a fresh sentinel value).
    LhsBreak {
        /// Violated CFD index.
        cfd_idx: usize,
    },
}

/// One applied cell modification.
#[derive(Debug, Clone, PartialEq)]
pub struct CellChange {
    /// Row.
    pub row: RowId,
    /// Column index.
    pub col: usize,
    /// Value before.
    pub old: Value,
    /// Value after.
    pub new: Value,
    /// Cost charged by the model.
    pub cost: f64,
    /// Why.
    pub reason: ChangeReason,
    /// Iteration in which the change was applied.
    pub iteration: usize,
}

/// Outcome of a repair run.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairResult {
    /// All applied changes, in order.
    pub changes: Vec<CellChange>,
    /// Iterations used.
    pub iterations: usize,
    /// Sum of change costs.
    pub total_cost: f64,
    /// Violations that could not be resolved within the bound (empty on
    /// the workloads in this repo; never silently dropped).
    pub residual: ViolationReport,
}

impl RepairResult {
    /// Net changed cells (last change per cell wins).
    pub fn changed_cells(&self) -> usize {
        let mut set = std::collections::HashSet::new();
        for c in &self.changes {
            set.insert((c.row, c.col));
        }
        set.len()
    }
}

/// Repair configuration.
#[derive(Debug, Clone)]
pub struct RepairConfig {
    /// Iteration bound for the detect→resolve loop.
    pub max_iterations: usize,
    /// Cell confidence weights.
    pub weights: WeightModel,
    /// Use the similarity term of the cost model; `false` switches to 0/1
    /// costs (ablation A2).
    pub use_similarity: bool,
}

impl Default for RepairConfig {
    fn default() -> RepairConfig {
        RepairConfig {
            max_iterations: 32,
            weights: WeightModel::uniform(),
            use_similarity: true,
        }
    }
}

/// Run BatchRepair on `db.relation` under `cfds` with a private snapshot
/// cache (see [`batch_repair_with_cache`] to share one with a caller that
/// also detects over the relation, e.g. `QualityServer`).
pub fn batch_repair(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
) -> CfdResult<RepairResult> {
    let mut cache = SnapshotCache::new();
    batch_repair_with_cache(db, relation, cfds, cfg, &mut cache)
}

/// [`batch_repair`] against a caller-owned [`SnapshotCache`]: each round's
/// detection runs over the cached snapshot, patched cell-by-cell as the
/// resolvers edit the table — `detect_native` is off the main path. On
/// return the cache is synced to the repaired table, so a following
/// columnar detect pays zero encode work.
pub fn batch_repair_with_cache(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
    cache: &mut SnapshotCache,
) -> CfdResult<RepairResult> {
    let schema = db.table(relation).map_err(db_err)?.schema().clone();
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(&schema))
        .collect::<CfdResult<_>>()?;
    let mut eq = EqClasses::new();
    let mut changes: Vec<CellChange> = Vec::new();
    let mut iterations = 0usize;

    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        // Normalized order makes the whole repair deterministic (hash maps
        // inside detection would otherwise reorder resolutions), and keeps
        // the resolution sequence independent of snapshot row order — the
        // patched snapshot swap-removes, a fresh encode scans arena order.
        let report = detect_cached(cache, db.table(relation).map_err(db_err)?, cfds)?.normalized();
        if report.is_empty() {
            break;
        }
        let consts: Vec<_> = report
            .violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::SingleTuple { .. }))
            .cloned()
            .collect();
        let domains = active_domains(db, relation)?;
        // Constant violations first (they establish pins); variable
        // violations are handled in the same iteration when the constants
        // are done or stuck — a few unresolvable constants must not starve
        // group resolution.
        let mut const_progress = false;
        for v in &consts {
            let ViolationKind::SingleTuple { row } = v.kind else {
                unreachable!("filtered")
            };
            const_progress |= resolve_constant(
                db,
                relation,
                &bound,
                v.cfd_idx,
                row,
                &mut eq,
                cfg,
                &domains,
                iter,
                &mut changes,
                cache,
            )?;
        }
        let mut var_progress = false;
        if consts.is_empty() || !const_progress {
            for v in &report.violations {
                let ViolationKind::MultiTuple { key: _, rows } = &v.kind else {
                    continue;
                };
                var_progress |= resolve_variable(
                    db,
                    relation,
                    &bound,
                    v.cfd_idx,
                    rows,
                    &mut eq,
                    cfg,
                    iter,
                    &mut changes,
                    cache,
                )?;
            }
        }
        if !const_progress && !var_progress {
            break; // defensive: avoid spinning without effect
        }
    }

    let residual = detect_cached(cache, db.table(relation).map_err(db_err)?, cfds)?;
    let total_cost = changes.iter().map(|c| c.cost).sum();
    Ok(RepairResult {
        changes,
        iterations,
        total_cost,
        residual,
    })
}

/// Distinct values per column (the "active domain" candidate pool).
///
/// Two filters keep repair artifacts and noise out of the pool: fresh
/// sentinels from earlier LHS breaks are excluded (they are not domain
/// values), and values must reach a small support threshold — typo-corrupt
/// cells are almost always unique, and without the threshold the
/// similarity term of the cost model would happily "fix" an LHS by
/// assigning a nearby typo variant.
fn active_domains(db: &Database, relation: &str) -> CfdResult<HashMap<usize, Vec<Value>>> {
    let t = db.table(relation).map_err(db_err)?;
    let arity = t.schema().arity();
    let min_support = 2.max(t.len() / 1000);
    let mut counts: Vec<HashMap<Value, usize>> = vec![Default::default(); arity];
    for (_, row) in t.iter() {
        for (c, v) in row.iter().enumerate() {
            if !v.is_null() && !is_fresh(v) {
                *counts[c].entry(v.clone()).or_default() += 1;
            }
        }
    }
    Ok(counts
        .into_iter()
        .enumerate()
        .map(|(c, m)| {
            let mut v: Vec<Value> = m
                .into_iter()
                .filter(|(_, n)| *n >= min_support)
                .map(|(v, _)| v)
                .collect();
            v.sort_by(|a, b| a.total_cmp(b));
            (c, v)
        })
        .collect())
}

fn change_cost(cfg: &RepairConfig, row: RowId, col: usize, old: &Value, new: &Value) -> f64 {
    if cfg.use_similarity {
        cfg.weights.change_cost(row, col, old, new)
    } else {
        cfg.weights.weight(row, col) * crate::cost::uniform_cost(old, new)
    }
}

/// Apply one cell edit and patch the snapshot cache in lock-step, so the
/// next round's detection re-encodes exactly this cell instead of the
/// whole table. Returns the previous value.
fn update_cell_cached(
    db: &mut Database,
    relation: &str,
    cache: &mut SnapshotCache,
    row: RowId,
    col: usize,
    value: Value,
) -> CfdResult<Value> {
    let old = db.update_cell(relation, row, col, value).map_err(db_err)?;
    cache.note_set_cell(db.table(relation).map_err(db_err)?, row, col);
    Ok(old)
}

/// Would `row_vals` single-violate any constant CFD?
fn const_violates(bound: &[BoundCfd], row_vals: &[Value]) -> bool {
    bound.iter().any(|b| b.single_tuple_violation(row_vals))
}

#[allow(clippy::too_many_arguments)]
fn resolve_constant(
    db: &mut Database,
    relation: &str,
    bound: &[BoundCfd],
    cfd_idx: usize,
    row: RowId,
    eq: &mut EqClasses,
    cfg: &RepairConfig,
    domains: &HashMap<usize, Vec<Value>>,
    iter: usize,
    changes: &mut Vec<CellChange>,
    cache: &mut SnapshotCache,
) -> CfdResult<bool> {
    let b = &bound[cfd_idx];
    let current: Vec<Value> = match db.table(relation).map_err(db_err)?.get(row) {
        Ok(r) => r.to_vec(),
        Err(_) => return Ok(false), // row vanished
    };
    if !b.single_tuple_violation(&current) {
        return Ok(false); // already resolved by an earlier change
    }
    let a = b
        .cfd
        .rhs_pat
        .constant()
        .expect("constant CFD has constant RHS")
        .clone();
    let rhs_cell = CellRef::new(row, b.rhs_col);

    // Candidate 1: assign the RHS constant (unless pinned elsewhere or it
    // would trip another constant rule).
    let mut best: Option<(f64, usize, Value, ChangeReason)> = None;
    let rhs_pin = eq.pinned(rhs_cell);
    let rhs_allowed = rhs_pin.as_ref().is_none_or(|p| p.strong_eq(&a));
    if rhs_allowed {
        let mut sim = current.clone();
        sim[b.rhs_col] = a.clone();
        if !const_violates(bound, &sim) {
            let cost = change_cost(cfg, row, b.rhs_col, &current[b.rhs_col], &a);
            best = Some((
                cost,
                b.rhs_col,
                a.clone(),
                ChangeReason::ConstantRhs { cfd_idx },
            ));
        }
    }

    // Candidates 2..k: break a constant-patterned LHS cell.
    for (j, pat) in b.cfd.lhs_pat.iter().enumerate() {
        let Pattern::Const(c) = pat else { continue };
        let col = b.lhs_cols[j];
        let cell = CellRef::new(row, col);
        if eq.pinned(cell).is_some() {
            continue; // pinned LHS cells are not breakable
        }
        if let Some(pool) = domains.get(&col) {
            for v in pool {
                if v.strong_eq(c) || v.strong_eq(&current[col]) {
                    continue;
                }
                let mut sim = current.clone();
                sim[col] = v.clone();
                if const_violates(bound, &sim) {
                    continue;
                }
                let cost = change_cost(cfg, row, col, &current[col], v);
                if best.as_ref().is_none_or(|(bc, ..)| cost < *bc) {
                    best = Some((
                        cost,
                        col,
                        v.clone(),
                        ChangeReason::ConstantLhsBreak { cfd_idx },
                    ));
                }
            }
        }
    }

    // Last resort chain: force the RHS constant even if simulation
    // complains (a later iteration deals with the fallout); when the RHS is
    // pinned to something else, first try a fresh-sentinel LHS break, and
    // if every constant-patterned LHS cell is pinned too, overwrite the
    // stale RHS pin — a pin recorded for a pattern that no longer matches
    // must not deadlock the repair.
    let (cost, col, new_val, reason) = match best {
        Some(t) => t,
        None => {
            let unpinned_lhs = b.cfd.lhs_pat.iter().enumerate().find(|(j, p)| {
                !p.is_wild() && eq.pinned(CellRef::new(row, b.lhs_cols[*j])).is_none()
            });
            match (rhs_allowed, unpinned_lhs) {
                (true, _) | (false, None) => {
                    let cost = change_cost(cfg, row, b.rhs_col, &current[b.rhs_col], &a);
                    (
                        cost,
                        b.rhs_col,
                        a.clone(),
                        ChangeReason::ConstantRhs { cfd_idx },
                    )
                }
                (false, Some((j, _))) => {
                    let col = b.lhs_cols[j];
                    let fresh = fresh_value(row, col);
                    (
                        cfg.weights.weight(row, col),
                        col,
                        fresh,
                        ChangeReason::LhsBreak { cfd_idx },
                    )
                }
            }
        }
    };

    let old = update_cell_cached(db, relation, cache, row, col, new_val.clone())?;
    // Constant assignments pin the cell's *class* ([8]: everything that
    // must equal this cell inherits the forced value). Fresh sentinels are
    // detached first — an LHS break severs the equality links through the
    // broken cell, and pinning without detaching would poison every cell
    // ever merged with it.
    match reason {
        ChangeReason::ConstantRhs { .. } => {
            eq.repin(CellRef::new(row, col), new_val.clone());
        }
        ChangeReason::LhsBreak { .. } => {
            let cell = CellRef::new(row, col);
            eq.detach(cell);
            eq.repin(cell, new_val.clone());
        }
        _ => {}
    }
    changes.push(CellChange {
        row,
        col,
        old,
        new: new_val,
        cost,
        reason,
        iteration: iter,
    });
    Ok(true)
}

#[allow(clippy::too_many_arguments)]
fn resolve_variable(
    db: &mut Database,
    relation: &str,
    bound: &[BoundCfd],
    cfd_idx: usize,
    members: &[(RowId, Value)],
    eq: &mut EqClasses,
    cfg: &RepairConfig,
    iter: usize,
    changes: &mut Vec<CellChange>,
    cache: &mut SnapshotCache,
) -> CfdResult<bool> {
    let b = &bound[cfd_idx];
    // Re-verify the group against current data.
    let table = db.table(relation).map_err(db_err)?;
    let mut current: Vec<(RowId, Value)> = Vec::with_capacity(members.len());
    let mut key: Option<Vec<Value>> = None;
    for (row, _) in members {
        let Ok(vals) = table.get(*row) else { continue };
        if !b.lhs_matches(vals) {
            continue;
        }
        let k = b.lhs_key(vals);
        match &key {
            None => key = Some(k),
            Some(existing) if *existing == k => {}
            Some(_) => continue, // moved to another group since detection
        }
        let rhs = vals[b.rhs_col].clone();
        if rhs.is_null() {
            continue;
        }
        current.push((*row, rhs));
    }
    if !detect::native::group_violates(&current) {
        return Ok(false);
    }

    // Merge the group's RHS cells into one equivalence class ([8]): cells
    // linked through *any* CFD's group must take one value. Merges that
    // would join conflicting pinned classes are refused; those members
    // resolve via LHS breaks below.
    let cells: Vec<CellRef> = current
        .iter()
        .map(|(r, _)| CellRef::new(*r, b.rhs_col))
        .collect();
    for w in cells.windows(2) {
        let _ = eq.merge(w[0], w[1]);
    }
    let pins: Vec<Option<Value>> = cells.iter().map(|c| eq.pinned(*c)).collect();

    // Candidate values come from the whole class (so that groups of other
    // CFDs sharing these cells pull toward one global choice), with the
    // current group's values always included. Fresh sentinels are never
    // targets: they mean "unknown, flagged for review".
    let class_values: Vec<(RowId, Value)> = {
        let table = db.table(relation).map_err(db_err)?;
        let mut vals: Vec<(RowId, Value)> = eq
            .members(cells[0])
            .into_iter()
            .filter(|c| c.col == b.rhs_col)
            .filter_map(|c| table.get(c.row).ok().map(|r| (c.row, r[b.rhs_col].clone())))
            .filter(|(_, v)| !v.is_null())
            .collect();
        vals.extend(current.iter().cloned());
        vals.sort_by_key(|(r, _)| *r);
        vals.dedup_by_key(|(r, _)| *r);
        vals
    };

    let usable_pins: Vec<&Value> = pins.iter().flatten().filter(|p| !is_fresh(p)).collect();
    let target = if !usable_pins.is_empty() {
        // A pinned constant wins (majority vote among non-sentinel pins).
        let mut votes: HashMap<&Value, usize> = HashMap::new();
        for p in &usable_pins {
            *votes.entry(p).or_default() += 1;
        }
        let mut vote_list: Vec<(&Value, usize)> = votes.into_iter().collect();
        vote_list.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.render().cmp(&b.0.render())));
        vote_list[0].0.clone()
    } else {
        let mut candidates: Vec<&Value> = class_values
            .iter()
            .map(|(_, v)| v)
            .filter(|v| !is_fresh(v))
            .collect();
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup_by(|a, b| a.strong_eq(b));
        let mut best: Option<(f64, Value)> = None;
        for cand in candidates {
            let total: f64 = class_values
                .iter()
                .map(|(r, v)| change_cost(cfg, *r, b.rhs_col, v, cand))
                .sum();
            if best.as_ref().is_none_or(|(bc, _)| total < *bc) {
                best = Some((total, cand.clone()));
            }
        }
        match best {
            Some((_, t)) => t,
            // Every usable value is a sentinel: keep the smallest as the
            // nominal target; incompatible members LHS-break out below.
            None => {
                let mut vals: Vec<&Value> = current.iter().map(|(_, v)| v).collect();
                vals.sort_by_key(|a| a.render());
                (*vals.first().expect("group is nonempty")).clone()
            }
        }
    };

    let mut progressed = false;
    for ((row, val), pin) in current.iter().zip(pins) {
        if val.strong_eq(&target) {
            continue;
        }
        // A pin incompatible with the target means this member cannot take
        // the class value — it leaves the group via an LHS break instead.
        // (Triggering a constant rule is fine: the next iteration's
        // constant pass cascades the fix, and pins bound the recursion.)
        let compatible = pin.as_ref().is_none_or(|p| p.strong_eq(&target));
        if compatible {
            let cost = change_cost(cfg, *row, b.rhs_col, val, &target);
            let old = update_cell_cached(db, relation, cache, *row, b.rhs_col, target.clone())?;
            changes.push(CellChange {
                row: *row,
                col: b.rhs_col,
                old,
                new: target.clone(),
                cost,
                reason: ChangeReason::VariableMerge { cfd_idx },
                iteration: iter,
            });
            progressed = true;
        } else {
            // Leave the group: break the LHS key with a fresh sentinel on
            // the first unpinned LHS cell.
            let Some((j, _)) = b
                .lhs_cols
                .iter()
                .enumerate()
                .find(|(_, &col)| eq.pinned(CellRef::new(*row, col)).is_none())
            else {
                continue; // fully pinned: residual, reported honestly
            };
            let col = b.lhs_cols[j];
            let fresh = fresh_value(*row, col);
            let cost = cfg.weights.weight(*row, col);
            let old = update_cell_cached(db, relation, cache, *row, col, fresh.clone())?;
            // Sentinel cells are detached from their class (the break
            // severs the equality links through this cell) and pinned so
            // later merges cannot overwrite "unknown, needs review".
            let cell = CellRef::new(*row, col);
            eq.detach(cell);
            eq.repin(cell, fresh.clone());
            changes.push(CellChange {
                row: *row,
                col,
                old,
                new: fresh,
                cost,
                reason: ChangeReason::LhsBreak { cfd_idx },
                iteration: iter,
            });
            progressed = true;
        }
    }
    Ok(progressed)
}

/// Fresh sentinel value for LHS breaks — never collides with real data and
/// flags the cell for human review (the demo's "pop-up" would surface it).
pub fn fresh_value(row: RowId, col: usize) -> Value {
    Value::str(format!("\u{22a5}fix{}c{}", row.0, col))
}

/// Is this value a fresh sentinel produced by [`fresh_value`]?
pub fn is_fresh(v: &Value) -> bool {
    matches!(v, Value::Str(s) if s.starts_with('\u{22a5}'))
}

/// Convenience: repair and then verify with a fresh incremental detector;
/// returns the result plus the post-repair violation total.
pub fn repair_and_verify(
    db: &mut Database,
    relation: &str,
    cfds: &[Cfd],
    cfg: &RepairConfig,
) -> CfdResult<(RepairResult, u64)> {
    let result = batch_repair(db, relation, cfds, cfg)?;
    let det = IncrementalDetector::build(db.table(relation).map_err(db_err)?, cfds)?;
    Ok((result, det.total_violations()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::dirty_customers;
    use detect::detect_native;

    #[test]
    fn repairs_dirty_customers_to_zero_violations() {
        let mut d = dirty_customers(300, 0.05, 77);
        let (result, remaining) =
            repair_and_verify(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert_eq!(remaining, 0, "residual: {:?}", result.residual.violations);
        assert!(result.residual.is_empty());
        assert!(!result.changes.is_empty());
    }

    #[test]
    fn clean_data_is_untouched() {
        let mut d = dirty_customers(200, 0.0, 5);
        let r = batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap();
        assert!(r.changes.is_empty());
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn repair_is_deterministic() {
        let run = || {
            let mut d = dirty_customers(150, 0.06, 99);
            batch_repair(&mut d.db, "customer", &d.cfds, &RepairConfig::default()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.changes, b.changes);
    }

    #[test]
    fn similarity_cost_prefers_typo_fixes() {
        // A UK group where one street has a one-char typo: the cheap target
        // is the majority (correct) spelling.
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute(
            "INSERT INTO customer VALUES \
             ('a','UK','EDI','EH4','Mayfield Rd','44','131'), \
             ('b','UK','EDI','EH4','Mayfield Rd','44','131'), \
             ('c','UK','EDI','EH4','Mayfeild Rd','44','131')",
        )
        .unwrap();
        let cfds = cfd::parse::parse_cfds("customer: [CNT='UK', ZIP=_] -> [STR=_]").unwrap();
        let r = batch_repair(&mut db, "customer", &cfds, &RepairConfig::default()).unwrap();
        assert!(r.residual.is_empty());
        assert_eq!(r.changes.len(), 1);
        assert_eq!(r.changes[0].new, Value::str("Mayfield Rd"));
        assert_eq!(r.changes[0].row, RowId(2));
    }

    #[test]
    fn constant_rule_pins_rhs_and_repairs() {
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute("INSERT INTO customer VALUES ('a','US','EDI','EH4','High St','44','131')")
            .unwrap();
        let cfds = cfd::parse::parse_cfds("customer: [CC='44'] -> [CNT='UK']").unwrap();
        let r = batch_repair(&mut db, "customer", &cfds, &RepairConfig::default()).unwrap();
        assert!(r.residual.is_empty());
        assert_eq!(r.changes.len(), 1);
        // Cheapest fix: CNT US → UK (distance 1/2) beats changing CC.
        assert_eq!(r.changes[0].new, Value::str("UK"));
        assert!(matches!(
            r.changes[0].reason,
            ChangeReason::ConstantRhs { .. }
        ));
    }

    #[test]
    fn conflicting_constant_rules_break_lhs() {
        // Both rules fire on the same tuple with different RHS constants;
        // resolution must modify an LHS attribute instead of ping-ponging.
        let mut db = Database::new();
        db.execute("CREATE TABLE r (A TEXT, B TEXT, C TEXT)")
            .unwrap();
        db.execute("INSERT INTO r VALUES ('a1','b1','x')").unwrap();
        // also provide alternative domain values
        db.execute("INSERT INTO r VALUES ('a2','b2','y')").unwrap();
        let cfds = cfd::parse::parse_cfds(
            "r: [A='a1'] -> [C='c1']\n\
             r: [B='b1'] -> [C='c2']",
        )
        .unwrap();
        let r = batch_repair(&mut db, "r", &cfds, &RepairConfig::default()).unwrap();
        assert!(
            r.residual.is_empty(),
            "residual: {:?}",
            r.residual.violations
        );
        // Verify final state satisfies both rules.
        let final_report = detect_native(db.table("r").unwrap(), &cfds).unwrap();
        assert!(final_report.is_empty());
    }

    #[test]
    fn ablation_similarity_off_changes_choices() {
        let build = || {
            let mut db = Database::new();
            db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
            db.execute(
                "INSERT INTO customer VALUES \
                 ('a','UK','EDI','EH4','Mayfield Rd','44','131'), \
                 ('b','UK','EDI','EH4','Mayfeild Rd','44','131')",
            )
            .unwrap();
            db
        };
        let cfds = cfd::parse::parse_cfds("customer: [CNT='UK', ZIP=_] -> [STR=_]").unwrap();
        let mut with_sim = build();
        let r1 = batch_repair(&mut with_sim, "customer", &cfds, &RepairConfig::default()).unwrap();
        let mut no_sim = build();
        let cfg = RepairConfig {
            use_similarity: false,
            ..RepairConfig::default()
        };
        let r2 = batch_repair(&mut no_sim, "customer", &cfds, &cfg).unwrap();
        // Both repair fully…
        assert!(r1.residual.is_empty() && r2.residual.is_empty());
        // …but the similarity-aware run is strictly cheaper than 0/1 cost.
        assert!(r1.total_cost < r2.total_cost);
    }
}
