//! Ranked alternative fixes for a cell (the pop-up of Fig. 5): candidate
//! values from the column's active domain, ordered by the cost model, each
//! annotated with whether it keeps the tuple free of constant-CFD
//! violations.

use cfd::{BoundCfd, Cfd, CfdResult};
use minidb::{Database, DbError, RowId, Value};

use crate::cost::{normalized_distance, WeightModel};

fn db_err(e: DbError) -> cfd::CfdError {
    cfd::CfdError::Malformed(format!("alternatives failed: {e}"))
}

/// One candidate fix for a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative {
    /// Proposed value.
    pub value: Value,
    /// Cost of changing the *original* value to this one.
    pub cost: f64,
    /// Whether the tuple would satisfy every constant CFD afterwards.
    pub consistent: bool,
}

/// Rank up to `k` alternative values for cell `(row, col)`, cheapest first.
/// The current value is excluded; `original` (the pre-repair value, if the
/// cell was changed) is the distance baseline.
#[allow(clippy::too_many_arguments)]
pub fn alternatives_for(
    db: &Database,
    relation: &str,
    cfds: &[Cfd],
    row: RowId,
    col: usize,
    original: &Value,
    weights: &WeightModel,
    k: usize,
) -> CfdResult<Vec<Alternative>> {
    let table = db.table(relation).map_err(db_err)?;
    let schema = table.schema().clone();
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(&schema))
        .collect::<CfdResult<_>>()?;
    let current: Vec<Value> = table.get(row).map_err(db_err)?.to_vec();

    // Candidate pool: active domain of the column plus the original value.
    let mut pool: Vec<Value> = Vec::new();
    for (_, r) in table.iter() {
        let v = &r[col];
        if v.is_null() || v.strong_eq(&current[col]) {
            continue;
        }
        if !pool.iter().any(|p| p.strong_eq(v)) {
            pool.push(v.clone());
        }
    }
    if !original.is_null()
        && !original.strong_eq(&current[col])
        && !pool.iter().any(|p| p.strong_eq(original))
    {
        pool.push(original.clone());
    }

    let mut alts: Vec<Alternative> = pool
        .into_iter()
        .map(|v| {
            let mut sim = current.clone();
            sim[col] = v.clone();
            let consistent = !bound.iter().any(|b| b.single_tuple_violation(&sim));
            let cost = weights.weight(row, col) * normalized_distance(original, &v);
            Alternative {
                value: v,
                cost,
                consistent,
            }
        })
        .collect();
    // Consistent candidates first, then by cost, then lexicographically.
    alts.sort_by(|a, b| {
        b.consistent
            .cmp(&a.consistent)
            .then(a.cost.partial_cmp(&b.cost).expect("costs are finite"))
            .then_with(|| a.value.render().cmp(&b.value.render()))
    });
    alts.truncate(k);
    Ok(alts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;

    fn setup() -> (Database, Vec<Cfd>) {
        let mut db = Database::new();
        db.execute("CREATE TABLE customer (NAME TEXT, CNT TEXT, CITY TEXT, ZIP TEXT, STR TEXT, CC TEXT, AC TEXT)").unwrap();
        db.execute(
            "INSERT INTO customer VALUES \
             ('a','UK','EDI','EH4','Mayfield Rd','44','131'), \
             ('b','UK','LDN','NW1','Baker St','44','207'), \
             ('c','US','NYC','012','Oak Ave','01','212')",
        )
        .unwrap();
        let cfds = parse_cfds("customer: [CC='44'] -> [CNT='UK']").unwrap();
        (db, cfds)
    }

    #[test]
    fn alternatives_are_ranked_by_cost_from_original() {
        let (db, cfds) = setup();
        // Cell (row 0, CITY=2): original 'EDG' (a typo of EDI).
        let alts = alternatives_for(
            &db,
            "customer",
            &cfds,
            RowId(0),
            2,
            &Value::str("EDG"),
            &WeightModel::uniform(),
            5,
        )
        .unwrap();
        assert!(!alts.is_empty());
        // The most similar city to 'EDG' among {LDN, NYC} + original…
        // 'EDG' itself is in the pool (the original), cost 0.
        assert_eq!(alts[0].value, Value::str("EDG"));
        assert_eq!(alts[0].cost, 0.0);
    }

    #[test]
    fn inconsistent_candidates_sink_to_the_bottom() {
        let (db, cfds) = setup();
        // Cell (row 2, CNT=1) with CC='01': changing CNT is free w.r.t. the
        // only rule (it fires on CC='44'), so everything is consistent; but
        // for row 0 (CC='44') any CNT ≠ UK is inconsistent.
        let alts = alternatives_for(
            &db,
            "customer",
            &cfds,
            RowId(0),
            1,
            &Value::str("UK"),
            &WeightModel::uniform(),
            5,
        )
        .unwrap();
        for a in &alts {
            if a.value.strong_eq(&Value::str("US")) {
                assert!(!a.consistent, "US conflicts with [CC='44'] -> [CNT='UK']");
            }
        }
        // All inconsistent ones come after consistent ones.
        let first_incons = alts.iter().position(|a| !a.consistent);
        if let Some(i) = first_incons {
            assert!(alts[i..].iter().all(|a| !a.consistent));
        }
    }

    #[test]
    fn respects_k_limit() {
        let (db, cfds) = setup();
        let alts = alternatives_for(
            &db,
            "customer",
            &cfds,
            RowId(0),
            4,
            &Value::str("High St"),
            &WeightModel::uniform(),
            1,
        )
        .unwrap();
        assert_eq!(alts.len(), 1);
    }
}
