//! The repair cost model of Cong et al. (VLDB 2007, [8]).
//!
//! The cost of changing a cell value `v` to `v'` is
//! `w(t, A) · dist(v, v') / max(|v|, |v'|)` where `dist` is the
//! Damerau–Levenshtein distance (restricted / optimal-string-alignment
//! variant) and `w` a per-cell confidence weight. Similar values are cheap
//! to substitute — the model prefers repairs that look like typo fixes.

use std::collections::HashMap;

use minidb::{RowId, Value};

/// Restricted Damerau–Levenshtein (optimal string alignment) distance:
/// insertions, deletions, substitutions and adjacent transpositions.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    // Three rolling rows are enough for the OSA recurrence.
    let mut prev2: Vec<usize> = vec![0; m + 1];
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur: Vec<usize> = vec![0; m + 1];
    for i in 1..=n {
        cur[0] = i;
        for j in 1..=m {
            let sub_cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (prev[j] + 1) // deletion
                .min(cur[j - 1] + 1) // insertion
                .min(prev[j - 1] + sub_cost); // substitution
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(prev2[j - 2] + 1); // transposition
            }
            cur[j] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[m]
}

/// Normalized distance in `[0, 1]`: `dist / max(len)` for strings; 0/1
/// equality for other types; `NULL` vs non-NULL costs 1.
pub fn normalized_distance(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => {
            let ml = x.chars().count().max(y.chars().count());
            if ml == 0 {
                return 0.0;
            }
            damerau_levenshtein(x, y) as f64 / ml as f64
        }
        _ => {
            if a.strong_eq(b) {
                0.0
            } else {
                1.0
            }
        }
    }
}

/// Per-cell confidence weights `w(t, A)`; higher weight = more trusted =
/// more expensive to change. Defaults to 1.0 everywhere.
#[derive(Debug, Clone)]
pub struct WeightModel {
    default: f64,
    cells: HashMap<(RowId, usize), f64>,
    columns: HashMap<usize, f64>,
}

impl Default for WeightModel {
    fn default() -> WeightModel {
        WeightModel {
            default: 1.0,
            cells: HashMap::new(),
            columns: HashMap::new(),
        }
    }
}

impl WeightModel {
    /// Uniform weights.
    pub fn uniform() -> WeightModel {
        WeightModel::default()
    }

    /// Set a column-level weight.
    pub fn with_column(mut self, col: usize, w: f64) -> WeightModel {
        self.columns.insert(col, w);
        self
    }

    /// Set a single cell's weight.
    pub fn set_cell(&mut self, row: RowId, col: usize, w: f64) {
        self.cells.insert((row, col), w);
    }

    /// `w(t, A)`.
    pub fn weight(&self, row: RowId, col: usize) -> f64 {
        if let Some(w) = self.cells.get(&(row, col)) {
            return *w;
        }
        self.columns.get(&col).copied().unwrap_or(self.default)
    }

    /// Full change cost `w(t,A) · ndist(old, new)`.
    pub fn change_cost(&self, row: RowId, col: usize, old: &Value, new: &Value) -> f64 {
        self.weight(row, col) * normalized_distance(old, new)
    }
}

/// Cost of a change that ignores similarity (`0/1` distance) — the ablation
/// A2 baseline showing why the similarity term matters.
pub fn uniform_cost(old: &Value, new: &Value) -> f64 {
    if old.strong_eq(new) {
        0.0
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dl_distance_basics() {
        assert_eq!(damerau_levenshtein("", ""), 0);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("abc", ""), 3);
        assert_eq!(damerau_levenshtein("kitten", "sitting"), 3);
        // transposition counts 1
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("EDI", "EDG"), 1);
    }

    #[test]
    fn dl_is_symmetric_and_triangleish() {
        let pairs = [("london", "lodnon"), ("zip", "zap"), ("a", "abcd")];
        for (a, b) in pairs {
            assert_eq!(damerau_levenshtein(a, b), damerau_levenshtein(b, a));
        }
    }

    #[test]
    fn normalized_distance_is_unit_interval() {
        let a = Value::str("EH4 1DT");
        let b = Value::str("EH4 1DX");
        let d = normalized_distance(&a, &b);
        assert!(d > 0.0 && d < 0.3, "one char over seven: {d}");
        assert_eq!(normalized_distance(&a, &a), 0.0);
        assert_eq!(normalized_distance(&Value::Int(1), &Value::Int(2)), 1.0);
        assert_eq!(normalized_distance(&Value::Null, &Value::str("x")), 1.0);
    }

    #[test]
    fn weights_override_hierarchy() {
        let mut w = WeightModel::uniform().with_column(2, 5.0);
        w.set_cell(RowId(7), 2, 0.5);
        assert_eq!(w.weight(RowId(0), 0), 1.0);
        assert_eq!(w.weight(RowId(0), 2), 5.0);
        assert_eq!(w.weight(RowId(7), 2), 0.5);
    }

    #[test]
    fn similar_values_cost_less() {
        let w = WeightModel::uniform();
        let typo = w.change_cost(
            RowId(0),
            0,
            &Value::str("Mayfield Rd"),
            &Value::str("Mayfeild Rd"),
        );
        let swap = w.change_cost(
            RowId(0),
            0,
            &Value::str("Mayfield Rd"),
            &Value::str("Oak Ave"),
        );
        assert!(
            typo < swap,
            "typo fix {typo} must be cheaper than replacement {swap}"
        );
    }
}
