//! Immutable columnar snapshots of heap tables.
//!
//! [`Snapshot::of`] makes one pass over a [`Table`], dictionary-encoding
//! every column and recording the live-row id order; [`Snapshot::projected`]
//! encodes only a chosen column subset (the detector projects onto the
//! columns its CFD set mentions, skipping expensive high-cardinality
//! free-text columns entirely). The snapshot is the unit of reuse: encode
//! once, then evaluate an arbitrary number of CFDs (or build partitions, or
//! seed the incremental detector) against the same code columns. Cloning a
//! snapshot is cheap — row ids and sealed code chunks are `Arc`-shared.
//!
//! Every encoded column shares one snapshot-wide chunk size
//! ([`Snapshot::chunk_rows`]), so chunk `ci` covers the same global row
//! positions in every column — the alignment the morsel-driven detector
//! scans by ([`Snapshot::n_chunks`] morsels per variable CFD).

use std::sync::Arc;

use minidb::{RowId, Schema, Table, Value};

use crate::column::{default_chunk_rows, Column, ColumnAppender, ColumnBuilder};

/// A columnar, dictionary-encoded, immutable copy of a table's live rows.
#[derive(Debug, Clone)]
pub struct Snapshot {
    name: String,
    schema: Schema,
    row_ids: Arc<Vec<RowId>>,
    /// One slot per schema column; `None` for columns outside the
    /// projection of [`Snapshot::projected`].
    columns: Vec<Option<Column>>,
    /// Rows per code chunk, shared by every encoded column.
    chunk_rows: usize,
}

impl Snapshot {
    /// Encode all live rows of `table`, all columns, in iteration (arena)
    /// order.
    pub fn of(table: &Table) -> Snapshot {
        let all: Vec<usize> = (0..table.schema().arity()).collect();
        Snapshot::projected(table, &all)
    }

    /// Encode only the columns in `cols` (deduplicated; order irrelevant),
    /// with the process-default chunk size. Accessing a column outside the
    /// projection panics — project onto exactly what the consumer
    /// evaluates.
    pub fn projected(table: &Table, cols: &[usize]) -> Snapshot {
        Snapshot::projected_with_chunk(table, cols, default_chunk_rows())
    }

    /// [`Snapshot::projected`] with an explicit chunk size — the knob the
    /// chunk-equivalence property tests and benchmarks turn.
    ///
    /// Columns encode independently, so large tables fan the per-column
    /// interning passes across scoped threads.
    pub fn projected_with_chunk(table: &Table, cols: &[usize], chunk_rows: usize) -> Snapshot {
        /// Below this row count the spawn overhead outweighs the win.
        const PARALLEL_ROWS: usize = 8_192;

        // Every full encode in the workspace funnels through here — the
        // cache's rebuild path, but also the "hidden" ones that bypass any
        // `SnapshotCache` (one-shot `detect_columnar`, detector seeding,
        // per-shard reference scans) — so the global telemetry counter
        // lives at the funnel, not at the cache.
        obs::counter("colstore_snapshot_encodes_total").inc();
        let _span = obs::span("colstore_snapshot_encode_ns");

        let arity = table.schema().arity();
        let rows = table.len();
        let mut wanted = vec![false; arity];
        for &c in cols {
            if c < arity {
                wanted[c] = true;
            }
        }
        let mut columns: Vec<Option<Column>> = vec![None; arity];
        let targets: Vec<usize> = (0..arity).filter(|&c| wanted[c]).collect();
        let parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
        let row_ids: Vec<RowId>;
        if rows >= PARALLEL_ROWS && targets.len() > 1 && parallelism > 1 {
            // Multicore: one interning thread per column (each pays its own
            // walk over the row arena, amortized by the parallelism).
            row_ids = table.iter().map(|(id, _)| id).collect();
            let encode_one = |c: usize| {
                let mut b = ColumnBuilder::chunked(rows, chunk_rows);
                for (_, row) in table.iter() {
                    b.push(&row[c]);
                }
                b.finish()
            };
            let encoded = crossbeam::scope(|s| {
                let handles: Vec<_> = targets
                    .iter()
                    .map(|&c| s.spawn(move |_| (c, encode_one(c))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("column encoder does not panic"))
                    .collect::<Vec<(usize, Column)>>()
            })
            .expect("encode workers do not panic");
            for (c, col) in encoded {
                columns[c] = Some(col);
            }
        } else {
            // Serial: a single interleaved walk — every row is dereferenced
            // once, not once per column.
            let mut ids = Vec::with_capacity(rows);
            let mut builders: Vec<(usize, ColumnBuilder)> = targets
                .iter()
                .map(|&c| (c, ColumnBuilder::chunked(rows, chunk_rows)))
                .collect();
            for (id, row) in table.iter() {
                ids.push(id);
                for (c, b) in builders.iter_mut() {
                    b.push(&row[*c]);
                }
            }
            row_ids = ids;
            for (c, b) in builders {
                columns[c] = Some(b.finish());
            }
        }
        Snapshot {
            name: table.name().to_string(),
            schema: table.schema().clone(),
            row_ids: Arc::new(row_ids),
            columns,
            chunk_rows,
        }
    }

    /// Name of the source table.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema of the source table.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of encoded rows.
    pub fn n_rows(&self) -> usize {
        self.row_ids.len()
    }

    /// True when the snapshot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_ids.is_empty()
    }

    /// Rows per code chunk (shared by every encoded column).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of code chunks each encoded column holds — the morsel count
    /// per variable CFD.
    pub fn n_chunks(&self) -> usize {
        self.n_rows().div_ceil(self.chunk_rows)
    }

    /// One column by schema position. Panics if `idx` was projected away.
    pub fn column(&self, idx: usize) -> &Column {
        self.columns[idx]
            .as_ref()
            .expect("column was projected away; encode it via Snapshot::of or projected()")
    }

    /// True when column `idx` was encoded.
    pub fn has_column(&self, idx: usize) -> bool {
        self.columns.get(idx).is_some_and(Option::is_some)
    }

    /// The encoded columns with their schema positions.
    pub fn encoded_columns(&self) -> impl Iterator<Item = (usize, &Column)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i, c)))
    }

    /// The stable row id at snapshot position `pos`.
    pub fn row_id(&self, pos: usize) -> RowId {
        self.row_ids[pos]
    }

    // Patch operations, used by `lifecycle::SnapshotCache` to keep a cached
    // snapshot in lock-step with small table deltas instead of re-encoding.
    // Appends are O(1) tail-chunk pushes (sealed chunks stay shared with
    // snapshots already handed out); cell edits copy at most the one
    // touched chunk; only the shared row-id vector still pays a full
    // copy-on-write clone on the first patch.

    /// Append one encoded row. Columns outside the projection stay absent.
    pub(crate) fn append_row(&mut self, id: RowId, row: &[Value]) {
        Arc::make_mut(&mut self.row_ids).push(id);
        for (c, slot) in self.columns.iter_mut().enumerate() {
            if let Some(col) = slot {
                col.push_value(&row[c]);
            }
        }
    }

    /// Append a run of encoded rows in one pass — the bulk-ingest
    /// counterpart of [`Snapshot::append_row`]. Each encoded column
    /// unshares its dictionary and reserves **once** for the whole run
    /// ([`Column::appender`]); the rows themselves are walked in a
    /// single interleaved pass (row-major, like the serial encoder: every
    /// row is dereferenced once, not once per column).
    pub(crate) fn append_rows(&mut self, rows: &[(RowId, &[Value])]) {
        let ids = Arc::make_mut(&mut self.row_ids);
        ids.reserve(rows.len());
        ids.extend(rows.iter().map(|(id, _)| *id));
        let mut cols: Vec<(usize, ColumnAppender<'_>)> = self
            .columns
            .iter_mut()
            .enumerate()
            .filter_map(|(i, c)| c.as_mut().map(|c| (i, c.appender(rows.len()))))
            .collect();
        for (_, row) in rows {
            for (i, appender) in cols.iter_mut() {
                appender.push(&row[*i]);
            }
        }
    }

    /// Remove the row at snapshot position `pos` by swapping the last row
    /// into its place; returns the row id that now occupies `pos` (if any).
    /// Detection is row-order-insensitive after `normalized()`, which is
    /// what makes swap-remove — O(columns), no shifting — safe here.
    pub(crate) fn swap_remove_row(&mut self, pos: usize) -> Option<RowId> {
        let ids = Arc::make_mut(&mut self.row_ids);
        ids.swap_remove(pos);
        for col in self.columns.iter_mut().flatten() {
            col.swap_remove(pos);
        }
        ids.get(pos).copied()
    }

    /// Re-encode one cell in place, interning a novel value into the
    /// column's existing dictionary (no-op for columns outside the
    /// projection — they are not represented, so there is nothing stale).
    pub(crate) fn set_cell(&mut self, pos: usize, col: usize, v: &Value) {
        if let Some(c) = self.columns.get_mut(col).and_then(Option::as_mut) {
            c.set_value(pos, v);
        }
    }

    /// All row ids in snapshot order.
    pub fn row_ids(&self) -> &[RowId] {
        &self.row_ids
    }

    // Spill operations ([`crate::spill`]): evict cold sealed chunks to a
    // page store until the resident code bytes fit a memory budget.

    /// Bytes of code storage currently resident across every encoded
    /// column (spilled chunks excluded). Dictionaries and row ids are not
    /// counted — the budget meters the part that scales with row count
    /// and can actually be evicted.
    pub fn resident_bytes(&self) -> usize {
        self.encoded_columns()
            .map(|(_, c)| c.resident_bytes())
            .sum()
    }

    /// Evict sealed chunks to `store` until [`Snapshot::resident_bytes`]
    /// is at or below `budget` bytes (or nothing sealed is left to
    /// evict — tails never spill). Eviction is oldest-chunk-first across
    /// all encoded columns: chunk index `ci` of *every* column goes out
    /// before `ci + 1` of any, so a morsel scanning chunk `ci` faults at
    /// most one page per column it reads. Returns the number of chunks
    /// spilled.
    pub fn spill_to_budget(
        &mut self,
        store: &Arc<dyn crate::spill::ChunkStore>,
        budget: usize,
    ) -> std::io::Result<usize> {
        let mut resident = self.resident_bytes();
        if resident <= budget {
            return Ok(0);
        }
        let mut spilled = 0usize;
        let n_sealed = self.n_rows() / self.chunk_rows;
        'evict: for ci in 0..n_sealed {
            for col in self.columns.iter_mut().flatten() {
                if col.spill_chunk(ci, store)? {
                    spilled += 1;
                    resident = resident.saturating_sub(self.chunk_rows * 4);
                    if resident <= budget {
                        break 'evict;
                    }
                }
            }
        }
        Ok(spilled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Schema, Value};

    fn table() -> Table {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
        t.insert(vec![Value::str("x"), Value::str("p")]).unwrap();
        t.insert(vec![Value::str("y"), Value::Null]).unwrap();
        t.insert(vec![Value::str("x"), Value::str("q")]).unwrap();
        t
    }

    #[test]
    fn snapshot_mirrors_live_rows() {
        let mut t = table();
        let victim = t.row_ids()[1];
        t.delete(victim).unwrap();
        let s = Snapshot::of(&t);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.row_ids(), &[RowId(0), RowId(2)]);
        assert_eq!(
            s.column(0).contiguous().as_ref(),
            &[1, 1],
            "x interned once"
        );
        assert_eq!(s.column(1).contiguous().as_ref(), &[1, 2]);
        assert_eq!(s.schema().arity(), 2);
    }

    #[test]
    fn snapshot_is_immutable_under_table_mutation() {
        let mut t = table();
        let s = Snapshot::of(&t);
        t.insert(vec![Value::str("z"), Value::str("r")]).unwrap();
        assert_eq!(s.n_rows(), 3, "snapshot must not see later inserts");
    }

    #[test]
    fn empty_table_snapshot() {
        let t = Table::new("e", Schema::of_strings(&["A"]));
        let s = Snapshot::of(&t);
        assert!(s.is_empty());
        assert_eq!(s.column(0).len(), 0);
        assert_eq!(s.n_chunks(), 0);
    }

    #[test]
    fn projection_encodes_only_requested_columns() {
        let t = table();
        let s = Snapshot::projected(&t, &[1]);
        assert!(!s.has_column(0));
        assert!(s.has_column(1));
        assert_eq!(s.column(1).contiguous().as_ref(), &[1, 0, 2]);
        assert_eq!(s.encoded_columns().count(), 1);
    }

    #[test]
    fn explicit_chunk_size_aligns_every_column() {
        let t = table();
        let s = Snapshot::projected_with_chunk(&t, &[0, 1], 2);
        assert_eq!(s.chunk_rows(), 2);
        assert_eq!(s.n_chunks(), 2, "3 rows at 2 per chunk");
        for c in 0..2 {
            assert_eq!(s.column(c).n_chunks(), 2);
            assert_eq!(s.column(c).chunk(0).len(), 2);
            assert_eq!(s.column(c).chunk(1).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "projected away")]
    fn accessing_projected_away_column_panics() {
        let t = table();
        let s = Snapshot::projected(&t, &[1]);
        let _ = s.column(0);
    }
}
