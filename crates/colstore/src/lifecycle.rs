//! Epoch-versioned snapshot lifecycle: cache + incremental maintenance.
//!
//! A [`SnapshotCache`] holds one `Arc<Snapshot>` tagged with the
//! [`minidb::Table::epoch`] it was encoded at. [`SnapshotCache::snapshot`]
//! answers from the cache when the epochs match (zero encode work for
//! repeat detects over an unchanged table) and re-encodes otherwise. For
//! callers that *know* their deltas — the data monitor's update stream, the
//! repair loop's cell edits — the `note_*` methods patch the cached
//! snapshot in lock-step with the table instead of re-encoding:
//!
//! * `note_insert` appends the encoded row, interning novel values into the
//!   existing per-column dictionaries;
//! * `note_delete` swap-removes the row's snapshot position (detection is
//!   order-insensitive after `normalized()`);
//! * `note_set_cell` re-encodes the single touched cell.
//!
//! Patches are cheap but monotone — dictionaries only grow, and a long
//! patch history accumulates codes no live row references. Past a delta
//! threshold (a fraction of the snapshot's rows) the cache drops the
//! snapshot and the next access pays one full re-encode, resetting the
//! bookkeeping. Every `note_*` verifies the table is exactly one epoch
//! ahead of the snapshot (`note_set_cells` replays a batch of k edits
//! against a k-epoch gap); any other gap — a mutation the caller didn't
//! report — invalidates the cache, so it can never silently serve stale
//! data.
//!
//! On top of the snapshot the cache keeps **per-column epochs** (when did
//! this column's content last change? when did the row set last change?)
//! and [`detect_cached`] memoizes each CFD's decoded detection result
//! against them: a repeat detect re-evaluates only the CFDs whose columns
//! were touched since their fragment was computed and replays the rest —
//! so a monitoring loop that mutates one column re-scans one rule, not
//! the whole constraint set.

use std::sync::{Arc, OnceLock};

use cfd::{BoundCfd, Cfd, CfdResult};
use detect::fxhash::FxHashMap;
use detect::ViolationReport;
use minidb::{RowId, Table, Value};

use crate::detect::{
    detect_constant, needed_columns, resolve, variable_groups_threaded, violating_groups,
    DecodedGroup, Resolved,
};
use crate::snapshot::Snapshot;
use crate::spill::ChunkStore;

/// Global-registry handles for the cache's telemetry, resolved once per
/// process. Every [`SnapshotCache`] instance keeps its own counters for
/// the regression probes ([`SnapshotCache::encodes`] & co.) *and* mirrors
/// each increment here, so `obs::snapshot()` aggregates across all caches
/// — every server, shard, and monitor in the process. (Full-encode counts
/// are not mirrored here: `colstore_snapshot_encodes_total` lives at the
/// [`Snapshot::projected`] funnel itself, where it also catches the
/// encodes that bypass any cache.)
struct CacheObs {
    hits: Arc<obs::Counter>,
    misses: Arc<obs::Counter>,
    patches: Arc<obs::Counter>,
    rebuild_fallbacks: Arc<obs::Counter>,
    batch_rows: Arc<obs::Histogram>,
    fragments_computed: Arc<obs::Counter>,
    fragments_reused: Arc<obs::Counter>,
    spill_chunks: Arc<obs::Counter>,
}

fn cache_obs() -> &'static CacheObs {
    static OBS: OnceLock<CacheObs> = OnceLock::new();
    OBS.get_or_init(|| CacheObs {
        hits: obs::counter("colstore_snapshot_cache_hits_total"),
        misses: obs::counter("colstore_snapshot_cache_misses_total"),
        patches: obs::counter("colstore_snapshot_patches_total"),
        rebuild_fallbacks: obs::counter("colstore_snapshot_rebuild_fallbacks_total"),
        batch_rows: obs::histogram("colstore_note_batch_rows"),
        fragments_computed: obs::counter("colstore_detect_fragments_computed_total"),
        fragments_reused: obs::counter("colstore_detect_fragments_reused_total"),
        spill_chunks: obs::counter("colstore_spill_chunks_total"),
    })
}

/// One reported mutation of the observed table — the unit of
/// [`SnapshotCache::note_batch`]. Mirrors the `note_insert` /
/// `note_delete` / `note_set_cell` calls, but carried as data so a whole
/// ingest batch can be replayed in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableDelta {
    /// A row was inserted.
    Inserted(RowId),
    /// A row was deleted.
    Deleted(RowId),
    /// Cell `(row, col)` was overwritten.
    CellSet(RowId, usize),
}

/// Default fraction of snapshot rows that may be patched before the cache
/// falls back to a full rebuild.
const DEFAULT_DELTA_THRESHOLD: f64 = 0.25;
/// Patch-count floor below which the threshold never triggers (tiny tables
/// should not rebuild on every other update).
const MIN_DELTA: usize = 256;

/// The cached snapshot plus its maintenance bookkeeping.
struct Cached {
    snap: Arc<Snapshot>,
    /// Table epoch the snapshot mirrors.
    epoch: u64,
    /// `RowId → snapshot position`, built lazily at the first patch and
    /// maintained across swap-removes.
    pos: Option<FxHashMap<RowId, u32>>,
    /// Patches applied since the last full encode.
    patched: usize,
    /// Table epoch at which each column's *content* last changed (indexed
    /// by schema position; conservatively "now" after a full encode). A
    /// detect fragment computed at epoch `E` for a CFD over columns `C`
    /// stays valid while `rows_epoch ≤ E` and `col_epochs[c] ≤ E` ∀ c ∈ C.
    col_epochs: Vec<u64>,
    /// Table epoch at which the live-row *membership* last changed
    /// (inserts/deletes invalidate every CFD's fragment).
    rows_epoch: u64,
}

impl Cached {
    /// The position of `id`, building the index on first use.
    fn position(&mut self, id: RowId) -> Option<u32> {
        let index = self.pos.get_or_insert_with(|| {
            self.snap
                .row_ids()
                .iter()
                .enumerate()
                .map(|(p, &r)| (r, p as u32))
                .collect()
        });
        index.get(&id).copied()
    }
}

/// An epoch-versioned cache of one table's columnar snapshot.
///
/// The cache observes a single table lineage (it remembers the table name
/// and epoch); see [`minidb::Table::epoch`] for the clone caveat. It keeps
/// the union of every projection ever requested, so alternating CFD sets
/// converge on one snapshot instead of thrashing.
pub struct SnapshotCache {
    cached: Option<Cached>,
    delta_threshold: f64,
    /// Rows per code chunk for snapshots this cache encodes; `None` uses
    /// the process default ([`crate::column::default_chunk_rows`]).
    chunk_rows: Option<usize>,
    encodes: u64,
    patches: u64,
    /// Per-CFD detect fragments memoized by [`detect_cached`], each tagged
    /// with the epoch it was computed at. Entries survive snapshot rebuilds
    /// (the epoch bookkeeping decides their freshness, not the rebuild).
    memo: Vec<MemoEntry>,
    fragments_computed: u64,
    fragments_reused: u64,
    /// Cold-chunk spill target and resident-byte budget: when set, every
    /// snapshot this cache serves is evicted down to the budget first
    /// (oldest chunks out, [`Snapshot::spill_to_budget`]).
    spill: Option<(Arc<dyn ChunkStore>, usize)>,
    spilled_chunks: u64,
}

impl Default for SnapshotCache {
    fn default() -> SnapshotCache {
        SnapshotCache::new()
    }
}

impl SnapshotCache {
    /// Empty cache with the default delta threshold.
    pub fn new() -> SnapshotCache {
        SnapshotCache {
            cached: None,
            delta_threshold: DEFAULT_DELTA_THRESHOLD,
            chunk_rows: None,
            encodes: 0,
            patches: 0,
            memo: Vec::new(),
            fragments_computed: 0,
            fragments_reused: 0,
            spill: None,
            spilled_chunks: 0,
        }
    }

    /// Override the patched-rows fraction past which the cache rebuilds
    /// instead of patching further (default 0.25). `0.0` disables patching
    /// entirely — every mutation falls back to a full re-encode — which is
    /// how the equivalence tests pin the fallback path.
    pub fn with_delta_threshold(mut self, threshold: f64) -> SnapshotCache {
        self.delta_threshold = threshold;
        self
    }

    /// Override the rows-per-chunk size of snapshots this cache encodes
    /// (default: the process-wide [`crate::column::default_chunk_rows`]).
    /// Smaller chunks mean more detection morsels; the equivalence
    /// property tests sweep this down to 1.
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> SnapshotCache {
        assert!(chunk_rows >= 1, "chunk_rows must be positive");
        self.chunk_rows = Some(chunk_rows);
        self
    }

    /// Evict cold sealed chunks of served snapshots to `store` until at
    /// most `budget` resident code bytes remain. Detection faults spilled
    /// chunks back page-at-a-time through the store; patches fault their
    /// chunk back to residency (re-evicted at the next serve if the
    /// budget is exceeded again).
    pub fn with_spill(mut self, store: Arc<dyn ChunkStore>, budget: usize) -> SnapshotCache {
        self.spill = Some((store, budget));
        self
    }

    /// Number of chunk evictions this cache has performed.
    pub fn spilled_chunks(&self) -> u64 {
        self.spilled_chunks
    }

    /// Full-column snapshot of `table`: cached when the epoch matches,
    /// freshly encoded (and cached) otherwise.
    pub fn snapshot(&mut self, table: &Table) -> Arc<Snapshot> {
        self.snapshot_for(table, None)
    }

    /// Snapshot covering at least the columns in `cols` — the projected
    /// variant the detector uses. A cached snapshot missing some of `cols`
    /// is re-encoded with the union of its columns and `cols`.
    pub fn snapshot_projected(&mut self, table: &Table, cols: &[usize]) -> Arc<Snapshot> {
        self.snapshot_for(table, Some(cols))
    }

    fn snapshot_for(&mut self, table: &Table, cols: Option<&[usize]>) -> Arc<Snapshot> {
        let sp = obs::trace::span("cache.snapshot");
        let hit = self.cached.as_ref().is_some_and(|c| {
            c.epoch == table.epoch() && c.snap.name() == table.name() && covers(&c.snap, cols)
        });
        if hit {
            cache_obs().hits.inc();
            sp.attr("decision", "hit");
            // Patches fault chunks back to residency; re-evict before
            // serving so a long patch history cannot creep past the budget.
            self.enforce_spill_budget();
            let c = self.cached.as_ref().expect("hit implies cached");
            return Arc::clone(&c.snap);
        }
        cache_obs().misses.inc();
        sp.attr("decision", "encode");
        // Fragment freshness is pure epoch arithmetic, so it can only be
        // trusted across a re-encode that provably stays on the same table
        // lineage moving forward (same name, epoch not regressed). Anything
        // else — a different table handed to this cache, an epoch that went
        // backwards, or a cache that was invalidated and lost its identity
        // — drops the memo wholesale; a fragment whose epoch is ≥ the new
        // table's epoch would otherwise replay another table's violations.
        let same_lineage = self
            .cached
            .as_ref()
            .is_some_and(|c| c.snap.name() == table.name() && table.epoch() >= c.epoch);
        if !same_lineage {
            self.memo.clear();
        }
        // Re-encode with the union of the requested and previously encoded
        // columns, so the cached projection grows monotonically.
        let chunk_rows = self
            .chunk_rows
            .unwrap_or_else(crate::column::default_chunk_rows);
        let union: Vec<usize> = match cols {
            None => (0..table.schema().arity()).collect(),
            Some(cols) => {
                let mut union: Vec<usize> = cols.to_vec();
                if let Some(c) = &self.cached {
                    if c.snap.name() == table.name() {
                        union.extend(c.snap.encoded_columns().map(|(i, _)| i));
                    }
                }
                union.sort_unstable();
                union.dedup();
                union
            }
        };
        let mut snap = Snapshot::projected_with_chunk(table, &union, chunk_rows);
        self.encodes += 1;
        // Evict before the Arc is shared out: the fresh encode is the one
        // moment the whole snapshot is provably unaliased.
        if let Some((store, budget)) = &self.spill {
            if snap.resident_bytes() > *budget {
                match snap.spill_to_budget(store, *budget) {
                    Ok(n) => {
                        self.spilled_chunks += n as u64;
                        cache_obs().spill_chunks.add(n as u64);
                    }
                    Err(e) => {
                        eprintln!("WARNING: chunk spill failed ({e}); keeping chunks resident")
                    }
                }
            }
        }
        let snap = Arc::new(snap);
        // Column/row epochs restart at "changed now": any fragment computed
        // strictly before this epoch is conservatively stale (we no longer
        // know which columns stayed untouched across the gap).
        self.cached = Some(Cached {
            snap: Arc::clone(&snap),
            epoch: table.epoch(),
            pos: None,
            patched: 0,
            col_epochs: vec![table.epoch(); table.schema().arity()],
            rows_epoch: table.epoch(),
        });
        snap
    }

    /// Re-evict the cached snapshot down to the spill budget (no-op
    /// without a budget, or while already within it). A snapshot still
    /// shared with outside holders is unshared first (`Arc::make_mut` —
    /// an Arc-bump-deep column clone); their view keeps its residency.
    fn enforce_spill_budget(&mut self) {
        let Some((store, budget)) = &self.spill else {
            return;
        };
        let Some(c) = &mut self.cached else {
            return;
        };
        if c.snap.resident_bytes() <= *budget {
            return;
        }
        let sp = obs::trace::span("cache.spill");
        match Arc::make_mut(&mut c.snap).spill_to_budget(store, *budget) {
            Ok(n) => {
                self.spilled_chunks += n as u64;
                cache_obs().spill_chunks.add(n as u64);
                sp.attr("chunks", n);
            }
            Err(e) => eprintln!("WARNING: chunk spill failed ({e}); keeping chunks resident"),
        }
    }

    /// Epoch of the cached snapshot, if one is held.
    pub fn epoch(&self) -> Option<u64> {
        self.cached.as_ref().map(|c| c.epoch)
    }

    /// Number of full snapshot encodes performed so far — the probe the
    /// steady-state regression tests watch.
    pub fn encodes(&self) -> u64 {
        self.encodes
    }

    /// Number of incremental patches applied so far.
    pub fn patches(&self) -> u64 {
        self.patches
    }

    /// Number of per-CFD detect fragments computed by [`detect_cached`].
    pub fn fragments_computed(&self) -> u64 {
        self.fragments_computed
    }

    /// Number of per-CFD detect fragments replayed from the memo (their
    /// columns and the row set were untouched since they were computed).
    pub fn fragments_reused(&self) -> u64 {
        self.fragments_reused
    }

    /// Drop the cached snapshot and the detect memo; the next access pays
    /// a full encode and a full detect.
    pub fn invalidate(&mut self) {
        self.cached = None;
        self.memo.clear();
    }

    /// Is a result computed at `epoch` over columns `cols` (schema
    /// positions) still current? True iff the live-row membership and every
    /// one of those columns are unchanged since then — the freshness probe
    /// behind [`detect_cached`]'s memo, public so external per-CFD caches
    /// (a cluster shard's partial-export memo) can ride the same epoch
    /// bookkeeping.
    pub fn fragment_fresh(&self, epoch: u64, cols: &[usize]) -> bool {
        let Some(c) = &self.cached else {
            return false;
        };
        c.rows_epoch <= epoch
            && cols
                .iter()
                .all(|&col| c.col_epochs.get(col).is_some_and(|&e| e <= epoch))
    }

    /// Record that `id` was just inserted into `table` (call *after* the
    /// insert): appends the encoded row to the cached snapshot.
    pub fn note_insert(&mut self, table: &Table, id: RowId) {
        let Some(c) = patchable(&mut self.cached, self.delta_threshold, table, 1) else {
            return;
        };
        let Ok(row) = table.get(id) else {
            self.cached = None;
            return;
        };
        let pos = c.snap.n_rows() as u32;
        Arc::make_mut(&mut c.snap).append_row(id, row);
        if let Some(ix) = &mut c.pos {
            ix.insert(id, pos);
        }
        c.epoch = table.epoch();
        c.rows_epoch = table.epoch();
        c.patched += 1;
        self.patches += 1;
        cache_obs().patches.inc();
    }

    /// Record that `id` was just deleted from `table` (call *after* the
    /// delete): swap-removes the row's snapshot position.
    pub fn note_delete(&mut self, table: &Table, id: RowId) {
        let Some(c) = patchable(&mut self.cached, self.delta_threshold, table, 1) else {
            return;
        };
        let Some(pos) = c.position(id) else {
            self.cached = None; // unknown row: the stream missed an insert
            return;
        };
        let moved = Arc::make_mut(&mut c.snap).swap_remove_row(pos as usize);
        let ix = c.pos.as_mut().expect("index built by position()");
        ix.remove(&id);
        if let Some(m) = moved {
            ix.insert(m, pos);
        }
        c.epoch = table.epoch();
        c.rows_epoch = table.epoch();
        c.patched += 1;
        self.patches += 1;
        cache_obs().patches.inc();
    }

    /// Record that cell (`id`, `col`) of `table` was just overwritten (call
    /// *after* the update): re-encodes the one cell, interning a novel
    /// value into the column's dictionary. Columns outside the cached
    /// projection advance the epoch without patch work — the snapshot never
    /// claimed to represent them.
    pub fn note_set_cell(&mut self, table: &Table, id: RowId, col: usize) {
        self.note_set_cells(table, &[(id, col)]);
    }

    /// Record a *batch* of cell overwrites applied since the snapshot was
    /// last in sync — the replay path for a repair pass whose edits were
    /// not reported one by one. The table must be exactly `cells.len()`
    /// epochs ahead of the snapshot (one epoch per overwrite); any other
    /// gap means unreported mutations and invalidates the cache.
    pub fn note_set_cells(&mut self, table: &Table, cells: &[(RowId, usize)]) {
        if cells.is_empty() {
            return;
        }
        let steps = cells.len() as u64;
        let Some(c) = patchable(&mut self.cached, self.delta_threshold, table, steps) else {
            return;
        };
        for &(id, col) in cells {
            let Some(pos) = c.position(id) else {
                self.cached = None;
                return;
            };
            if let Some(e) = c.col_epochs.get_mut(col) {
                *e = table.epoch();
            }
            if c.snap.has_column(col) {
                let Ok(value) = table.cell(id, col) else {
                    self.cached = None;
                    return;
                };
                Arc::make_mut(&mut c.snap).set_cell(pos as usize, col, value);
                c.patched += 1;
                self.patches += 1;
                cache_obs().patches.inc();
            }
        }
        c.epoch = table.epoch();
    }

    /// Replay a whole mutation batch against the cached snapshot in one
    /// pass — the batch-ingest entry point behind
    /// `QualityBackend::apply_batch`.
    ///
    /// Semantically equal to calling the per-mutation `note_*` methods in
    /// `deltas` order (the table must be exactly `deltas.len()` epochs
    /// ahead of the snapshot), but the bookkeeping is amortized:
    ///
    /// * one epoch-gap check for the whole batch;
    /// * insert runs appended with one copy-on-write unsharing and one
    ///   reservation per column ([`Snapshot::append_rows`]);
    /// * **batch-local position resolution**: the batch knows every row
    ///   it touches up front, so when the cache's persistent `RowId → pos`
    ///   index was never built, the targets are resolved in a single scan
    ///   of the snapshot's row ids instead of building (and then
    ///   maintaining) the full index — per-row application cannot do
    ///   this, because it never sees past its current mutation.
    ///
    /// The replay reads the table's *current* values. A row inserted and
    /// deleted within the same batch leaves no value to read, so that
    /// (rare) shape invalidates the cache and the next access re-encodes
    /// — never a correctness hazard, exactly the unreported-mutation
    /// fallback.
    pub fn note_batch(&mut self, table: &Table, deltas: &[TableDelta]) {
        if deltas.is_empty() {
            return;
        }
        cache_obs().batch_rows.record(deltas.len() as u64);
        let steps = deltas.len() as u64;
        let Some(c) = patchable(&mut self.cached, self.delta_threshold, table, steps) else {
            return;
        };
        let epoch = table.epoch();

        // Where does each targeted row sit? Ride (and maintain) the
        // persistent index when it exists; otherwise resolve exactly the
        // batch's targets in one scan. `u32::MAX` marks a target not in
        // the pre-batch snapshot — it must be appended by an earlier
        // insert of this batch, or the stream missed a mutation.
        const UNRESOLVED: u32 = u32::MAX;
        let use_shared = c.pos.is_some();
        let mut local: FxHashMap<RowId, u32> = FxHashMap::default();
        if !use_shared {
            for d in deltas {
                if let TableDelta::Deleted(id) | TableDelta::CellSet(id, _) = d {
                    local.insert(*id, UNRESOLVED);
                }
            }
            if !local.is_empty() {
                for (p, id) in c.snap.row_ids().iter().enumerate() {
                    if let Some(slot) = local.get_mut(id) {
                        *slot = p as u32;
                    }
                }
            }
        }

        let mut i = 0;
        while i < deltas.len() {
            match deltas[i] {
                TableDelta::Inserted(_) => {
                    // Maximal insert run → one bulk append.
                    let start = i;
                    while let Some(TableDelta::Inserted(_)) = deltas.get(i) {
                        i += 1;
                    }
                    let mut rows: Vec<(RowId, &[Value])> = Vec::with_capacity(i - start);
                    for d in &deltas[start..i] {
                        let TableDelta::Inserted(id) = *d else {
                            unreachable!("run holds only inserts");
                        };
                        let Ok(row) = table.get(id) else {
                            // Inserted and deleted within one batch: the
                            // values are unrecoverable, fall back.
                            self.cached = None;
                            return;
                        };
                        rows.push((id, row));
                    }
                    let base = c.snap.n_rows() as u32;
                    if use_shared {
                        let ix = c.pos.as_mut().expect("use_shared checked");
                        for (off, (id, _)) in rows.iter().enumerate() {
                            ix.insert(*id, base + off as u32);
                        }
                    } else if !local.is_empty() {
                        // A later delta may target a row this run appends.
                        for (off, (id, _)) in rows.iter().enumerate() {
                            if let Some(slot) = local.get_mut(id) {
                                *slot = base + off as u32;
                            }
                        }
                    }
                    Arc::make_mut(&mut c.snap).append_rows(&rows);
                    c.rows_epoch = epoch;
                    c.patched += rows.len();
                    self.patches += rows.len() as u64;
                    cache_obs().patches.add(rows.len() as u64);
                }
                TableDelta::Deleted(id) => {
                    i += 1;
                    let pos = if use_shared {
                        c.position(id)
                    } else {
                        local.get(&id).copied().filter(|&p| p != UNRESOLVED)
                    };
                    let Some(pos) = pos else {
                        self.cached = None;
                        return;
                    };
                    let moved = Arc::make_mut(&mut c.snap).swap_remove_row(pos as usize);
                    // Only the swapped-in last row changes position;
                    // track it in whichever resolver is active.
                    if use_shared {
                        let ix = c.pos.as_mut().expect("use_shared checked");
                        ix.remove(&id);
                        if let Some(m) = moved {
                            ix.insert(m, pos);
                        }
                    } else {
                        local.insert(id, UNRESOLVED);
                        if let Some(m) = moved {
                            if let Some(slot) = local.get_mut(&m) {
                                *slot = pos;
                            }
                        }
                    }
                    c.rows_epoch = epoch;
                    c.patched += 1;
                    self.patches += 1;
                    cache_obs().patches.inc();
                }
                TableDelta::CellSet(id, col) => {
                    i += 1;
                    let pos = if use_shared {
                        c.position(id)
                    } else {
                        local.get(&id).copied().filter(|&p| p != UNRESOLVED)
                    };
                    let Some(pos) = pos else {
                        self.cached = None;
                        return;
                    };
                    if let Some(e) = c.col_epochs.get_mut(col) {
                        *e = epoch;
                    }
                    if c.snap.has_column(col) {
                        let Ok(value) = table.cell(id, col) else {
                            self.cached = None;
                            return;
                        };
                        Arc::make_mut(&mut c.snap).set_cell(pos as usize, col, value);
                        c.patched += 1;
                        self.patches += 1;
                        cache_obs().patches.inc();
                    }
                }
            }
        }
        c.epoch = epoch;
    }
}

/// Hand out the cached snapshot for patching when it is exactly `steps`
/// epochs behind `table` and under the patch budget; otherwise invalidate
/// and return `None` (the caller's mutation stream missed an update, or
/// the threshold was crossed — either way the next access re-encodes).
fn patchable<'a>(
    cached: &'a mut Option<Cached>,
    threshold: f64,
    table: &Table,
    steps: u64,
) -> Option<&'a mut Cached> {
    let Some(c) = cached else {
        return None;
    };
    let in_step = c.epoch + steps == table.epoch() && c.snap.name() == table.name();
    // Patch budget since the last full encode: a fraction of the rows,
    // floored so tiny tables still amortize, zero when disabled.
    let budget = if threshold <= 0.0 {
        0
    } else {
        (((c.snap.n_rows() as f64) * threshold) as usize).max(MIN_DELTA)
    };
    if !in_step || c.patched + steps as usize > budget {
        *cached = None;
        cache_obs().rebuild_fallbacks.inc();
        obs::trace::note("cache", "rebuild_fallback");
        return None;
    }
    obs::trace::note("cache", "patch");
    cached.as_mut()
}

/// Does the snapshot hold every column the caller asked for (`None` = all)?
fn covers(snap: &Snapshot, cols: Option<&[usize]>) -> bool {
    match cols {
        None => (0..snap.schema().arity()).all(|c| snap.has_column(c)),
        Some(cols) => cols.iter().all(|&c| snap.has_column(c)),
    }
}

/// One CFD's detection result, decoded and detached from any snapshot, plus
/// the epoch it reflects. Replaying a fragment into a report is a clone of
/// the decoded rows — no scan, no grouping, no decoding.
struct MemoEntry {
    cfd: Cfd,
    /// Table epoch the fragment was computed at.
    epoch: u64,
    /// Violating rows of a constant-RHS CFD (sorted by row id).
    singles: Vec<RowId>,
    /// Violating groups of a variable CFD, with member multiplicities.
    groups: Vec<DecodedGroup>,
}

impl MemoEntry {
    fn compute(snap: &Snapshot, cfd: &Cfd, b: &BoundCfd, epoch: u64) -> MemoEntry {
        let mut singles = Vec::new();
        let mut groups = Vec::new();
        if let Some(r) = resolve(snap, b) {
            if b.cfd.rhs_pat.constant().is_some() {
                let mut scratch = ViolationReport::default();
                detect_constant(snap, 0, &r, &mut scratch);
                singles = scratch.dirty_rows();
            } else {
                groups = violating_groups(snap, b, &r);
            }
        }
        MemoEntry {
            cfd: cfd.clone(),
            epoch,
            singles,
            groups,
        }
    }

    fn replay(&self, cfd_idx: usize, report: &mut ViolationReport) {
        for &row in &self.singles {
            report.push_single(cfd_idx, row);
        }
        for (key, rows, own) in &self.groups {
            report.push_multi_shared(cfd_idx, key.clone(), Arc::clone(rows), own);
        }
    }
}

/// Detect all violations of `cfds` in `table` through the cache: repeat
/// calls on an unchanged (or patched-in-step) table do zero encode work,
/// and per-CFD results are memoized against the per-column epochs — a CFD
/// whose columns (and the row set) are untouched since its last
/// evaluation replays its memoized fragment instead of re-scanning.
/// Output is `normalized()`-equal to [`crate::detect_columnar`] and
/// [`detect::detect_native`].
pub fn detect_cached(
    cache: &mut SnapshotCache,
    table: &Table,
    cfds: &[Cfd],
) -> CfdResult<ViolationReport> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let snap = cache.snapshot_projected(table, &needed_columns(&bound));
    let epoch = table.epoch();
    // The memo is rebuilt per call: fresh entries for this CFD set carry
    // over, everything else (stale fragments, CFDs no longer checked) is
    // dropped — memory stays bounded by one fragment per active CFD.
    let mut old = std::mem::take(&mut cache.memo);
    let mut report = ViolationReport::default();
    for (idx, b) in bound.iter().enumerate() {
        let sp = obs::trace::span("detect.cfd");
        sp.attr("cfd", idx);
        let cols: Vec<usize> = b.lhs_cols.iter().copied().chain([b.rhs_col]).collect();
        let entry = match old
            .iter()
            .position(|e| e.cfd == cfds[idx] && cache.fragment_fresh(e.epoch, &cols))
        {
            Some(p) => {
                cache.fragments_reused += 1;
                cache_obs().fragments_reused.inc();
                sp.attr("memo", "hit");
                old.swap_remove(p)
            }
            None => {
                cache.fragments_computed += 1;
                cache_obs().fragments_computed.inc();
                sp.attr("memo", "recompute");
                MemoEntry::compute(&snap, &cfds[idx], b, epoch)
            }
        };
        entry.replay(idx, &mut report);
        cache.memo.push(entry);
    }
    Ok(report)
}

/// [`detect_cached`] with an explicit detection worker count. `threads <=
/// 1` *is* [`detect_cached`] — same code path, same counters. More workers
/// keep the whole memo/epoch bookkeeping (fresh fragments still replay
/// without a scan) but compute the stale *variable* fragments as (CFD ×
/// chunk) morsels on the work-stealing pool; stale constant fragments stay
/// serial (their branch-free scan is memory-bound). Output stays
/// `normalized()`-equal at every worker count.
pub fn detect_cached_threads(
    cache: &mut SnapshotCache,
    table: &Table,
    cfds: &[Cfd],
    threads: usize,
) -> CfdResult<ViolationReport> {
    if threads.max(1) == 1 {
        return detect_cached(cache, table, cfds);
    }
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let snap = cache.snapshot_projected(table, &needed_columns(&bound));
    let epoch = table.epoch();
    let mut old = std::mem::take(&mut cache.memo);
    // Classify every CFD first: fresh fragments lift out of the old memo,
    // stale constants (and vacuous rules) compute inline, stale variable
    // CFDs collect for one fan-out over the pool.
    let mut entries: Vec<Option<MemoEntry>> = (0..bound.len()).map(|_| None).collect();
    let mut stale_vars: Vec<(usize, &BoundCfd, Resolved)> = Vec::new();
    for (idx, b) in bound.iter().enumerate() {
        let sp = obs::trace::span("detect.cfd");
        sp.attr("cfd", idx);
        let cols: Vec<usize> = b.lhs_cols.iter().copied().chain([b.rhs_col]).collect();
        if let Some(p) = old
            .iter()
            .position(|e| e.cfd == cfds[idx] && cache.fragment_fresh(e.epoch, &cols))
        {
            cache.fragments_reused += 1;
            cache_obs().fragments_reused.inc();
            sp.attr("memo", "hit");
            entries[idx] = Some(old.swap_remove(p));
            continue;
        }
        cache.fragments_computed += 1;
        cache_obs().fragments_computed.inc();
        sp.attr("memo", "recompute");
        if b.cfd.rhs_pat.is_wild() {
            if let Some(r) = resolve(&snap, b) {
                stale_vars.push((idx, b, r));
                continue;
            }
        }
        // Constant CFDs and vacuous variable CFDs (no resolvable LHS).
        entries[idx] = Some(MemoEntry::compute(&snap, &cfds[idx], b, epoch));
    }
    if !stale_vars.is_empty() {
        let per_var: Vec<Vec<DecodedGroup>> = if snap.n_chunks() >= 2 {
            variable_groups_threaded(&snap, &stale_vars, threads)
        } else {
            // Single chunk: nothing to fan out.
            stale_vars
                .iter()
                .map(|(_, b, r)| violating_groups(&snap, b, r))
                .collect()
        };
        for ((idx, ..), groups) in stale_vars.iter().zip(per_var) {
            entries[*idx] = Some(MemoEntry {
                cfd: cfds[*idx].clone(),
                epoch,
                singles: Vec::new(),
                groups,
            });
        }
    }
    let mut report = ViolationReport::default();
    let memo: Vec<MemoEntry> = entries
        .into_iter()
        .map(|e| e.expect("every CFD classified"))
        .collect();
    for (idx, entry) in memo.iter().enumerate() {
        entry.replay(idx, &mut report);
    }
    cache.memo = memo;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect_on_snapshot;
    use cfd::parse::parse_cfds;
    use detect::detect_native;
    use minidb::{Schema, Value};

    fn table() -> Table {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B", "C"]));
        for (a, b, c) in [("x", "1", "p"), ("y", "2", "q"), ("x", "1", "p")] {
            t.insert(vec![Value::str(a), Value::str(b), Value::str(c)])
                .unwrap();
        }
        t
    }

    #[test]
    fn repeat_snapshots_encode_once() {
        let t = table();
        let mut cache = SnapshotCache::new();
        let s1 = cache.snapshot(&t);
        let s2 = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 1);
        assert!(Arc::ptr_eq(&s1, &s2), "cache hit returns the same Arc");
    }

    #[test]
    fn mutation_without_note_invalidates() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        t.update_cell(RowId(0), 0, Value::str("z")).unwrap();
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 2, "unreported mutation forces re-encode");
        assert_eq!(s.column(0).value_at(0), Value::str("z"));
    }

    #[test]
    fn insert_patch_appends_and_interns() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        let id = t
            .insert(vec![Value::str("novel"), Value::Null, Value::str("p")])
            .unwrap();
        cache.note_insert(&t, id);
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 1, "patched, not re-encoded");
        assert_eq!(cache.patches(), 1);
        assert_eq!(s.n_rows(), 4);
        assert_eq!(s.row_id(3), id);
        assert_eq!(s.column(0).value_at(3), Value::str("novel"));
        assert!(s.column(1).is_null_at(3));
    }

    #[test]
    fn delete_patch_swap_removes() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        t.delete(RowId(0)).unwrap();
        cache.note_delete(&t, RowId(0));
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 1);
        assert_eq!(s.n_rows(), 2);
        // Last row swapped into position 0.
        assert_eq!(s.row_id(0), RowId(2));
        assert_eq!(s.row_id(1), RowId(1));
        // Follow-up delete of the moved row still resolves its position.
        t.delete(RowId(2)).unwrap();
        cache.note_delete(&t, RowId(2));
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 1);
        assert_eq!(s.row_ids(), &[RowId(1)]);
    }

    #[test]
    fn set_cell_patch_reencodes_one_cell() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        t.update_cell(RowId(1), 2, Value::str("fresh")).unwrap();
        cache.note_set_cell(&t, RowId(1), 2);
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 1);
        assert_eq!(s.column(2).value_at(1), Value::str("fresh"));
    }

    #[test]
    fn patches_do_not_disturb_handed_out_snapshots() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        let before = cache.snapshot(&t);
        t.update_cell(RowId(0), 0, Value::str("after")).unwrap();
        cache.note_set_cell(&t, RowId(0), 0);
        assert_eq!(
            before.column(0).value_at(0),
            Value::str("x"),
            "copy-on-write: the old Arc still sees the old value"
        );
        assert_eq!(
            cache.snapshot(&t).column(0).value_at(0),
            Value::str("after")
        );
    }

    #[test]
    fn zero_threshold_disables_patching() {
        let mut t = table();
        let mut cache = SnapshotCache::new().with_delta_threshold(0.0);
        cache.snapshot(&t);
        let id = t
            .insert(vec![Value::str("a"), Value::str("b"), Value::str("c")])
            .unwrap();
        cache.note_insert(&t, id);
        assert_eq!(cache.patches(), 0);
        cache.snapshot(&t);
        assert_eq!(cache.encodes(), 2, "fallback path re-encodes");
    }

    #[test]
    fn projection_grows_monotonically() {
        let t = table();
        let mut cache = SnapshotCache::new();
        let s = cache.snapshot_projected(&t, &[0]);
        assert!(s.has_column(0) && !s.has_column(2));
        let s = cache.snapshot_projected(&t, &[2]);
        assert_eq!(cache.encodes(), 2);
        assert!(s.has_column(0) && s.has_column(2), "union of projections");
        cache.snapshot_projected(&t, &[0, 2]);
        assert_eq!(cache.encodes(), 2, "covered projection is a cache hit");
    }

    #[test]
    fn detect_cached_matches_native_across_patches() {
        let mut t = table();
        let cfds = parse_cfds("r: [A] -> [B]\nr: [A='x'] -> [C='p']").unwrap();
        let mut cache = SnapshotCache::new();
        assert!(detect_cached(&mut cache, &t, &cfds).unwrap().is_empty());
        // Violate both rules through patched mutations.
        let id = t
            .insert(vec![Value::str("x"), Value::str("9"), Value::str("zz")])
            .unwrap();
        cache.note_insert(&t, id);
        let got = detect_cached(&mut cache, &t, &cfds).unwrap().normalized();
        let want = detect_native(&t, &cfds).unwrap().normalized();
        assert_eq!(got, want);
        assert!(!got.is_empty());
        assert_eq!(cache.encodes(), 1, "detects rode the patched snapshot");
    }

    #[test]
    fn untouched_cfds_replay_their_fragments() {
        let mut t = table();
        // Rule 1 over (A, B); rule 2 over (A, C); rule 3 constant over C.
        let cfds = parse_cfds("r: [A] -> [B]\nr: [A] -> [C]\nr: [A='x'] -> [C='p']").unwrap();
        let mut cache = SnapshotCache::new();
        detect_cached(&mut cache, &t, &cfds).unwrap();
        assert_eq!(cache.fragments_computed(), 3);
        // Unchanged table: all three fragments replay.
        detect_cached(&mut cache, &t, &cfds).unwrap();
        assert_eq!(cache.fragments_computed(), 3);
        assert_eq!(cache.fragments_reused(), 3);
        // Touch column B: only the (A, B) rule recomputes.
        t.update_cell(RowId(1), 1, Value::str("changed")).unwrap();
        cache.note_set_cell(&t, RowId(1), 1);
        let got = detect_cached(&mut cache, &t, &cfds).unwrap().normalized();
        assert_eq!(cache.fragments_computed(), 4);
        assert_eq!(cache.fragments_reused(), 5);
        assert_eq!(got, detect_native(&t, &cfds).unwrap().normalized());
        // An insert changes the row set: every fragment recomputes.
        let id = t
            .insert(vec![Value::str("x"), Value::str("1"), Value::str("q")])
            .unwrap();
        cache.note_insert(&t, id);
        let got = detect_cached(&mut cache, &t, &cfds).unwrap().normalized();
        assert_eq!(cache.fragments_computed(), 7);
        assert_eq!(got, detect_native(&t, &cfds).unwrap().normalized());
    }

    #[test]
    fn memo_survives_projection_growth_at_same_epoch() {
        let t = table();
        let ab = parse_cfds("r: [A] -> [B]").unwrap();
        let abc = parse_cfds("r: [A] -> [B]\nr: [A] -> [C]").unwrap();
        let mut cache = SnapshotCache::new();
        detect_cached(&mut cache, &t, &ab).unwrap();
        assert_eq!(cache.encodes(), 1);
        // The wider CFD set forces a re-encode (column C was projected
        // away) at the same epoch — the (A, B) fragment is still valid.
        let got = detect_cached(&mut cache, &t, &abc).unwrap().normalized();
        assert_eq!(cache.encodes(), 2);
        assert_eq!(cache.fragments_reused(), 1);
        assert_eq!(cache.fragments_computed(), 2);
        assert_eq!(got, detect_native(&t, &abc).unwrap().normalized());
    }

    #[test]
    fn memo_never_leaks_across_table_lineages() {
        // Fragments memoized for one table must not replay into the report
        // of a different table handed to the same cache — even when the new
        // table's epoch is *lower* than the fragment's (the epoch-arithmetic
        // blind spot the lineage check exists for).
        let mut dirty = Table::new("r", Schema::of_strings(&["A", "B", "C"]));
        for (a, c) in [("x", "p"), ("x", "q"), ("y", "p")] {
            dirty
                .insert(vec![Value::str(a), Value::str("1"), Value::str(c)])
                .unwrap();
        }
        // Push the dirty table's epoch above the clean table's.
        for _ in 0..8 {
            let id = dirty
                .insert(vec![Value::str("x"), Value::str("1"), Value::str("q")])
                .unwrap();
            dirty.delete(id).unwrap();
        }
        let cfds = parse_cfds("r: [A] -> [C]").unwrap();
        let mut cache = SnapshotCache::new();
        assert!(!detect_cached(&mut cache, &dirty, &cfds).unwrap().is_empty());
        // Same name, same schema, lower epoch, clean data.
        let mut clean = Table::new("r", Schema::of_strings(&["A", "B", "C"]));
        clean
            .insert(vec![Value::str("x"), Value::str("1"), Value::str("p")])
            .unwrap();
        assert!(clean.epoch() < dirty.epoch());
        let report = detect_cached(&mut cache, &clean, &cfds).unwrap();
        assert!(
            report.is_empty(),
            "stale fragment replayed into the clean table's report"
        );
    }

    #[test]
    fn unreported_mutation_invalidates_fragments() {
        let mut t = table();
        let cfds = parse_cfds("r: [A] -> [C]").unwrap();
        let mut cache = SnapshotCache::new();
        assert!(detect_cached(&mut cache, &t, &cfds).unwrap().is_empty());
        // Mutate without note_*: the stale fragment must not be replayed.
        t.update_cell(RowId(2), 2, Value::str("conflict")).unwrap();
        let got = detect_cached(&mut cache, &t, &cfds).unwrap().normalized();
        assert_eq!(got, detect_native(&t, &cfds).unwrap().normalized());
        assert!(!got.is_empty());
        assert_eq!(cache.fragments_reused(), 0);
    }

    #[test]
    fn note_batch_equals_per_mutation_notes() {
        // One batch of mixed mutations, replayed in one pass, must leave
        // the same snapshot a per-mutation note_* stream leaves.
        let mut t_batch = table();
        let mut t_steps = t_batch.clone();
        let mut batched = SnapshotCache::new();
        let mut stepped = SnapshotCache::new();
        batched.snapshot(&t_batch);
        stepped.snapshot(&t_steps);

        // Apply: two inserts, one cell set, one delete. The stepped arm
        // notes each mutation as it lands (lock-step); the batched arm
        // applies everything first and replays one batch.
        let mut deltas = Vec::new();
        for (a, b, c) in [("p", "7", "x"), ("q", "8", "y")] {
            let row = vec![Value::str(a), Value::str(b), Value::str(c)];
            let id = t_batch.insert(row.clone()).unwrap();
            deltas.push(TableDelta::Inserted(id));
            let id = t_steps.insert(row).unwrap();
            stepped.note_insert(&t_steps, id);
        }
        t_batch.update_cell(RowId(0), 1, Value::str("set")).unwrap();
        deltas.push(TableDelta::CellSet(RowId(0), 1));
        t_steps.update_cell(RowId(0), 1, Value::str("set")).unwrap();
        stepped.note_set_cell(&t_steps, RowId(0), 1);
        t_batch.delete(RowId(2)).unwrap();
        deltas.push(TableDelta::Deleted(RowId(2)));
        t_steps.delete(RowId(2)).unwrap();
        stepped.note_delete(&t_steps, RowId(2));

        batched.note_batch(&t_batch, &deltas);

        let a = batched.snapshot(&t_batch);
        let b = stepped.snapshot(&t_steps);
        assert_eq!(batched.encodes(), 1, "batch was patched, not re-encoded");
        assert_eq!(a.row_ids(), b.row_ids());
        for col in 0..3 {
            for pos in 0..a.n_rows() {
                assert_eq!(
                    a.column(col).value_at(pos),
                    b.column(col).value_at(pos),
                    "cell ({pos}, {col})"
                );
            }
        }
    }

    #[test]
    fn note_batch_detects_like_native_across_runs() {
        let mut t = table();
        let cfds = parse_cfds("r: [A] -> [B]\nr: [A='x'] -> [C='p']").unwrap();
        let mut cache = SnapshotCache::new();
        assert!(detect_cached(&mut cache, &t, &cfds).unwrap().is_empty());
        let mut deltas = Vec::new();
        let id = t
            .insert(vec![Value::str("x"), Value::str("9"), Value::str("zz")])
            .unwrap();
        deltas.push(TableDelta::Inserted(id));
        t.update_cell(RowId(1), 0, Value::str("x")).unwrap();
        deltas.push(TableDelta::CellSet(RowId(1), 0));
        cache.note_batch(&t, &deltas);
        let got = detect_cached(&mut cache, &t, &cfds).unwrap().normalized();
        let want = detect_native(&t, &cfds).unwrap().normalized();
        assert_eq!(got, want);
        assert!(!got.is_empty());
        assert_eq!(cache.encodes(), 1, "detect rode the batch-patched snapshot");
    }

    #[test]
    fn note_batch_insert_then_delete_same_row_falls_back() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        let id = t
            .insert(vec![Value::str("gone"), Value::Null, Value::Null])
            .unwrap();
        t.delete(id).unwrap();
        cache.note_batch(&t, &[TableDelta::Inserted(id), TableDelta::Deleted(id)]);
        // Unrecoverable replay → invalidated → next access re-encodes and
        // is correct.
        let s = cache.snapshot(&t);
        assert_eq!(cache.encodes(), 2);
        assert_eq!(s.n_rows(), 3);
    }

    #[test]
    fn note_batch_epoch_gap_invalidates() {
        let mut t = table();
        let mut cache = SnapshotCache::new();
        cache.snapshot(&t);
        let id = t
            .insert(vec![Value::str("a"), Value::str("b"), Value::str("c")])
            .unwrap();
        t.update_cell(id, 0, Value::str("unreported")).unwrap();
        // Batch reports only the insert; the table is 2 epochs ahead.
        cache.note_batch(&t, &[TableDelta::Inserted(id)]);
        cache.snapshot(&t);
        assert_eq!(cache.encodes(), 2, "partial report forces re-encode");
    }

    #[test]
    fn patched_and_rebuilt_snapshots_detect_identically() {
        let mut t = table();
        let cfds = parse_cfds("r: [A] -> [C]").unwrap();
        let mut patched = SnapshotCache::new();
        let mut rebuilt = SnapshotCache::new().with_delta_threshold(0.0);
        for cache in [&mut patched, &mut rebuilt] {
            cache.snapshot(&t);
        }
        t.update_cell(RowId(2), 2, Value::str("conflict")).unwrap();
        for cache in [&mut patched, &mut rebuilt] {
            cache.note_set_cell(&t, RowId(2), 2);
        }
        let a = detect_on_snapshot(&patched.snapshot(&t), &cfds)
            .unwrap()
            .normalized();
        let b = detect_on_snapshot(&rebuilt.snapshot(&t), &cfds)
            .unwrap()
            .normalized();
        assert_eq!(a, b);
        assert!(patched.encodes() < rebuilt.encodes());
    }
}
