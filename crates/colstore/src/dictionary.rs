//! Per-column value dictionaries.
//!
//! A [`Dictionary`] maps the distinct non-NULL values of one column to dense
//! `u32` codes `1..=n`, with code [`NULL_CODE`] (= 0) reserved for SQL NULL.
//! Equality of codes is exactly [`Value::strong_eq`] equality (the map is
//! keyed by `Value`, whose `Eq`/`Hash` impls are strong-equality: `3` and
//! `3.0` intern to the same code, NaN equals NaN), so integer comparisons
//! over codes reproduce the reference detector's grouping semantics bit for
//! bit.

use std::hash::{Hash, Hasher};

use minidb::Value;

use detect::fxhash::FxHasher;

/// The reserved code for SQL NULL.
pub const NULL_CODE: u32 = 0;

#[inline]
fn hash_value(v: &Value) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// A dense value ↔ code mapping for one column.
///
/// The index is a hand-rolled open-addressing table storing `(hash, code)`
/// pairs: interning is the hottest loop of the encode, and one linear-probe
/// array walk with a stored-hash compare beats the general `HashMap`
/// machinery measurably. Code 0 in a slot means empty ([`NULL_CODE`] never
/// enters the index).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    /// `values[i]` is the value with code `i + 1` (first-seen variant when
    /// cross-type strong-equal values occur).
    values: Vec<Value>,
    /// Power-of-two probe table of `(value hash, code)`.
    slots: Vec<(u64, u32)>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![(0, 0); new_cap]);
        let mask = self.mask();
        for (h, code) in old {
            if code == 0 {
                continue;
            }
            let mut idx = h as usize & mask;
            while self.slots[idx].1 != 0 {
                idx = (idx + 1) & mask;
            }
            self.slots[idx] = (h, code);
        }
    }

    /// Intern `v`, returning its code (assigning the next one on first
    /// sight). NULL always maps to [`NULL_CODE`]; the value is cloned only
    /// the first time it is seen.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if v.is_null() {
            return NULL_CODE;
        }
        if self.slots.len() < (self.values.len() + 1) * 8 / 7 + 1 {
            self.grow();
        }
        let h = hash_value(v);
        let mask = self.mask();
        let mut idx = h as usize & mask;
        loop {
            let (sh, code) = self.slots[idx];
            if code == 0 {
                let code = (self.values.len() + 1) as u32;
                self.values.push(v.clone());
                self.slots[idx] = (h, code);
                return code;
            }
            if sh == h && self.values[(code - 1) as usize].strong_eq(v) {
                return code;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Look up the code of `v` without interning. NULL yields
    /// `Some(NULL_CODE)`; a non-NULL value absent from the column yields
    /// `None` (no row can match it).
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        if v.is_null() {
            return Some(NULL_CODE);
        }
        if self.slots.is_empty() {
            return None;
        }
        let h = hash_value(v);
        let mask = self.mask();
        let mut idx = h as usize & mask;
        loop {
            let (sh, code) = self.slots[idx];
            if code == 0 {
                return None;
            }
            if sh == h && self.values[(code - 1) as usize].strong_eq(v) {
                return Some(code);
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Decode a code. [`NULL_CODE`] yields `None` (the caller renders NULL).
    pub fn value_of(&self, code: u32) -> Option<&Value> {
        if code == NULL_CODE {
            None
        } else {
            self.values.get((code - 1) as usize)
        }
    }

    /// Decode a code into an owned [`Value`], materializing NULL.
    pub fn decode(&self, code: u32) -> Value {
        match self.value_of(code) {
            Some(v) => v.clone(),
            None => Value::Null,
        }
    }

    /// Number of distinct non-NULL values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column held no non-NULL values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Bits needed to store any code of this dictionary (codes run
    /// `0..=len`). At least 1, so packed keys of all-empty columns still
    /// consume a slot.
    pub fn code_bits(&self) -> u32 {
        let max_code = self.values.len() as u32;
        (32 - max_code.leading_zeros()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut d = Dictionary::new();
        let a = d.intern(&Value::str("x"));
        let b = d.intern(&Value::str("y"));
        let a2 = d.intern(&Value::str("x"));
        assert_eq!(a, 1);
        assert_eq!(b, 2);
        assert_eq!(a, a2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.value_of(a), Some(&Value::str("x")));
    }

    #[test]
    fn null_is_the_sentinel() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern(&Value::Null), NULL_CODE);
        assert_eq!(d.code_of(&Value::Null), Some(NULL_CODE));
        assert!(d.value_of(NULL_CODE).is_none());
        assert!(d.decode(NULL_CODE).is_null());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn cross_type_strong_equality_shares_codes() {
        let mut d = Dictionary::new();
        let i = d.intern(&Value::Int(3));
        let f = d.intern(&Value::Float(3.0));
        assert_eq!(i, f, "3 and 3.0 are strong-equal and must share a code");
        assert_eq!(d.code_of(&Value::Float(3.0)), Some(i));
        let n1 = d.intern(&Value::Float(f64::NAN));
        let n2 = d.intern(&Value::Float(f64::NAN));
        assert_eq!(n1, n2, "NaN groups with NaN, as in strong_eq");
    }

    #[test]
    fn absent_values_have_no_code() {
        let mut d = Dictionary::new();
        d.intern(&Value::str("present"));
        assert_eq!(d.code_of(&Value::str("absent")), None);
    }

    #[test]
    fn code_bits_grow_with_cardinality() {
        let mut d = Dictionary::new();
        assert_eq!(d.code_bits(), 1);
        d.intern(&Value::Int(1));
        assert_eq!(d.code_bits(), 1); // codes {0, 1}
        d.intern(&Value::Int(2));
        assert_eq!(d.code_bits(), 2); // codes {0, 1, 2}
        for i in 3..=255 {
            d.intern(&Value::Int(i));
        }
        assert_eq!(d.code_bits(), 8);
    }
}
