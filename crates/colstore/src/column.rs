//! Dictionary-encoded columns, stored as fixed-size code chunks.
//!
//! A [`Column`] holds its `u32` codes as a list of **sealed** chunks (each
//! exactly `chunk_rows` long, immutable, behind `Arc`) plus one mutable
//! **tail** chunk. The chunked layout (polars' `ChunkedArray` is the
//! exemplar) buys two things at once:
//!
//! * **O(1) append** — pushing a value writes to the tail and seals it
//!   into an `Arc` when full; no copy-on-write unshare of the whole code
//!   vector, no matter how many snapshots still reference the column;
//! * **morsel-parallel scans** — a chunk is the unit of work for the
//!   work-stealing detection pool ([`crate::morsel`]); per-chunk partial
//!   states merge through the same exchange machinery shards use.
//!
//! Cloning a column bumps the sealed chunks' refcounts and memcpys only
//! the tail (< `chunk_rows` codes), so handed-out snapshots keep sharing
//! every sealed chunk with the live one for free.

use std::borrow::Cow;
use std::io;
use std::sync::{Arc, OnceLock};

use crate::dictionary::{Dictionary, NULL_CODE};
use crate::spill::{ChunkGuard, ChunkStore, PageHandle};
use minidb::Value;

/// Default rows per chunk when none is configured.
const DEFAULT_CHUNK_ROWS: usize = 4096;

/// The process-wide default chunk size: `SDQ_CHUNK_ROWS` when set to a
/// positive integer, 4096 otherwise. Read once — tests that need specific
/// chunk sizes pass them explicitly instead of racing on the environment.
pub fn default_chunk_rows() -> usize {
    static ROWS: OnceLock<usize> = OnceLock::new();
    *ROWS.get_or_init(|| obs::env::positive("SDQ_CHUNK_ROWS").unwrap_or(DEFAULT_CHUNK_ROWS))
}

/// One sealed (immutable, exactly `chunk_rows` long) chunk: resident in
/// memory, or spilled to a [`ChunkStore`] page. Clones share the `Arc`
/// either way, so a spilled chunk's page is freed only when the last
/// column clone referencing it drops.
#[derive(Debug, Clone)]
enum SealedChunk {
    Resident(Arc<Vec<u32>>),
    Spilled(Arc<PageHandle>),
}

impl SealedChunk {
    /// Read access: borrow resident codes, fault spilled ones back in.
    fn guard(&self) -> ChunkGuard<'_> {
        match self {
            SealedChunk::Resident(codes) => ChunkGuard::Borrowed(codes),
            SealedChunk::Spilled(handle) => ChunkGuard::Faulted(handle.fault()),
        }
    }
}

/// One dictionary-encoded column: sealed code chunks plus a mutable tail.
#[derive(Debug, Clone)]
pub struct Column {
    /// Immutable chunks of exactly `chunk_rows` codes each.
    sealed: Vec<SealedChunk>,
    /// The growing tail chunk, always shorter than `chunk_rows`.
    tail: Vec<u32>,
    dict: Arc<Dictionary>,
    chunk_rows: usize,
}

impl Column {
    /// Assemble from a contiguous code vector (used by tests and one-off
    /// constructions; the snapshot builder goes through [`ColumnBuilder`]).
    pub fn new(codes: Vec<u32>, dict: Dictionary) -> Column {
        Column::with_chunk_rows(codes, dict, default_chunk_rows())
    }

    /// [`Column::new`] with an explicit chunk size.
    pub fn with_chunk_rows(codes: Vec<u32>, dict: Dictionary, chunk_rows: usize) -> Column {
        assert!(chunk_rows >= 1, "chunk_rows must be positive");
        let mut col = Column {
            sealed: Vec::with_capacity(codes.len() / chunk_rows),
            tail: Vec::new(),
            dict: Arc::new(dict),
            chunk_rows,
        };
        let mut codes = codes;
        while codes.len() >= chunk_rows {
            let rest = codes.split_off(chunk_rows);
            col.sealed.push(SealedChunk::Resident(Arc::new(codes)));
            codes = rest;
        }
        col.tail = codes;
        col
    }

    /// The column dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.sealed.len() * self.chunk_rows + self.tail.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    /// Rows per sealed chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks a scan visits (sealed chunks plus a non-empty tail).
    pub fn n_chunks(&self) -> usize {
        self.sealed.len() + usize::from(!self.tail.is_empty())
    }

    /// The codes of chunk `ci`, behind a guard: a plain borrow when the
    /// chunk is resident, a pool-backed fault-in when it is spilled. The
    /// guard derefs to `[u32]`. Chunk `ci` covers global positions
    /// `ci * chunk_rows ..`; every chunk except the last holds exactly
    /// `chunk_rows` codes.
    pub fn chunk(&self, ci: usize) -> ChunkGuard<'_> {
        if ci < self.sealed.len() {
            self.sealed[ci].guard()
        } else {
            ChunkGuard::Borrowed(&self.tail)
        }
    }

    /// All chunks in position order.
    pub fn chunks(&self) -> impl Iterator<Item = ChunkGuard<'_>> {
        (0..self.n_chunks()).map(|ci| self.chunk(ci))
    }

    /// The code at global position `pos`.
    #[inline]
    pub fn code_at(&self, pos: usize) -> u32 {
        self.chunk(pos / self.chunk_rows)[pos % self.chunk_rows]
    }

    /// The codes as one contiguous slice: borrowed when the column is a
    /// single resident chunk, materialized (one memcpy pass, faulting any
    /// spilled chunks) otherwise. For consumers that genuinely need flat
    /// positional access (partition refinement in discovery); scans should
    /// iterate [`Column::chunks`].
    pub fn contiguous(&self) -> Cow<'_, [u32]> {
        match (self.sealed.as_slice(), self.tail.is_empty()) {
            ([], _) => Cow::Borrowed(&self.tail),
            ([SealedChunk::Resident(only)], true) => Cow::Borrowed(only),
            _ => {
                let mut flat = Vec::with_capacity(self.len());
                for chunk in self.chunks() {
                    flat.extend_from_slice(&chunk);
                }
                Cow::Owned(flat)
            }
        }
    }

    // Spill operations ([`crate::spill`]). Only sealed chunks spill — the
    // tail is mutable and always shorter than one page.

    /// Evict sealed chunk `ci` to `store` if it is currently resident.
    /// Returns whether a spill happened (`false` for the tail index or an
    /// already-spilled chunk).
    pub fn spill_chunk(&mut self, ci: usize, store: &Arc<dyn ChunkStore>) -> io::Result<bool> {
        match self.sealed.get(ci) {
            Some(SealedChunk::Resident(codes)) => {
                let handle = PageHandle::spill(store, codes)?;
                self.sealed[ci] = SealedChunk::Spilled(Arc::new(handle));
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// True when sealed chunk `ci` is resident (the tail index counts as
    /// resident — it never spills).
    pub fn chunk_is_resident(&self, ci: usize) -> bool {
        !matches!(self.sealed.get(ci), Some(SealedChunk::Spilled(_)))
    }

    /// Number of currently spilled chunks.
    pub fn n_spilled(&self) -> usize {
        self.sealed
            .iter()
            .filter(|c| matches!(c, SealedChunk::Spilled(_)))
            .count()
    }

    /// Bytes of code storage currently held in memory (resident sealed
    /// chunks plus the tail). This is what a memory budget meters.
    pub fn resident_bytes(&self) -> usize {
        let sealed: usize = self
            .sealed
            .iter()
            .filter(|c| matches!(c, SealedChunk::Resident(_)))
            .count();
        (sealed * self.chunk_rows + self.tail.len()) * std::mem::size_of::<u32>()
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.dict.len()
    }

    /// Decode the value at `pos` (owned; NULL materialized).
    pub fn value_at(&self, pos: usize) -> Value {
        self.dict.decode(self.code_at(pos))
    }

    /// True when the value at `pos` is NULL.
    pub fn is_null_at(&self, pos: usize) -> bool {
        self.code_at(pos) == NULL_CODE
    }

    /// Distinct non-NULL values with their live occurrence counts, in
    /// dictionary (first-interned) order. Counted over codes — one
    /// bounds-checked add per row, one decode per *distinct* value, no
    /// per-cell hashing — which is what lets the repair loop's
    /// active-domain pooling skip its former full row walk. Dictionary
    /// entries with no live row references (patched snapshots only grow
    /// their dictionaries) are omitted.
    pub fn value_counts(&self) -> Vec<(Value, u64)> {
        let mut counts = vec![0u64; self.dict.len() + 1];
        for chunk in self.chunks() {
            for &code in chunk.iter() {
                counts[code as usize] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .skip(1) // NULL_CODE
            .filter(|(_, &n)| n > 0)
            .map(|(code, &n)| (self.dict.decode(code as u32), n))
            .collect()
    }

    // Patch operations (snapshot lifecycle). Copy-on-write where sharing
    // is possible: a sealed chunk still referenced by a handed-out
    // snapshot is cloned (one chunk's memcpy, never the whole column)
    // before an in-place edit; the tail is owned and edits in place.
    // Dictionaries only grow; codes of values no longer present simply go
    // unreferenced until the owning cache decides on a full rebuild.

    /// Append one cell, interning its value into the existing dictionary.
    /// O(1): a tail push, sealing the tail into a fresh `Arc` when full.
    pub(crate) fn push_value(&mut self, v: &Value) {
        self.appender(1).push(v);
    }

    /// Overwrite the cell at `pos`, interning the new value.
    pub(crate) fn set_value(&mut self, pos: usize, v: &Value) {
        let code = Arc::make_mut(&mut self.dict).intern(v);
        self.set_code(pos, code);
    }

    fn set_code(&mut self, pos: usize, code: u32) {
        let ci = pos / self.chunk_rows;
        if ci < self.sealed.len() {
            let off = pos % self.chunk_rows;
            self.resident_mut(ci)[off] = code;
        } else {
            self.tail[pos - self.sealed.len() * self.chunk_rows] = code;
        }
    }

    /// Mutable access to sealed chunk `ci`, faulting a spilled chunk back
    /// to residency first (a patched chunk is hot by definition) and
    /// unsharing a still-shared resident one.
    fn resident_mut(&mut self, ci: usize) -> &mut Vec<u32> {
        if let SealedChunk::Spilled(handle) = &self.sealed[ci] {
            let codes = handle.fault();
            // The buffer pool usually holds another reference, so this is
            // a clone; the page itself is freed when the handle's last
            // owner (possibly a snapshot clone) drops.
            let owned = Arc::try_unwrap(codes).unwrap_or_else(|shared| (*shared).clone());
            self.sealed[ci] = SealedChunk::Resident(Arc::new(owned));
        }
        match &mut self.sealed[ci] {
            SealedChunk::Resident(codes) => Arc::make_mut(codes),
            SealedChunk::Spilled(_) => unreachable!("faulted to resident above"),
        }
    }

    /// Remove the cell at `pos` by swapping the last cell into its place.
    /// An empty tail first unseals the last chunk (the one place a whole
    /// chunk may be copied, and only if it is still shared or spilled).
    pub(crate) fn swap_remove(&mut self, pos: usize) {
        if self.tail.is_empty() {
            let last = self.sealed.pop().expect("swap_remove on empty column");
            self.tail = match last {
                SealedChunk::Resident(codes) => {
                    Arc::try_unwrap(codes).unwrap_or_else(|shared| (*shared).clone())
                }
                SealedChunk::Spilled(handle) => handle.fault().to_vec(),
            };
        }
        let code = self.tail.pop().expect("tail refilled above");
        if pos < self.len() {
            self.set_code(pos, code);
        }
    }

    /// Unshare the dictionary **once** and hand out an appender for a
    /// whole batch of pushes — the per-cell [`Column::push_value`] pays
    /// the dictionary's copy-on-write check on every call; a bulk path
    /// pays it here, once.
    pub(crate) fn appender(&mut self, reserve: usize) -> ColumnAppender<'_> {
        let dict = Arc::make_mut(&mut self.dict);
        self.tail
            .reserve(reserve.min(self.chunk_rows - self.tail.len()));
        ColumnAppender {
            sealed: &mut self.sealed,
            tail: &mut self.tail,
            dict,
            chunk_rows: self.chunk_rows,
        }
    }
}

/// Batch append handle: the dictionary copy-on-write check was paid once
/// when the appender was created (see [`Column::appender`]).
pub(crate) struct ColumnAppender<'a> {
    sealed: &'a mut Vec<SealedChunk>,
    tail: &'a mut Vec<u32>,
    dict: &'a mut Dictionary,
    chunk_rows: usize,
}

impl ColumnAppender<'_> {
    /// Append one cell, sealing the tail into an immutable chunk when full.
    pub(crate) fn push(&mut self, v: &Value) {
        let code = self.dict.intern(v);
        self.tail.push(code);
        if self.tail.len() == self.chunk_rows {
            let full = std::mem::replace(self.tail, Vec::with_capacity(self.chunk_rows));
            self.sealed.push(SealedChunk::Resident(Arc::new(full)));
        }
    }
}

/// Incremental builder used while scanning a table once.
#[derive(Debug)]
pub struct ColumnBuilder {
    sealed: Vec<SealedChunk>,
    tail: Vec<u32>,
    dict: Dictionary,
    chunk_rows: usize,
}

impl Default for ColumnBuilder {
    fn default() -> ColumnBuilder {
        ColumnBuilder::with_capacity(0)
    }
}

impl ColumnBuilder {
    /// Builder with row-count capacity and the default chunk size.
    pub fn with_capacity(rows: usize) -> ColumnBuilder {
        ColumnBuilder::chunked(rows, default_chunk_rows())
    }

    /// Builder with an explicit chunk size (every chunk but the last holds
    /// exactly `chunk_rows` codes).
    pub fn chunked(rows: usize, chunk_rows: usize) -> ColumnBuilder {
        assert!(chunk_rows >= 1, "chunk_rows must be positive");
        ColumnBuilder {
            sealed: Vec::with_capacity(rows / chunk_rows),
            tail: Vec::with_capacity(rows.min(chunk_rows)),
            dict: Dictionary::new(),
            chunk_rows,
        }
    }

    /// Append one cell.
    pub fn push(&mut self, v: &Value) {
        let code = self.dict.intern(v);
        self.tail.push(code);
        if self.tail.len() == self.chunk_rows {
            let full = std::mem::replace(&mut self.tail, Vec::with_capacity(self.chunk_rows));
            self.sealed.push(SealedChunk::Resident(Arc::new(full)));
        }
    }

    /// Freeze into an immutable [`Column`].
    pub fn finish(self) -> Column {
        Column {
            sealed: self.sealed,
            tail: self.tail,
            dict: Arc::new(self.dict),
            chunk_rows: self.chunk_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_decode_roundtrip() {
        let mut b = ColumnBuilder::with_capacity(4);
        for v in [
            Value::str("a"),
            Value::Null,
            Value::str("b"),
            Value::str("a"),
        ] {
            b.push(&v);
        }
        let c = b.finish();
        assert_eq!(c.len(), 4);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.contiguous().as_ref(), &[1, NULL_CODE, 2, 1]);
        assert_eq!(c.value_at(0), Value::str("a"));
        assert!(c.is_null_at(1));
        assert_eq!(c.value_at(3), Value::str("a"));
    }

    #[test]
    fn value_counts_skip_null_and_dead_dictionary_entries() {
        let mut b = ColumnBuilder::with_capacity(5);
        for v in [
            Value::str("a"),
            Value::Null,
            Value::str("b"),
            Value::str("a"),
            Value::str("a"),
        ] {
            b.push(&v);
        }
        let mut c = b.finish();
        assert_eq!(
            c.value_counts(),
            vec![(Value::str("a"), 3), (Value::str("b"), 1)]
        );
        // Overwrite the only 'b': its dictionary entry stays but must not
        // be reported with a zero count.
        c.set_value(2, &Value::str("a"));
        assert_eq!(c.value_counts(), vec![(Value::str("a"), 4)]);
    }

    #[test]
    fn chunk_layout_is_position_faithful() {
        // chunk_rows = 3 over 8 values: two sealed chunks + a 2-code tail.
        let mut b = ColumnBuilder::chunked(8, 3);
        for i in 0..8 {
            b.push(&Value::Int(i % 4));
        }
        let c = b.finish();
        assert_eq!(c.n_chunks(), 3);
        assert_eq!(c.chunk(0).len(), 3);
        assert_eq!(c.chunk(1).len(), 3);
        assert_eq!(c.chunk(2).len(), 2);
        for pos in 0..8 {
            assert_eq!(c.value_at(pos), Value::Int(pos as i64 % 4), "pos {pos}");
        }
        let flat: Vec<u32> = c.chunks().flat_map(|ch| ch.to_vec()).collect();
        assert_eq!(flat.as_slice(), c.contiguous().as_ref());
        assert_eq!(flat.len(), c.len());
    }

    #[test]
    fn appends_seal_chunks_without_unsharing_clones() {
        let mut b = ColumnBuilder::chunked(4, 2);
        for v in ["w", "x", "y", "z"] {
            b.push(&Value::str(v));
        }
        let mut c = b.finish();
        let before = c.clone();
        // Appends touch only the (empty) tail: the handed-out clone keeps
        // sharing both sealed chunks, no copy-on-write of existing codes.
        c.push_value(&Value::str("new"));
        assert_eq!(c.len(), 5);
        assert_eq!(before.len(), 4, "clone unaffected");
        assert_eq!(
            c.chunk(0).as_ptr(),
            before.chunk(0).as_ptr(),
            "sealed chunks stay shared across the append"
        );
        assert_eq!(c.chunk(1).as_ptr(), before.chunk(1).as_ptr());
    }

    #[test]
    fn swap_remove_unseals_the_last_chunk() {
        let mut b = ColumnBuilder::chunked(4, 2);
        for v in ["a", "b", "c", "d"] {
            b.push(&Value::str(v));
        }
        let mut c = b.finish();
        assert_eq!(c.n_chunks(), 2);
        // Tail is empty: removing position 0 pops 'd' off the unsealed
        // last chunk and writes it over 'a'.
        c.swap_remove(0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_at(0), Value::str("d"));
        assert_eq!(c.value_at(1), Value::str("b"));
        assert_eq!(c.value_at(2), Value::str("c"));
    }

    #[test]
    fn spilled_chunks_read_identically_and_patch_back_resident() {
        use crate::spill::MemChunkStore;

        let mut b = ColumnBuilder::chunked(7, 3);
        for i in 0..7 {
            b.push(&Value::Int(i));
        }
        let mut c = b.finish();
        let before: Vec<u32> = c.contiguous().into_owned();

        let mem = Arc::new(MemChunkStore::default());
        let store: Arc<dyn crate::spill::ChunkStore> = mem.clone();
        assert!(c.spill_chunk(0, &store).unwrap());
        assert!(c.spill_chunk(1, &store).unwrap());
        assert!(!c.spill_chunk(1, &store).unwrap(), "already spilled");
        assert!(!c.spill_chunk(2, &store).unwrap(), "tail never spills");
        assert_eq!(c.n_spilled(), 2);
        assert_eq!(mem.live_pages(), 2);
        assert_eq!(
            c.resident_bytes(),
            c.tail.len() * 4,
            "all sealed chunks out"
        );

        // Every read path faults transparently.
        assert_eq!(c.contiguous().into_owned(), before);
        for pos in 0..7 {
            assert_eq!(c.value_at(pos), Value::Int(pos as i64), "pos {pos}");
        }
        assert_eq!(c.chunk(1).as_slice(), &before[3..6]);

        // Patching a spilled chunk faults it back to residency; the page
        // is freed once no clone references it.
        c.set_value(4, &Value::Int(99));
        assert!(c.chunk_is_resident(1));
        assert_eq!(c.n_spilled(), 1);
        assert_eq!(mem.live_pages(), 1);
        assert_eq!(c.value_at(4), Value::Int(99));
        assert_eq!(c.value_at(3), Value::Int(3), "neighbors survive the patch");
    }

    #[test]
    fn clones_keep_spilled_pages_alive() {
        use crate::spill::MemChunkStore;

        let mut b = ColumnBuilder::chunked(4, 2);
        for i in 0..4 {
            b.push(&Value::Int(i));
        }
        let mut c = b.finish();
        let mem = Arc::new(MemChunkStore::default());
        let store: Arc<dyn crate::spill::ChunkStore> = mem.clone();
        c.spill_chunk(0, &store).unwrap();
        let snap = c.clone();
        // The original patches chunk 0 back to resident; the snapshot's
        // handle keeps the page alive and still reads the old value.
        c.set_value(0, &Value::Int(77));
        assert_eq!(mem.live_pages(), 1);
        assert_eq!(snap.value_at(0), Value::Int(0));
        assert_eq!(c.value_at(0), Value::Int(77));
        drop(snap);
        assert_eq!(mem.live_pages(), 0, "last handle drop frees the page");
    }

    #[test]
    fn swap_remove_unseals_a_spilled_last_chunk() {
        use crate::spill::MemChunkStore;

        let mut b = ColumnBuilder::chunked(4, 2);
        for v in ["a", "b", "c", "d"] {
            b.push(&Value::str(v));
        }
        let mut c = b.finish();
        let mem = Arc::new(MemChunkStore::default());
        let store: Arc<dyn crate::spill::ChunkStore> = mem.clone();
        c.spill_chunk(1, &store).unwrap();
        c.swap_remove(0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_at(0), Value::str("d"));
        assert_eq!(c.value_at(2), Value::str("c"));
        assert_eq!(mem.live_pages(), 0, "unsealing released the page");
    }

    #[test]
    fn clones_share_storage() {
        let mut b = ColumnBuilder::chunked(2, 2);
        b.push(&Value::str("x"));
        b.push(&Value::str("y"));
        let c1 = b.finish();
        let c2 = c1.clone();
        assert_eq!(
            c1.chunk(0).as_ptr(),
            c2.chunk(0).as_ptr(),
            "sealed chunks are Arc-shared, not copied"
        );
    }
}
