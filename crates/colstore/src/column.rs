//! Dictionary-encoded columns.
//!
//! A [`Column`] is an immutable `Vec<u32>` of codes plus the
//! [`Dictionary`] that gives them meaning, both behind `Arc` so columns can
//! be shared across snapshots, detector runs and threads for the cost of a
//! reference-count bump.

use std::sync::Arc;

use crate::dictionary::{Dictionary, NULL_CODE};
use minidb::Value;

/// One immutable, dictionary-encoded column.
#[derive(Debug, Clone)]
pub struct Column {
    codes: Arc<Vec<u32>>,
    dict: Arc<Dictionary>,
}

impl Column {
    /// Assemble from parts (used by the snapshot builder).
    pub fn new(codes: Vec<u32>, dict: Dictionary) -> Column {
        Column {
            codes: Arc::new(codes),
            dict: Arc::new(dict),
        }
    }

    /// The code slice, parallel to the snapshot's row order.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The column dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct non-NULL values.
    pub fn distinct(&self) -> usize {
        self.dict.len()
    }

    /// Decode the value at `pos` (owned; NULL materialized).
    pub fn value_at(&self, pos: usize) -> Value {
        self.dict.decode(self.codes[pos])
    }

    /// True when the value at `pos` is NULL.
    pub fn is_null_at(&self, pos: usize) -> bool {
        self.codes[pos] == NULL_CODE
    }

    /// Distinct non-NULL values with their live occurrence counts, in
    /// dictionary (first-interned) order. Counted over codes — one
    /// bounds-checked add per row, one decode per *distinct* value, no
    /// per-cell hashing — which is what lets the repair loop's
    /// active-domain pooling skip its former full row walk. Dictionary
    /// entries with no live row references (patched snapshots only grow
    /// their dictionaries) are omitted.
    pub fn value_counts(&self) -> Vec<(Value, u64)> {
        let mut counts = vec![0u64; self.dict.len() + 1];
        for &code in self.codes.iter() {
            counts[code as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .skip(1) // NULL_CODE
            .filter(|(_, &n)| n > 0)
            .map(|(code, &n)| (self.dict.decode(code as u32), n))
            .collect()
    }

    // Patch operations (snapshot lifecycle). Copy-on-write: when the codes
    // or dictionary are still shared with a handed-out snapshot they are
    // cloned first — a memcpy, never a re-interning pass. Dictionaries only
    // grow; codes of values no longer present simply go unreferenced until
    // the owning cache decides on a full rebuild.

    /// Append one cell, interning its value into the existing dictionary.
    pub(crate) fn push_value(&mut self, v: &Value) {
        let code = Arc::make_mut(&mut self.dict).intern(v);
        Arc::make_mut(&mut self.codes).push(code);
    }

    /// Overwrite the cell at `pos`, interning the new value.
    pub(crate) fn set_value(&mut self, pos: usize, v: &Value) {
        let code = Arc::make_mut(&mut self.dict).intern(v);
        Arc::make_mut(&mut self.codes)[pos] = code;
    }

    /// Remove the cell at `pos` by swapping the last cell into its place.
    pub(crate) fn swap_remove(&mut self, pos: usize) {
        Arc::make_mut(&mut self.codes).swap_remove(pos);
    }

    /// Unshare the code vector and dictionary once and hand both out for
    /// a whole batch of edits — the per-cell [`Column::push_value`] /
    /// [`Column::set_value`] pay the copy-on-write checks on every call;
    /// a bulk path pays them here, once, and reserves the append run up
    /// front.
    pub(crate) fn parts_mut(&mut self, reserve: usize) -> (&mut Vec<u32>, &mut Dictionary) {
        let dict = Arc::make_mut(&mut self.dict);
        let codes = Arc::make_mut(&mut self.codes);
        codes.reserve(reserve);
        (codes, dict)
    }
}

/// Incremental builder used while scanning a table once.
#[derive(Debug, Default)]
pub struct ColumnBuilder {
    codes: Vec<u32>,
    dict: Dictionary,
}

impl ColumnBuilder {
    /// Builder with row-count capacity.
    pub fn with_capacity(rows: usize) -> ColumnBuilder {
        ColumnBuilder {
            codes: Vec::with_capacity(rows),
            dict: Dictionary::new(),
        }
    }

    /// Append one cell.
    pub fn push(&mut self, v: &Value) {
        let code = self.dict.intern(v);
        self.codes.push(code);
    }

    /// Freeze into an immutable [`Column`].
    pub fn finish(self) -> Column {
        Column::new(self.codes, self.dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_decode_roundtrip() {
        let mut b = ColumnBuilder::with_capacity(4);
        for v in [
            Value::str("a"),
            Value::Null,
            Value::str("b"),
            Value::str("a"),
        ] {
            b.push(&v);
        }
        let c = b.finish();
        assert_eq!(c.len(), 4);
        assert_eq!(c.distinct(), 2);
        assert_eq!(c.codes(), &[1, NULL_CODE, 2, 1]);
        assert_eq!(c.value_at(0), Value::str("a"));
        assert!(c.is_null_at(1));
        assert_eq!(c.value_at(3), Value::str("a"));
    }

    #[test]
    fn value_counts_skip_null_and_dead_dictionary_entries() {
        let mut b = ColumnBuilder::with_capacity(5);
        for v in [
            Value::str("a"),
            Value::Null,
            Value::str("b"),
            Value::str("a"),
            Value::str("a"),
        ] {
            b.push(&v);
        }
        let mut c = b.finish();
        assert_eq!(
            c.value_counts(),
            vec![(Value::str("a"), 3), (Value::str("b"), 1)]
        );
        // Overwrite the only 'b': its dictionary entry stays but must not
        // be reported with a zero count.
        c.set_value(2, &Value::str("a"));
        assert_eq!(c.value_counts(), vec![(Value::str("a"), 4)]);
    }

    #[test]
    fn clones_share_storage() {
        let mut b = ColumnBuilder::with_capacity(2);
        b.push(&Value::str("x"));
        b.push(&Value::str("y"));
        let c1 = b.finish();
        let c2 = c1.clone();
        assert!(std::ptr::eq(c1.codes(), c2.codes()));
    }
}
