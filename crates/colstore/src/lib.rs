//! # colstore — columnar snapshot store with vectorized CFD detection
//!
//! A new execution layer under the Semandaq detector: an immutable,
//! dictionary-encoded columnar copy of a [`minidb::Table`] plus a detector
//! that evaluates CFDs over integer codes instead of cloned `Value` rows.
//!
//! * [`Dictionary`] — per-column value ↔ dense `u32` code mapping, with
//!   code 0 ([`NULL_CODE`]) reserved for SQL NULL; code equality is exactly
//!   `Value::strong_eq` equality, so code comparisons reproduce the
//!   reference semantics.
//! * [`Column`] — fixed-size immutable code chunks (`Arc`-shared) plus one
//!   mutable tail chunk and the dictionary; cloning bumps refcounts,
//!   appending is an O(1) tail push, and a chunk is the unit of parallel
//!   scan work.
//! * [`Snapshot`] — one encode pass over a table's live rows; the unit of
//!   reuse across a whole CFD set (one encode, N rules) and across engines.
//! * [`detect_columnar`] / [`detect_on_snapshot`] — constant CFDs by
//!   branch-free code comparison over chunks, variable CFDs by grouping
//!   packed `u64` (or wide `[u32]`) LHS code keys. Returns reports
//!   `normalized()`-equal to [`detect::detect_native`] on every instance.
//! * [`detect_on_snapshot_threads`] / [`detect_cached_threads`] — the same
//!   detection fanned out as (CFD × chunk) morsels over the work-stealing
//!   pool in [`morsel`]; per-chunk partials merge through the shard
//!   exchange machinery, so threads and shards share one merge semantics.
//! * [`seed_incremental`] / [`build_incremental`] — bulk-seed the
//!   incremental detector's group state from one columnar pass (the data
//!   monitor's full-rescan fallback).
//! * [`SnapshotCache`] / [`detect_cached`] — the epoch-versioned snapshot
//!   lifecycle: one cached `Arc<Snapshot>` tagged with the table's mutation
//!   epoch, returned for free while the epochs match and **incrementally
//!   patched** (append / swap-remove / single-cell re-encode) when the
//!   caller reports its deltas, with a delta-threshold fallback to full
//!   re-encode. The steady-state engine under `QualityServer::detect`,
//!   `DataMonitor` and `batch_repair`.

#![warn(missing_docs)]

pub mod column;
pub mod detect;
pub mod dictionary;
pub mod lifecycle;
pub mod morsel;
pub mod snapshot;
pub mod spill;

pub use self::column::{default_chunk_rows, Column, ColumnBuilder};
pub use self::detect::{
    build_incremental, cfd_partial_one, cfd_partials, detect_columnar, detect_columnar_threads,
    detect_on_snapshot, detect_on_snapshot_threads, detect_one_columnar, seed_incremental,
};
pub use self::dictionary::{Dictionary, NULL_CODE};
pub use self::lifecycle::{detect_cached, detect_cached_threads, SnapshotCache, TableDelta};
pub use self::snapshot::Snapshot;
pub use self::spill::{ChunkGuard, ChunkStore, MemChunkStore, PageHandle};
