//! Vectorized CFD violation detection over columnar snapshots.
//!
//! The reference detector ([`detect::detect_native`]) scans row slices and
//! hashes a freshly cloned `Vec<Value>` LHS key per tuple. Here every CFD is
//! evaluated over dictionary codes instead:
//!
//! * **constant CFDs** reduce to integer comparisons over `u32` code
//!   chunks — the pattern constants are resolved to codes once, each chunk
//!   takes a branch-free any-violation pass first (a fold of compare bits
//!   the compiler autovectorizes), and only chunks that contain a
//!   violation are re-scanned to materialize row ids;
//! * **variable CFDs** group rows by their LHS *code* key. When the
//!   combined code widths fit, keys are packed into a single `u64`; wider
//!   keys fall back to boxed `[u32]` slices. Either way no `Value` is
//!   cloned on the scan path — values are only decoded (an `Arc` bump) when
//!   a violating group is materialized into the report.
//!
//! Scans walk the column chunk by chunk ([`crate::column`]), which is also
//! the parallel decomposition: [`detect_on_snapshot_threads`] splits every
//! variable CFD into (CFD × chunk) morsels, runs them on the work-stealing
//! pool ([`crate::morsel`]), and merges the per-chunk [`GroupPartial`]s
//! through the *same* exchange machinery the cluster's shards gather
//! through — one merge semantics for threads-in-a-node and
//! shards-in-a-cluster. One worker is the exact serial path.
//!
//! The output is [`ViolationReport`]-identical (after `normalized()`) to the
//! native detector on every instance; the property tests in
//! `tests/detector_equivalence.rs` and `tests/chunked_detect.rs` pin this.

use cfd::{BoundCfd, Cfd, CfdResult, Pattern};
use detect::exchange::{merge_variable_partials, CfdPartial, GroupPartial};
use detect::incremental::CfdSeed;
use detect::{IncrementalDetector, ViolationReport};
use minidb::{RowId, Table, Value};

use crate::column::Column;
use crate::dictionary::NULL_CODE;
use crate::morsel;
use crate::snapshot::Snapshot;
use crate::spill::ChunkGuard;
use detect::fxhash::{DistinctCounter, FxHashMap};

/// Global-registry handles for the detector's telemetry: which grouping
/// path each variable-CFD evaluation took (dense direct-indexed, hashed,
/// or wide-key fallback), how many rows it scanned, and what it found.
struct DetectObs {
    path_dense: std::sync::Arc<obs::Counter>,
    path_hashed: std::sync::Arc<obs::Counter>,
    path_wide: std::sync::Arc<obs::Counter>,
    rows_scanned: std::sync::Arc<obs::Counter>,
    violating_groups: std::sync::Arc<obs::Counter>,
    group_members: std::sync::Arc<obs::Counter>,
    constant_violations: std::sync::Arc<obs::Counter>,
}

fn detect_obs() -> &'static DetectObs {
    static OBS: std::sync::OnceLock<DetectObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| DetectObs {
        path_dense: obs::counter("detect_group_path_total{path=\"dense\"}"),
        path_hashed: obs::counter("detect_group_path_total{path=\"hashed\"}"),
        path_wide: obs::counter("detect_group_path_total{path=\"wide\"}"),
        rows_scanned: obs::counter("detect_rows_scanned_total"),
        violating_groups: obs::counter("detect_violating_groups_total"),
        group_members: obs::counter("detect_group_members_total"),
        constant_violations: obs::counter("detect_constant_violations_total"),
    })
}

/// The columns a CFD set touches — the snapshot projection the detector
/// needs. High-cardinality columns outside every rule (free-text names,
/// ids) are never encoded.
pub(crate) fn needed_columns(bound: &[BoundCfd]) -> Vec<usize> {
    let mut cols: Vec<usize> = bound
        .iter()
        .flat_map(|b| b.lhs_cols.iter().copied().chain([b.rhs_col]))
        .collect();
    cols.sort_unstable();
    cols.dedup();
    cols
}

/// One resolved LHS cell: either a group-key column or an equality filter.
pub(crate) enum LhsCell {
    /// Wildcard pattern: the column participates in the group key.
    Wild { col: usize },
    /// Constant pattern, resolved to its dictionary code.
    Filter { col: usize, code: u32 },
}

/// A bound CFD with its pattern constants resolved to codes.
pub(crate) struct Resolved {
    cells: Vec<LhsCell>,
    rhs_col: usize,
    /// `Some(code)` for a constant RHS present in the column's dictionary;
    /// `None` for a constant absent from the column (every non-NULL RHS
    /// value differs from it). Irrelevant for variable CFDs.
    rhs_code: Option<u32>,
}

/// Resolve pattern constants against the snapshot dictionaries. Returns
/// `None` when some LHS constant does not occur in its column — then no row
/// can match the pattern and the CFD holds vacuously.
pub(crate) fn resolve(snap: &Snapshot, b: &BoundCfd) -> Option<Resolved> {
    let mut cells = Vec::with_capacity(b.lhs_cols.len());
    for (&col, pat) in b.lhs_cols.iter().zip(&b.cfd.lhs_pat) {
        match pat {
            Pattern::Wild => cells.push(LhsCell::Wild { col }),
            Pattern::Const(v) => {
                let code = snap.column(col).dictionary().code_of(v)?;
                if code == NULL_CODE {
                    // A NULL "constant" cannot arise from the parser, but a
                    // programmatic pattern could; constants never match NULL.
                    return None;
                }
                cells.push(LhsCell::Filter { col, code });
            }
        }
    }
    let rhs_code = b
        .cfd
        .rhs_pat
        .constant()
        .and_then(|v| snap.column(b.rhs_col).dictionary().code_of(v));
    Some(Resolved {
        cells,
        rhs_col: b.rhs_col,
        rhs_code,
    })
}

/// Detect all violations of `cfds` in `table` by building one columnar
/// snapshot, projected onto the columns the CFD set mentions, and
/// evaluating every CFD against it (one encode, N rules).
pub fn detect_columnar(table: &Table, cfds: &[Cfd]) -> CfdResult<ViolationReport> {
    detect_columnar_threads(table, cfds, 1)
}

/// [`detect_columnar`] with an explicit detection worker count (see
/// [`detect_on_snapshot_threads`]; the snapshot encode itself parallelizes
/// independently).
pub fn detect_columnar_threads(
    table: &Table,
    cfds: &[Cfd],
    threads: usize,
) -> CfdResult<ViolationReport> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let snap = Snapshot::projected(table, &needed_columns(&bound));
    detect_on_snapshot_threads(&snap, cfds, threads)
}

/// Detect all violations of `cfds` against an existing snapshot — the reuse
/// path when several CFD sets (or repeated calls) run over the same data.
pub fn detect_on_snapshot(snap: &Snapshot, cfds: &[Cfd]) -> CfdResult<ViolationReport> {
    detect_on_snapshot_threads(snap, cfds, 1)
}

/// [`detect_on_snapshot`] with an explicit worker count. `threads <= 1`
/// (or a single-chunk snapshot) is the exact serial path; otherwise every
/// variable CFD fans out into (CFD × chunk) morsels over the work-stealing
/// pool, whose per-chunk partials merge through
/// [`detect::exchange::merge_variable_partials`]. Constant CFDs stay
/// serial — their branch-free chunk scan is memory-bound and cheap.
///
/// The result is `normalized()`-equal to the serial path at every worker
/// count; only the within-CFD group order may differ.
pub fn detect_on_snapshot_threads(
    snap: &Snapshot,
    cfds: &[Cfd],
    threads: usize,
) -> CfdResult<ViolationReport> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(snap.schema()))
        .collect::<CfdResult<_>>()?;
    let mut report = ViolationReport::default();
    if threads.max(1) == 1 || snap.n_chunks() < 2 {
        for (idx, b) in bound.iter().enumerate() {
            let sp = obs::trace::span("detect.cfd");
            sp.attr("cfd", idx);
            detect_one_columnar(snap, idx, b, &mut report);
        }
        return Ok(report);
    }

    // Resolve the variable CFDs up front; constants and vacuous rules run
    // inline in CFD order below, so the report's per-CFD record order
    // matches the serial path's exactly.
    let vars: Vec<(usize, &BoundCfd, Resolved)> = bound
        .iter()
        .enumerate()
        .filter(|(_, b)| b.cfd.rhs_pat.is_wild())
        .filter_map(|(idx, b)| resolve(snap, b).map(|r| (idx, b, r)))
        .collect();
    let mut merged = variable_groups_threaded(snap, &vars, threads);
    debug_assert_eq!(merged.len(), vars.len());
    let mut merged_by_idx: FxHashMap<usize, Vec<DecodedGroup>> = vars
        .iter()
        .map(|(idx, ..)| *idx)
        .zip(merged.drain(..))
        .collect();
    for (idx, b) in bound.iter().enumerate() {
        if let Some(groups) = merged_by_idx.remove(&idx) {
            for (key, rows, own) in groups {
                report.push_multi_shared(idx, key, rows, &own);
            }
        } else if b.cfd.rhs_pat.constant().is_some() {
            detect_one_columnar(snap, idx, b, &mut report);
        }
        // Variable CFDs whose LHS constants resolve to nothing hold
        // vacuously — absent from `merged_by_idx`, nothing to push.
    }
    Ok(report)
}

/// Evaluate the variable CFDs in `vars` as (CFD × chunk) morsels on the
/// work-stealing pool and merge each CFD's per-chunk partials, preserving
/// `vars` order. Each morsel exports one chunk's groups in the wire format
/// ([`GroupPartial`]); the merge is the shard-exchange merge, so a chunk
/// boundary splitting a group is indistinguishable from a shard boundary
/// splitting it.
pub(crate) fn variable_groups_threaded(
    snap: &Snapshot,
    vars: &[(usize, &BoundCfd, Resolved)],
    threads: usize,
) -> Vec<Vec<DecodedGroup>> {
    let nc = snap.n_chunks();
    if vars.is_empty() || nc == 0 {
        return vec![Vec::new(); vars.len()];
    }
    let o = detect_obs();
    o.rows_scanned.add((vars.len() * snap.n_rows()) as u64);
    let partials: Vec<Option<Vec<GroupPartial>>> =
        morsel::run_morsels(threads, vars.len() * nc, |m| {
            let (cfd_idx, b, r) = &vars[m / nc];
            let ci = m % nc;
            let sp = obs::trace::span("detect.morsel");
            sp.attr("cfd", cfd_idx);
            sp.attr("chunk", ci);
            group_by_codes_range(snap, r, ci..ci + 1)
                .into_iter()
                .map(|(key, g)| export_partial(snap, b, r, &key, &g))
                .collect::<Vec<GroupPartial>>()
        });
    vars.iter()
        .enumerate()
        .map(|(vi, _)| {
            let parts = partials[vi * nc..(vi + 1) * nc]
                .iter()
                .filter_map(|p| p.as_deref());
            let groups: Vec<DecodedGroup> = merge_variable_partials(parts)
                .into_iter()
                .map(|(key, rows, own)| (key, std::sync::Arc::new(rows), own))
                .collect();
            o.violating_groups.add(groups.len() as u64);
            o.group_members
                .add(groups.iter().map(|(_, rows, _)| rows.len() as u64).sum());
            groups
        })
        .collect()
}

/// A decoded violating group: LHS key, members (shared — the lifecycle
/// memo replays them into many reports), per-member multiplicities.
pub(crate) type DecodedGroup = (Vec<Value>, std::sync::Arc<Vec<(RowId, Value)>>, Vec<u64>);

/// Evaluate one bound CFD against the snapshot, appending to `report`.
pub fn detect_one_columnar(
    snap: &Snapshot,
    cfd_idx: usize,
    b: &BoundCfd,
    report: &mut ViolationReport,
) {
    let Some(r) = resolve(snap, b) else {
        return; // some LHS constant matches no row
    };
    if b.cfd.rhs_pat.constant().is_some() {
        detect_constant(snap, cfd_idx, &r, report);
    } else {
        for (key, rows, own) in violating_groups(snap, b, &r) {
            report.push_multi_shared(cfd_idx, key, rows, &own);
        }
    }
}

/// Constant-RHS path: a row violates iff every LHS filter matches and its
/// (non-NULL) RHS code differs from the pattern constant's code.
///
/// Runs chunk at a time, two-phase: a branch-free fold ORs the per-row
/// "violates" bit across the chunk (plain integer compares, no early exit
/// — the shape LLVM autovectorizes), and only a chunk whose fold came back
/// non-zero is re-scanned to materialize row ids. Clean data — the common
/// case — never takes a per-row branch.
pub(crate) fn detect_constant(
    snap: &Snapshot,
    cfd_idx: usize,
    r: &Resolved,
    report: &mut ViolationReport,
) {
    let rhs = snap.column(r.rhs_col);
    let o = detect_obs();
    o.rows_scanned.add(snap.n_rows() as u64);
    obs::trace::note("path", "constant");
    obs::trace::note("chunks", rhs.n_chunks());
    let before = report.len();
    let filters: Vec<(&Column, u32)> = r
        .cells
        .iter()
        .filter_map(|c| match c {
            LhsCell::Filter { col, code } => Some((snap.column(*col), *code)),
            // Wild LHS cells of a constant-RHS CFD match every row.
            LhsCell::Wild { .. } => None,
        })
        .collect();
    // Codes are small sequential dictionary indices, so `u32::MAX` is a
    // safe never-matches stand-in for an RHS constant absent from the
    // dictionary (where every non-NULL code violates).
    let target = r.rhs_code.unwrap_or(u32::MAX);
    for ci in 0..rhs.n_chunks() {
        let codes = rhs.chunk(ci);
        let base = ci * rhs.chunk_rows();
        // Two-step: hold the chunk guards (they keep faulted pages alive),
        // then view them as plain slices for the scan loops below.
        let guards: Vec<(ChunkGuard<'_>, u32)> = filters
            .iter()
            .map(|(c, code)| (c.chunk(ci), *code))
            .collect();
        let fs: Vec<(&[u32], u32)> = guards
            .iter()
            .map(|(g, code)| (g.as_slice(), *code))
            .collect();
        let any = match fs.as_slice() {
            [] => codes.iter().fold(0u32, |acc, &c| {
                acc | u32::from(c != NULL_CODE && c != target)
            }),
            [(f, fc)] => codes.iter().zip(f.iter()).fold(0u32, |acc, (&c, &fv)| {
                acc | u32::from(fv == *fc && c != NULL_CODE && c != target)
            }),
            // Multi-filter constant rules are rare; skip the probe pass.
            _ => 1,
        };
        if any == 0 {
            continue;
        }
        for (i, &c) in codes.iter().enumerate() {
            if !fs.iter().all(|(f, fc)| f[i] == *fc) {
                continue;
            }
            if c != NULL_CODE && c != target {
                report.push_single(cfd_idx, snap.row_id(base + i));
            }
        }
    }
    o.constant_violations.add((report.len() - before) as u64);
}

/// Accumulator for one LHS group (non-NULL RHS members only).
#[derive(Default)]
struct Group {
    /// `(snapshot position, rhs code)` in scan order.
    rows: Vec<(u32, u32)>,
    first_code: u32,
    conflict: bool,
}

impl Group {
    fn add(&mut self, pos: u32, code: u32) {
        if self.rows.is_empty() {
            self.first_code = code;
        } else if code != self.first_code {
            self.conflict = true;
        }
        self.rows.push((pos, code));
    }
}

/// Group-conflict state per LHS key: `EMPTY` until a member arrives, then
/// the first RHS code, then [`CONFLICT`] once a second distinct code shows
/// up. RHS codes are ≥ 1 (NULL members are skipped) and far below
/// `u32::MAX`, so both sentinels are safe.
const EMPTY: u32 = 0;
const CONFLICT: u32 = u32::MAX;
/// High bit marks a slot re-labelled with a group output index in pass 2.
const GROUP_MARK: u32 = 0x8000_0000;
/// Absolute ceiling for the dense `u32` conflict-state vector (64 MB).
const MAX_DENSE_STATE_SLOTS: u64 = 1 << 24;
/// Absolute ceiling for dense `Group` accumulator vectors (~32 MB).
const MAX_DENSE_GROUP_SLOTS: u64 = 1 << 20;

#[inline]
fn advance(state: &mut u32, rhs_code: u32) {
    if *state == EMPTY {
        *state = rhs_code;
    } else if *state != rhs_code && *state != CONFLICT {
        *state = CONFLICT;
    }
}

/// Per-key conflict-state storage for the packed-u64 detection path. The
/// two implementations — dense direct-indexed and hashed — differ *only*
/// in how a key finds its slot; the two scan passes over them are written
/// once ([`packed_violating_groups`]), so the paths cannot desynchronize.
trait ConflictState {
    /// Fold one non-NULL RHS code into the key's state (pass 1).
    fn advance(&mut self, key: u64, rhs_code: u32);
    /// Did any key reach [`CONFLICT`]? Gates pass 2 entirely.
    fn any_conflict(&self) -> bool;
    /// The state slot of `key`, if the key was ever advanced (pass 2).
    fn get_state(&mut self, key: u64) -> Option<&mut u32>;
}

/// Direct-indexed state: one `u32` per possible packed key.
struct DenseState(Vec<u32>);

impl ConflictState for DenseState {
    #[inline]
    fn advance(&mut self, key: u64, rhs_code: u32) {
        advance(&mut self.0[key as usize], rhs_code);
    }

    fn any_conflict(&self) -> bool {
        self.0.contains(&CONFLICT)
    }

    #[inline]
    fn get_state(&mut self, key: u64) -> Option<&mut u32> {
        // Every slot exists; EMPTY slots are filtered by the caller's
        // mark/conflict checks (an EMPTY slot is neither).
        Some(&mut self.0[key as usize])
    }
}

/// Hashed state for key spaces too large to index directly.
struct HashedState(FxHashMap<u64, u32>);

impl ConflictState for HashedState {
    #[inline]
    fn advance(&mut self, key: u64, rhs_code: u32) {
        advance(self.0.entry(key).or_insert(EMPTY), rhs_code);
    }

    fn any_conflict(&self) -> bool {
        self.0.values().any(|&s| s == CONFLICT)
    }

    #[inline]
    fn get_state(&mut self, key: u64) -> Option<&mut u32> {
        self.0.get_mut(&key)
    }
}

/// The two-pass conflict scan over packed keys, generic in the state
/// storage: pass 1 folds every LHS-matching row's RHS code into its key's
/// state; pass 2 — entered only when some key conflicted — re-labels
/// conflicted slots with group output indexes on first touch
/// ([`GROUP_MARK`]) and collects members. Both passes walk the columns
/// chunk by chunk; recorded positions are global.
// Parallel chunk slices are indexed by one shared chunk-local position
// throughout; an enumerate-based rewrite would obscure that.
#[allow(clippy::needless_range_loop)]
fn packed_violating_groups<S: ConflictState>(
    scan: &Scan<'_>,
    rhs: &Column,
    mut state: S,
) -> Vec<(Key, Group)> {
    for ci in 0..rhs.n_chunks() {
        let guards = scan.at(ci);
        let cs = guards.scan();
        let codes = rhs.chunk(ci);
        for i in 0..codes.len() {
            let Some(key) = cs.packed_key(i) else {
                continue;
            };
            let rc = codes[i];
            if rc != NULL_CODE {
                state.advance(key, rc);
            }
        }
    }
    let mut groups: Vec<(Key, Group)> = Vec::new();
    if !state.any_conflict() {
        return groups;
    }
    for ci in 0..rhs.n_chunks() {
        let guards = scan.at(ci);
        let cs = guards.scan();
        let codes = rhs.chunk(ci);
        let base = (ci * rhs.chunk_rows()) as u32;
        for i in 0..codes.len() {
            let Some(key) = cs.packed_key(i) else {
                continue;
            };
            let rc = codes[i];
            if rc == NULL_CODE {
                continue;
            }
            let Some(s) = state.get_state(key) else {
                continue;
            };
            // Conflicted slots are re-labelled with their output index on
            // first touch (high bit set); dictionary codes never reach the
            // high bit.
            let idx = if *s == CONFLICT {
                let idx = groups.len();
                groups.push((Key::Packed(key), Group::default()));
                *s = GROUP_MARK | idx as u32;
                idx
            } else if *s & GROUP_MARK != 0 {
                (*s & !GROUP_MARK) as usize
            } else {
                continue; // clean group
            };
            groups[idx].1.add(base + i as u32, rc);
        }
    }
    groups
}

/// Group the LHS-matching rows of a variable CFD by their LHS code key and
/// return the violating groups, decoded, sorted by first member position.
///
/// Two passes (see [`packed_violating_groups`]): the first computes only a
/// per-group conflict state (no member lists, no allocation per row), the
/// second collects members for the — typically few — conflicted groups.
/// This is what makes the columnar detector allocation-free on clean data.
pub(crate) fn violating_groups(snap: &Snapshot, b: &BoundCfd, r: &Resolved) -> Vec<DecodedGroup> {
    let scan = Scan::new(snap, r);
    let n = snap.n_rows();
    let rhs = snap.column(r.rhs_col);
    let o = detect_obs();
    o.rows_scanned.add(n as u64);
    obs::trace::note("chunks", rhs.n_chunks());

    let groups: Vec<(Key, Group)> = if let Some(total_bits) = scan.packed_bits() {
        let slots = 1u64 << total_bits.min(63);
        // The dense state is one u32 per slot, so a generous per-row cap is
        // cheap, but bound the absolute allocation too (2^24 slots = 64 MB)
        // so very large tables with wide keys fall back to hashing instead
        // of zeroing gigabytes per CFD.
        if slots <= (64 * n as u64).clamp(4_096, MAX_DENSE_STATE_SLOTS) {
            o.path_dense.inc();
            obs::trace::note("path", "dense");
            packed_violating_groups(&scan, rhs, DenseState(vec![EMPTY; slots as usize]))
        } else {
            o.path_hashed.inc();
            obs::trace::note("path", "hashed");
            packed_violating_groups(&scan, rhs, HashedState(FxHashMap::default()))
        }
    } else {
        // Wide keys: accumulate everything (rare: > 64 key bits).
        o.path_wide.inc();
        obs::trace::note("path", "wide");
        group_by_codes(snap, r)
            .into_iter()
            .filter(|(_, g)| g.conflict)
            .collect()
    };
    o.violating_groups.add(groups.len() as u64);
    o.group_members
        .add(groups.iter().map(|(_, g)| g.rows.len() as u64).sum());

    let mut out: Vec<(u32, DecodedGroup)> = groups
        .into_iter()
        .map(|(key, g)| {
            let first_pos = g.rows.first().map(|(p, _)| *p).unwrap_or(0);
            let (members, own) = decode_members(snap, r, &g);
            (first_pos, (decode_key(snap, b, r, &key), members, own))
        })
        .collect();
    out.sort_by_key(|(first, _)| *first);
    out.into_iter().map(|(_, g)| g).collect()
}

/// The common LHS shapes, pre-dispatched so the per-row hot loop is a
/// predictable branch plus direct slice indexing instead of two `Vec`
/// walks. Covers every rule of the canonical workloads; anything else
/// (3+ wildcards, multiple filters) takes the general path.
enum Shape<'a> {
    /// No filters, one wildcard: the key *is* the code.
    W1(&'a [u32]),
    /// No filters, two wildcards: one shift-or.
    W2(&'a [u32], &'a [u32], u32),
    /// One filter, one wildcard.
    F1W1(&'a [u32], u32, &'a [u32]),
    /// Everything else: iterate `filters` / `wilds`.
    General,
}

/// Per-CFD scan state for one resolved variable CFD: constant filters plus
/// the packed-key layout of the wildcard columns, held as whole columns.
/// [`Scan::at`] resolves one chunk's slices (and their dispatched
/// [`Shape`]) for the inner loops.
struct Scan<'a> {
    filters: Vec<(&'a Column, u32)>,
    /// `(column, code bits)` per wildcard, in pattern order.
    wilds: Vec<(&'a Column, u32)>,
    total_bits: u32,
}

/// One chunk's guards across every scan column: keeps spilled chunks
/// faulted in while the borrowing [`ChunkScan`] (built by
/// [`ChunkGuards::scan`]) reads them as plain slices.
struct ChunkGuards<'a> {
    filters: Vec<(ChunkGuard<'a>, u32)>,
    wilds: Vec<(ChunkGuard<'a>, u32)>,
}

/// One chunk's resolved scan state: code slices aligned at the same chunk
/// index across columns, indexed by chunk-local position. Borrows from a
/// [`ChunkGuards`], which owns any faulted pages.
struct ChunkScan<'a> {
    filters: Vec<(&'a [u32], u32)>,
    wilds: Vec<(&'a [u32], u32)>,
    shape: Shape<'a>,
}

impl<'a> Scan<'a> {
    fn new(snap: &'a Snapshot, r: &Resolved) -> Scan<'a> {
        let mut filters = Vec::new();
        let mut wilds = Vec::new();
        let mut total_bits = 0u32;
        for cell in &r.cells {
            match cell {
                LhsCell::Filter { col, code } => {
                    filters.push((snap.column(*col), *code));
                }
                LhsCell::Wild { col } => {
                    let bits = snap.column(*col).dictionary().code_bits();
                    total_bits += bits;
                    wilds.push((snap.column(*col), bits));
                }
            }
        }
        Scan {
            filters,
            wilds,
            total_bits,
        }
    }

    /// Key width when the packed representation applies (≤ 64 bits).
    fn packed_bits(&self) -> Option<u32> {
        (self.total_bits <= 64).then_some(self.total_bits)
    }

    /// Resolve chunk `ci`'s guards (faulting spilled chunks in); call
    /// [`ChunkGuards::scan`] on the result for the slice-level view.
    fn at(&self, ci: usize) -> ChunkGuards<'a> {
        ChunkGuards {
            filters: self
                .filters
                .iter()
                .map(|(c, code)| (c.chunk(ci), *code))
                .collect(),
            wilds: self
                .wilds
                .iter()
                .map(|(c, bits)| (c.chunk(ci), *bits))
                .collect(),
        }
    }
}

impl ChunkGuards<'_> {
    /// Borrow the guarded codes as slices and dispatch their shape.
    fn scan(&self) -> ChunkScan<'_> {
        let filters: Vec<(&[u32], u32)> = self
            .filters
            .iter()
            .map(|(g, code)| (g.as_slice(), *code))
            .collect();
        let wilds: Vec<(&[u32], u32)> = self
            .wilds
            .iter()
            .map(|(g, bits)| (g.as_slice(), *bits))
            .collect();
        let shape = match (filters.as_slice(), wilds.as_slice()) {
            ([], [(w, _)]) => Shape::W1(w),
            ([], [(a, _), (b, b_bits)]) => Shape::W2(a, b, *b_bits),
            ([(f, fc)], [(w, _)]) => Shape::F1W1(f, *fc, w),
            _ => Shape::General,
        };
        ChunkScan {
            filters,
            wilds,
            shape,
        }
    }
}

impl ChunkScan<'_> {
    /// Do the codes at chunk-local position `i` pass every constant filter?
    #[inline]
    fn matches(&self, i: usize) -> bool {
        self.filters.iter().all(|(codes, code)| codes[i] == *code)
    }

    /// The packed key at chunk-local position `i`, or `None` when a
    /// constant filter rejects the row.
    #[inline]
    fn packed_key(&self, i: usize) -> Option<u64> {
        match self.shape {
            Shape::W1(w) => Some(w[i] as u64),
            Shape::W2(a, b, b_bits) => Some(((a[i] as u64) << b_bits) | b[i] as u64),
            Shape::F1W1(f, fc, w) => (f[i] == fc).then(|| w[i] as u64),
            Shape::General => self.packed_key_general(i),
        }
    }

    fn packed_key_general(&self, i: usize) -> Option<u64> {
        if !self.matches(i) {
            return None;
        }
        let mut key = 0u64;
        for (codes, bits) in &self.wilds {
            key = (key << bits) | codes[i] as u64;
        }
        Some(key)
    }

    /// The materialized wildcard-code key at chunk-local position `i` (the
    /// > 64-bit fallback), or `None` when a constant filter rejects it.
    #[inline]
    fn wide_key(&self, i: usize) -> Option<Box<[u32]>> {
        if !self.matches(i) {
            return None;
        }
        Some(self.wilds.iter().map(|(codes, _)| codes[i]).collect())
    }
}

/// A group key: packed codes when they fit in 64 bits, boxed codes otherwise.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Packed(u64),
    Wide(Box<[u32]>),
}

/// [`group_by_codes_range`] over the whole snapshot.
fn group_by_codes(snap: &Snapshot, r: &Resolved) -> Vec<(Key, Group)> {
    let nc = snap.column(r.rhs_col).n_chunks();
    group_by_codes_range(snap, r, 0..nc)
}

/// Single grouping pass over a chunk range of the code columns. Returns
/// every group with at least one non-NULL member (the incremental seeding
/// path needs non-violating groups too); recorded positions are global, so
/// a one-chunk range produces exactly that chunk's portion of each group —
/// the morsel unit of [`variable_groups_threaded`].
///
/// Row filtering and key packing are [`ChunkScan`]'s — the same
/// `packed_key` / `wide_key` the detection path scans with, so the
/// seeding, morsel, and detection paths group by construction-identical
/// keys.
// Parallel chunk slices are indexed by one shared chunk-local position
// throughout; an enumerate-based rewrite would obscure that.
#[allow(clippy::needless_range_loop)]
fn group_by_codes_range(
    snap: &Snapshot,
    r: &Resolved,
    chunks: std::ops::Range<usize>,
) -> Vec<(Key, Group)> {
    let scan = Scan::new(snap, r);
    let rhs = snap.column(r.rhs_col);
    let chunk_rows = rhs.chunk_rows();
    let n: usize = chunks.clone().map(|ci| rhs.chunk(ci).len()).sum();

    if let Some(total_bits) = scan.packed_bits() {
        // Dense path: when the packed key space is small relative to the
        // data, index a plain vector — grouping without any hashing. Group
        // slots are an order of magnitude wider than the u32 state of the
        // detection path, so the absolute ceiling is tighter.
        let slots = 1u64 << total_bits.min(63);
        if slots <= (2 * n as u64).clamp(4_096, MAX_DENSE_GROUP_SLOTS) {
            let mut groups: Vec<Group> = Vec::new();
            groups.resize_with(slots as usize, Group::default);
            for ci in chunks {
                let guards = scan.at(ci);
                let cs = guards.scan();
                let codes = rhs.chunk(ci);
                let base = (ci * chunk_rows) as u32;
                for i in 0..codes.len() {
                    let Some(key) = cs.packed_key(i) else {
                        continue;
                    };
                    let rc = codes[i];
                    if rc == NULL_CODE {
                        continue; // COUNT(DISTINCT) ignores NULL members
                    }
                    groups[key as usize].add(base + i as u32, rc);
                }
            }
            return groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.rows.is_empty())
                .map(|(k, g)| (Key::Packed(k as u64), g))
                .collect();
        }
        // Hashed path: pack the whole key into one u64.
        let mut groups: FxHashMap<u64, Group> = FxHashMap::default();
        for ci in chunks {
            let guards = scan.at(ci);
            let cs = guards.scan();
            let codes = rhs.chunk(ci);
            let base = (ci * chunk_rows) as u32;
            for i in 0..codes.len() {
                let Some(key) = cs.packed_key(i) else {
                    continue;
                };
                let rc = codes[i];
                if rc == NULL_CODE {
                    continue;
                }
                groups.entry(key).or_default().add(base + i as u32, rc);
            }
        }
        groups
            .into_iter()
            .map(|(k, g)| (Key::Packed(k), g))
            .collect()
    } else {
        // Wide path: materialize the code key (NULL-RHS rows are skipped
        // before the key allocation).
        let mut groups: FxHashMap<Box<[u32]>, Group> = FxHashMap::default();
        for ci in chunks {
            let guards = scan.at(ci);
            let cs = guards.scan();
            let codes = rhs.chunk(ci);
            let base = (ci * chunk_rows) as u32;
            for i in 0..codes.len() {
                let rc = codes[i];
                if rc == NULL_CODE {
                    continue;
                }
                let Some(key) = cs.wide_key(i) else {
                    continue;
                };
                groups.entry(key).or_default().add(base + i as u32, rc);
            }
        }
        groups.into_iter().map(|(k, g)| (Key::Wide(k), g)).collect()
    }
}

/// Decode a group key back into the `Vec<Value>` LHS key the report format
/// uses: pattern order, constants included, wildcard codes decoded.
fn decode_key(snap: &Snapshot, b: &BoundCfd, r: &Resolved, key: &Key) -> Vec<Value> {
    // Recover per-wildcard codes from the key.
    let wild_cols: Vec<usize> = r
        .cells
        .iter()
        .filter_map(|c| match c {
            LhsCell::Wild { col } => Some(*col),
            LhsCell::Filter { .. } => None,
        })
        .collect();
    let wild_codes: Vec<u32> = match key {
        Key::Wide(codes) => codes.to_vec(),
        Key::Packed(mut packed) => {
            let bits: Vec<u32> = wild_cols
                .iter()
                .map(|&c| snap.column(c).dictionary().code_bits())
                .collect();
            let mut rev: Vec<u32> = Vec::with_capacity(bits.len());
            for &b in bits.iter().rev() {
                rev.push((packed & ((1u64 << b) - 1)) as u32);
                packed >>= b;
            }
            rev.reverse();
            rev
        }
    };
    debug_assert_eq!(r.cells.len(), b.cfd.lhs_pat.len());
    let mut wild_iter = wild_cols.iter().zip(&wild_codes);
    r.cells
        .iter()
        .map(|cell| match cell {
            LhsCell::Filter { col, code } => snap.column(*col).dictionary().decode(*code),
            LhsCell::Wild { .. } => {
                let (&col, &code) = wild_iter.next().expect("one code per wildcard");
                snap.column(col).dictionary().decode(code)
            }
        })
        .collect()
}

/// Decode group members without multiplicity counting — the seeding path
/// materializes every group (violating or not) and never needs `own`.
fn decode_members_only(snap: &Snapshot, r: &Resolved, g: &Group) -> Vec<(RowId, Value)> {
    let dict = snap.column(r.rhs_col).dictionary();
    g.rows
        .iter()
        .map(|&(pos, code)| (snap.row_id(pos as usize), dict.decode(code)))
        .collect()
}

/// Decode group members into `(RowId, Value)` pairs, plus each member's
/// value multiplicity within the group — counted over codes, so the report
/// layer never compares values.
fn decode_members(
    snap: &Snapshot,
    r: &Resolved,
    g: &Group,
) -> (std::sync::Arc<Vec<(RowId, Value)>>, Vec<u64>) {
    let dict = snap.column(r.rhs_col).dictionary();
    let mut counter: DistinctCounter<u32> = DistinctCounter::new();
    let idxs: Vec<u32> = g.rows.iter().map(|&(_, code)| counter.add(code)).collect();
    let members = g
        .rows
        .iter()
        .map(|&(pos, code)| (snap.row_id(pos as usize), dict.decode(code)))
        .collect();
    let own = idxs.into_iter().map(|i| counter.count_at(i)).collect();
    (std::sync::Arc::new(members), own)
}

/// Export the partial detection state of every CFD over `snap` — the
/// scatter half of sharded detection (see [`detect::exchange`]): constant
/// CFDs resolve to their shard-local violators, variable CFDs to one
/// [`GroupPartial`] per non-empty LHS group (clean groups included — a
/// locally clean group can conflict with another shard's portion). All
/// state is decoded off the dictionaries, so the partials are
/// self-contained and snapshot-independent.
pub fn cfd_partials(snap: &Snapshot, cfds: &[Cfd]) -> CfdResult<Vec<CfdPartial>> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(snap.schema()))
        .collect::<CfdResult<_>>()?;
    Ok(bound.iter().map(|b| cfd_partial_one(snap, b)).collect())
}

/// The partial state of one bound CFD (see [`cfd_partials`]).
pub fn cfd_partial_one(snap: &Snapshot, b: &BoundCfd) -> CfdPartial {
    let empty = || {
        if b.cfd.rhs_pat.is_wild() {
            CfdPartial::Variable { groups: Vec::new() }
        } else {
            CfdPartial::Constant {
                violating: Vec::new(),
            }
        }
    };
    let Some(r) = resolve(snap, b) else {
        return empty(); // some LHS constant matches no row on this shard
    };
    if b.cfd.rhs_pat.constant().is_some() {
        let mut scratch = ViolationReport::default();
        detect_constant(snap, 0, &r, &mut scratch);
        CfdPartial::Constant {
            violating: scratch.dirty_rows(),
        }
    } else {
        obs::trace::note("path", "export");
        obs::trace::note("chunks", snap.n_chunks());
        let groups = group_by_codes(snap, &r)
            .into_iter()
            .map(|(key, g)| export_partial(snap, b, &r, &key, &g))
            .collect();
        CfdPartial::Variable { groups }
    }
}

/// Turn one code-keyed group into its wire-format partial: distinct RHS
/// codes counted once ([`DistinctCounter`]), each decoded once; members
/// carried as `(row id, value index)` — no `Value` per member.
fn export_partial(
    snap: &Snapshot,
    b: &BoundCfd,
    r: &Resolved,
    key: &Key,
    g: &Group,
) -> GroupPartial {
    let mut counter: DistinctCounter<u32> = DistinctCounter::new();
    let member_idx: Vec<u32> = g.rows.iter().map(|&(_, code)| counter.add(code)).collect();
    let dict = snap.column(r.rhs_col).dictionary();
    GroupPartial {
        key: decode_key(snap, b, r, key),
        values: counter
            .into_counts()
            .into_iter()
            .map(|(c, n)| (dict.decode(c), n))
            .collect(),
        members: g
            .rows
            .iter()
            .map(|&(pos, _)| snap.row_id(pos as usize))
            .zip(member_idx)
            .collect(),
    }
}

/// Build an [`IncrementalDetector`] by seeding its per-CFD state from one
/// columnar pass instead of the row-at-a-time insert loop — the full-rescan
/// fallback of the data monitor.
pub fn seed_incremental(snap: &Snapshot, cfds: &[Cfd]) -> CfdResult<IncrementalDetector> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(snap.schema()))
        .collect::<CfdResult<_>>()?;
    let mut seeds = Vec::with_capacity(bound.len());
    for b in &bound {
        let seed = match resolve(snap, b) {
            None => {
                // No row matches the LHS pattern: empty state of either kind.
                if b.cfd.rhs_pat.is_wild() {
                    CfdSeed::Variable { groups: Vec::new() }
                } else {
                    CfdSeed::Constant {
                        violating: Vec::new(),
                    }
                }
            }
            Some(r) => {
                if b.cfd.rhs_pat.is_wild() {
                    let groups = group_by_codes(snap, &r)
                        .into_iter()
                        .map(|(key, g)| {
                            (
                                decode_key(snap, b, &r, &key),
                                decode_members_only(snap, &r, &g),
                            )
                        })
                        .collect();
                    CfdSeed::Variable { groups }
                } else {
                    let mut report = ViolationReport::default();
                    detect_constant(snap, 0, &r, &mut report);
                    CfdSeed::Constant {
                        violating: report.dirty_rows(),
                    }
                }
            }
        };
        seeds.push(seed);
    }
    Ok(IncrementalDetector::from_parts(bound, seeds))
}

/// [`seed_incremental`] from a table (snapshot built internally, projected
/// onto the columns the CFD set mentions).
pub fn build_incremental(table: &Table, cfds: &[Cfd]) -> CfdResult<IncrementalDetector> {
    let bound: Vec<BoundCfd> = cfds
        .iter()
        .map(|c| c.bind(table.schema()))
        .collect::<CfdResult<_>>()?;
    let snap = Snapshot::projected(table, &needed_columns(&bound));
    seed_incremental(&snap, cfds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd::parse::parse_cfds;
    use datagen::dirty_customers;
    use detect::detect_native;
    use minidb::Schema;

    fn assert_equivalent(table: &Table, cfds: &[Cfd]) {
        let native = detect_native(table, cfds).unwrap().normalized();
        let columnar = detect_columnar(table, cfds).unwrap().normalized();
        assert_eq!(native, columnar);
    }

    #[test]
    fn matches_native_on_customer_workload() {
        let d = dirty_customers(500, 0.06, 21);
        assert_equivalent(d.db.table("customer").unwrap(), &d.cfds);
    }

    #[test]
    fn matches_native_on_clean_data() {
        let d = dirty_customers(300, 0.0, 22);
        let t = d.db.table("customer").unwrap();
        let r = detect_columnar(t, &d.cfds).unwrap();
        assert!(r.is_empty());
        assert_equivalent(t, &d.cfds);
    }

    #[test]
    fn threaded_detection_matches_serial_across_chunk_layouts() {
        let d = dirty_customers(400, 0.08, 28);
        let t = d.db.table("customer").unwrap();
        let serial = detect_columnar(t, &d.cfds).unwrap().normalized();
        for chunk_rows in [1usize, 7, 64, 4096] {
            let snap = Snapshot::projected_with_chunk(
                t,
                &(0..t.schema().arity()).collect::<Vec<_>>(),
                chunk_rows,
            );
            for threads in [1usize, 2, 4] {
                let got = detect_on_snapshot_threads(&snap, &d.cfds, threads)
                    .unwrap()
                    .normalized();
                assert_eq!(got, serial, "chunk_rows={chunk_rows} threads={threads}");
            }
        }
    }

    #[test]
    fn snapshot_reuse_across_cfd_sets() {
        let d = dirty_customers(400, 0.05, 23);
        let t = d.db.table("customer").unwrap();
        let snap = Snapshot::of(t);
        // One encode, several rule sets.
        for subset in [&d.cfds[..2], &d.cfds[2..], &d.cfds[..]] {
            let a = detect_on_snapshot(&snap, subset).unwrap().normalized();
            let b = detect_native(t, subset).unwrap().normalized();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn absent_constant_short_circuits() {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
        t.insert(vec![Value::str("x"), Value::str("1")]).unwrap();
        t.insert(vec![Value::str("x"), Value::str("2")]).unwrap();
        // 'zz' never occurs in column A: the conditional rules match nothing.
        let cfds = parse_cfds("r: [A='zz'] -> [B='1']\nr: [A='zz'] -> [B=_]").unwrap();
        let r = detect_columnar(&t, &cfds).unwrap();
        assert!(r.is_empty());
        assert_equivalent(&t, &cfds);
    }

    #[test]
    fn absent_rhs_constant_flags_all_matching_rows() {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
        t.insert(vec![Value::str("x"), Value::str("1")]).unwrap();
        t.insert(vec![Value::str("x"), Value::Null]).unwrap();
        // 'target' is absent from B's dictionary: every non-NULL B violates.
        let cfds = parse_cfds("r: [A='x'] -> [B='target']").unwrap();
        let r = detect_columnar(&t, &cfds).unwrap();
        assert_eq!(r.len(), 1, "NULL RHS is never a single-tuple violation");
        assert_equivalent(&t, &cfds);
    }

    #[test]
    fn all_null_column_groups_as_one() {
        let mut t = Table::new("r", Schema::of_strings(&["A", "B"]));
        for v in ["1", "2", "2"] {
            t.insert(vec![Value::Null, Value::str(v)]).unwrap();
        }
        // All-NULL LHS: one group under strong equality, two distinct B.
        let cfds = parse_cfds("r: [A] -> [B]").unwrap();
        let r = detect_columnar(&t, &cfds).unwrap();
        assert_eq!(r.len(), 1);
        assert_equivalent(&t, &cfds);
    }

    #[test]
    fn wide_keys_fall_back_beyond_64_bits() {
        // 17 LHS columns of cardinality >= 8 (4 bits each incl. NULL code)
        // exceed the packed budget only with enough distinct values; use a
        // high-cardinality instance to force > 64 key bits.
        let names: Vec<String> = (0..17).map(|i| format!("C{i}")).collect();
        let mut cols: Vec<&str> = names.iter().map(String::as_str).collect();
        cols.push("RHS");
        let mut t = Table::new("wide", Schema::of_strings(&cols));
        for row in 0..40 {
            let mut vals: Vec<Value> = (0..17)
                .map(|c| Value::str(format!("v{}", (row / 2 + c) % 20)))
                .collect();
            vals.push(Value::str(format!("r{}", row % 3)));
            t.insert(vals).unwrap();
        }
        let rule = format!("wide: [{}] -> [RHS]", names.join(", "));
        let cfds = parse_cfds(&rule).unwrap();
        assert_equivalent(&t, &cfds);
    }

    #[test]
    fn hashed_u64_path_beyond_dense_cap() {
        // Force the packed-but-hashed branch: two ~140-distinct columns give
        // a 16-bit key (65 536 slots), above clamp(64 * 300, 4096, 2^24) for
        // dense state at 300 rows — so grouping must hash u64 keys. Seed
        // conflicts via duplicated (A, B) pairs with disagreeing RHS.
        let mut t = Table::new("r", Schema::of_strings(&["A", "B", "RHS"]));
        for i in 0..140 {
            t.insert(vec![
                Value::str(format!("a{i}")),
                Value::str(format!("b{i}")),
                Value::str("same"),
            ])
            .unwrap();
        }
        for i in 0..140 {
            // Duplicate keys; every third pair disagrees on RHS.
            let rhs = if i % 3 == 0 { "diff" } else { "same" };
            t.insert(vec![
                Value::str(format!("a{i}")),
                Value::str(format!("b{i}")),
                Value::str(rhs),
            ])
            .unwrap();
        }
        let cfds = parse_cfds("r: [A, B] -> [RHS]").unwrap();
        let r = detect_columnar(&t, &cfds).unwrap();
        assert_eq!(r.len(), 47, "every i % 3 == 0 group conflicts");
        assert_equivalent(&t, &cfds);
    }

    #[test]
    fn partial_export_merge_equals_single_node() {
        // Partition the customer table into 3 interleaved "shards", export
        // partials per shard, merge — must equal single-node detection.
        use detect::exchange::merge_cfd_partials;
        let d = dirty_customers(400, 0.06, 26);
        let t = d.db.table("customer").unwrap();
        let mut shards: Vec<Table> = (0..3)
            .map(|_| Table::new("customer", t.schema().clone()))
            .collect();
        for (i, (id, row)) in t.iter().enumerate() {
            shards[i % 3].insert_at(id, row.to_vec()).unwrap();
        }
        let partials: Vec<Vec<CfdPartial>> = shards
            .iter()
            .map(|s| cfd_partials(&Snapshot::of(s), &d.cfds).unwrap())
            .collect();
        let mut merged = ViolationReport::default();
        for idx in 0..d.cfds.len() {
            merge_cfd_partials(idx, partials.iter().map(|p| &p[idx]), &mut merged);
        }
        let single = detect_columnar(t, &d.cfds).unwrap().normalized();
        assert!(!single.is_empty());
        assert_eq!(merged.normalized(), single);
    }

    #[test]
    fn partial_export_of_one_shard_merges_to_local_detection() {
        // Degenerate cluster of one shard: the exchange must be lossless.
        use detect::exchange::merge_cfd_partials;
        let d = dirty_customers(250, 0.05, 27);
        let t = d.db.table("customer").unwrap();
        let partials = cfd_partials(&Snapshot::of(t), &d.cfds).unwrap();
        let mut merged = ViolationReport::default();
        for (idx, p) in partials.iter().enumerate() {
            merge_cfd_partials(idx, [p], &mut merged);
        }
        assert_eq!(
            merged.normalized(),
            detect_columnar(t, &d.cfds).unwrap().normalized()
        );
    }

    #[test]
    fn seeded_incremental_matches_classic_build() {
        let d = dirty_customers(300, 0.05, 24);
        let t = d.db.table("customer").unwrap();
        let classic = IncrementalDetector::build(t, &d.cfds).unwrap();
        let seeded = build_incremental(t, &d.cfds).unwrap();
        assert_eq!(classic.report().normalized(), seeded.report().normalized());
        assert_eq!(classic.total_violations(), seeded.total_violations());
        for (id, _) in t.iter() {
            assert_eq!(classic.vio_of(id), seeded.vio_of(id));
        }
    }

    #[test]
    fn seeded_incremental_stays_consistent_under_updates() {
        let d = dirty_customers(200, 0.05, 25);
        let t = d.db.table("customer").unwrap();
        let mut det = build_incremental(t, &d.cfds).unwrap();
        let mut table = t.clone();
        // Mutate through the incremental interface, then cross-check batch.
        let ids = table.row_ids();
        for (i, &id) in ids.iter().take(20).enumerate() {
            let old: Vec<Value> = table.get(id).unwrap().to_vec();
            let mut new = old.clone();
            new[2] = Value::str(format!("CITY{i}"));
            table.update_cell(id, 2, new[2].clone()).unwrap();
            det.update(id, &old, &new);
        }
        let batch = detect_native(&table, &d.cfds).unwrap().normalized();
        assert_eq!(batch, det.report().normalized());
    }
}
