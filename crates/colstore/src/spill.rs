//! Cold-chunk spill: the seam between columns and a paged backing store.
//!
//! A sealed chunk is a fixed-width `Vec<u32>` — trivially seekable, which
//! is exactly what a paged spill file wants. This module defines the
//! *interface* ([`ChunkStore`]) and the ownership glue ([`PageHandle`],
//! [`ChunkGuard`]); the real disk-backed implementation with its
//! clock-eviction buffer pool lives in `durable::PagedStore`, keeping
//! colstore free of file-format concerns. [`MemChunkStore`] is a
//! heap-backed stand-in for tests.
//!
//! Ownership model: a spilled chunk inside a [`crate::Column`] is an
//! `Arc<PageHandle>`. Column clones (snapshots hand these out freely)
//! share the handle; the backing page is freed when the **last** clone
//! drops, so patching one clone back to resident never invalidates the
//! page another clone still reads. Faulting returns `Arc<Vec<u32>>` out
//! of the store's buffer pool — eviction only drops the pool's reference,
//! never a reader's.

use std::io;
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// A page-granular backing store for sealed code chunks.
///
/// Implementations must be cheap to share (`&self` methods, internal
/// locking) — one store serves every column of a snapshot, and in the
/// cluster one store serves every shard.
pub trait ChunkStore: std::fmt::Debug + Send + Sync {
    /// Write `codes` out and return the page id it now lives under.
    fn store(&self, codes: &[u32]) -> io::Result<u64>;

    /// Read the `len` codes of `page` back. Implementations with a buffer
    /// pool return the pooled `Arc` (possibly without touching disk).
    fn load(&self, page: u64, len: usize) -> io::Result<Arc<Vec<u32>>>;

    /// Release `page` for reuse. Called from [`PageHandle`]'s `Drop`;
    /// must not fail (errors are swallowed by drop anyway).
    fn free(&self, page: u64);
}

/// Owned reference to one spilled chunk: which store, which page, how
/// many codes. Dropping the last clone of the owning `Arc` frees the
/// page back to the store.
pub struct PageHandle {
    store: Arc<dyn ChunkStore>,
    page: u64,
    len: usize,
}

impl PageHandle {
    /// Spill `codes` into `store`, returning the handle that now owns the
    /// page.
    pub fn spill(store: &Arc<dyn ChunkStore>, codes: &[u32]) -> io::Result<PageHandle> {
        let page = store.store(codes)?;
        Ok(PageHandle {
            store: Arc::clone(store),
            page,
            len: codes.len(),
        })
    }

    /// Number of codes behind this handle.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the spilled chunk holds no codes (never happens for
    /// sealed chunks, which are full by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Fault the chunk back in.
    ///
    /// Panics on I/O failure: a column that cannot read its own codes has
    /// no degraded mode — scans would silently produce wrong answers. The
    /// spill file living under the WAL directory, losing it mid-run is in
    /// the same class as losing the heap.
    pub fn fault(&self) -> Arc<Vec<u32>> {
        self.store.load(self.page, self.len).unwrap_or_else(|e| {
            panic!(
                "spill fault-in failed for page {} ({} codes): {e} — \
                 the spill file is gone or corrupt; cannot continue",
                self.page, self.len
            )
        })
    }
}

impl Drop for PageHandle {
    fn drop(&mut self) {
        self.store.free(self.page);
    }
}

// Debug without recursing into the store (which may transitively
// reference thousands of pooled pages).
impl std::fmt::Debug for PageHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageHandle")
            .field("page", &self.page)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// Access to one chunk's codes: a plain borrow for resident chunks, a
/// pool-backed `Arc` for chunks faulted in from the store. Derefs to
/// `[u32]`, so `guard.len()`, `guard.iter()`, `guard[i]` and `&guard`
/// in `&[u32]` argument position all work unchanged.
pub enum ChunkGuard<'a> {
    /// The chunk is in memory; borrow it straight out of the column.
    Borrowed(&'a [u32]),
    /// The chunk was faulted in; the guard keeps it alive while read.
    Faulted(Arc<Vec<u32>>),
}

impl Deref for ChunkGuard<'_> {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        match self {
            ChunkGuard::Borrowed(s) => s,
            ChunkGuard::Faulted(a) => a,
        }
    }
}

impl ChunkGuard<'_> {
    /// The codes as a slice borrowed from the guard (for call sites that
    /// collect slices and must keep the guards alive alongside).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        self
    }
}

impl std::fmt::Debug for ChunkGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChunkGuard({} codes)", self.len())
    }
}

/// Heap-backed [`ChunkStore`] for tests: pages are boxed vectors in a
/// mutex-held map. No eviction, no I/O — it exists so colstore and core
/// can exercise the spill lifecycle without depending on `durable`.
#[derive(Debug, Default)]
pub struct MemChunkStore {
    pages: Mutex<MemPages>,
}

#[derive(Debug, Default)]
struct MemPages {
    slots: Vec<Option<Arc<Vec<u32>>>>,
    free: Vec<u64>,
}

impl MemChunkStore {
    /// Fresh empty store, ready to share behind an `Arc`.
    pub fn shared() -> Arc<dyn ChunkStore> {
        Arc::new(MemChunkStore::default())
    }

    /// Number of live (stored, not yet freed) pages.
    pub fn live_pages(&self) -> usize {
        let p = self.pages.lock().unwrap();
        p.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl ChunkStore for MemChunkStore {
    fn store(&self, codes: &[u32]) -> io::Result<u64> {
        let mut p = self.pages.lock().unwrap();
        let arc = Arc::new(codes.to_vec());
        match p.free.pop() {
            Some(page) => {
                p.slots[page as usize] = Some(arc);
                Ok(page)
            }
            None => {
                p.slots.push(Some(arc));
                Ok((p.slots.len() - 1) as u64)
            }
        }
    }

    fn load(&self, page: u64, len: usize) -> io::Result<Arc<Vec<u32>>> {
        let p = self.pages.lock().unwrap();
        let arc = p
            .slots
            .get(page as usize)
            .and_then(|s| s.clone())
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::NotFound, format!("page {page} not stored"))
            })?;
        debug_assert_eq!(arc.len(), len, "page {page} length mismatch");
        Ok(arc)
    }

    fn free(&self, page: u64) {
        let mut p = self.pages.lock().unwrap();
        if let Some(slot) = p.slots.get_mut(page as usize) {
            *slot = None;
            p.free.push(page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_frees_page_on_last_drop() {
        let mem = Arc::new(MemChunkStore::default());
        let store: Arc<dyn ChunkStore> = mem.clone();
        let codes: Vec<u32> = (0..64).collect();
        let h = Arc::new(PageHandle::spill(&store, &codes).unwrap());
        let h2 = Arc::clone(&h);
        assert_eq!(mem.live_pages(), 1);
        assert_eq!(h.fault().as_slice(), codes.as_slice());
        drop(h);
        // Second clone still reads fine — the page outlives the first drop.
        assert_eq!(h2.fault().as_slice(), codes.as_slice());
        assert_eq!(mem.live_pages(), 1);
        drop(h2);
        assert_eq!(mem.live_pages(), 0, "last drop frees the page");
        // Freed slot is recycled for the next spill.
        let h3 = PageHandle::spill(&store, &[7, 7]).unwrap();
        assert_eq!(h3.fault().as_slice(), &[7, 7]);
        assert_eq!(mem.live_pages(), 1);
    }

    #[test]
    fn guard_derefs_like_a_slice() {
        let borrowed: &[u32] = &[1, 2, 3];
        let g = ChunkGuard::Borrowed(borrowed);
        assert_eq!(g.len(), 3);
        assert_eq!(g[1], 2);
        assert_eq!(g.iter().sum::<u32>(), 6);
        let f = ChunkGuard::Faulted(Arc::new(vec![9, 9]));
        assert_eq!(f.as_slice(), &[9, 9]);
    }
}
